#include "traj/map_matching.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace start::traj {

GpsTrajectory SimulateGps(const roadnet::RoadNetwork& net,
                          const Trajectory& traj, double sample_interval_s,
                          double noise_m, common::Rng* rng) {
  START_CHECK(rng != nullptr);
  START_CHECK_GT(sample_interval_s, 0.0);
  GpsTrajectory gps;
  if (traj.roads.empty()) return gps;
  // Walk the trajectory; within each segment interpolate linearly between
  // its endpoints over its occupancy interval [t_i, t_{i+1}).
  double next_sample = static_cast<double>(traj.timestamps.front());
  for (int64_t i = 0; i < traj.size(); ++i) {
    const auto& seg = net.segment(traj.roads[static_cast<size_t>(i)]);
    const double t_in = static_cast<double>(traj.timestamps[static_cast<size_t>(i)]);
    const double t_out =
        i + 1 < traj.size()
            ? static_cast<double>(traj.timestamps[static_cast<size_t>(i + 1)])
            : static_cast<double>(traj.end_time);
    if (t_out <= t_in) continue;
    while (next_sample < t_out) {
      const double frac = (next_sample - t_in) / (t_out - t_in);
      if (frac >= 0.0) {
        GpsPoint p;
        p.x = seg.x0 + frac * (seg.x1 - seg.x0) + rng->Normal(0.0, noise_m);
        p.y = seg.y0 + frac * (seg.y1 - seg.y0) + rng->Normal(0.0, noise_m);
        p.timestamp = static_cast<int64_t>(next_sample);
        gps.points.push_back(p);
      }
      next_sample += sample_interval_s;
    }
  }
  return gps;
}

double HmmMapMatcher::PointToSegmentDistance(const roadnet::RoadSegment& seg,
                                             double x, double y) {
  const double vx = seg.x1 - seg.x0, vy = seg.y1 - seg.y0;
  const double wx = x - seg.x0, wy = y - seg.y0;
  const double vv = vx * vx + vy * vy;
  double t = vv > 0.0 ? (wx * vx + wy * vy) / vv : 0.0;
  t = std::clamp(t, 0.0, 1.0);
  const double px = seg.x0 + t * vx, py = seg.y0 + t * vy;
  return std::hypot(x - px, y - py);
}

HmmMapMatcher::HmmMapMatcher(const roadnet::RoadNetwork* net,
                             const Config& config)
    : net_(net), config_(config) {
  START_CHECK(net != nullptr);
  START_CHECK(net->finalized());
  START_CHECK_GT(config_.candidate_radius_m, 0.0);
  // Build the candidate grid over the network's bounding box.
  const int64_t v = net->num_segments();
  double min_x = 0.0, min_y = 0.0, max_x = 0.0, max_y = 0.0;
  for (int64_t i = 0; i < v; ++i) {
    const auto& s = net->segment(i);
    const double sx0 = std::min(s.x0, s.x1), sx1 = std::max(s.x0, s.x1);
    const double sy0 = std::min(s.y0, s.y1), sy1 = std::max(s.y0, s.y1);
    if (i == 0) {
      min_x = sx0, max_x = sx1, min_y = sy0, max_y = sy1;
    } else {
      min_x = std::min(min_x, sx0), max_x = std::max(max_x, sx1);
      min_y = std::min(min_y, sy0), max_y = std::max(max_y, sy1);
    }
  }
  cell_size_m_ = 2.0 * config_.candidate_radius_m;
  min_x_ = min_x;
  min_y_ = min_y;
  constexpr int64_t kMaxGridDim = 1024;  // bounds memory on huge extents
  grid_w_ = std::clamp<int64_t>(
      static_cast<int64_t>((max_x - min_x) / cell_size_m_) + 1, 1, kMaxGridDim);
  grid_h_ = std::clamp<int64_t>(
      static_cast<int64_t>((max_y - min_y) / cell_size_m_) + 1, 1, kMaxGridDim);
  cells_.assign(static_cast<size_t>(grid_w_ * grid_h_), {});
  auto clamp_cell = [](int64_t c, int64_t n) {
    return std::clamp<int64_t>(c, 0, n - 1);
  };
  for (int64_t i = 0; i < v; ++i) {
    const auto& s = net->segment(i);
    const double r = config_.candidate_radius_m;
    const int64_t cx0 = clamp_cell(
        static_cast<int64_t>((std::min(s.x0, s.x1) - r - min_x_) / cell_size_m_),
        grid_w_);
    const int64_t cx1 = clamp_cell(
        static_cast<int64_t>((std::max(s.x0, s.x1) + r - min_x_) / cell_size_m_),
        grid_w_);
    const int64_t cy0 = clamp_cell(
        static_cast<int64_t>((std::min(s.y0, s.y1) - r - min_y_) / cell_size_m_),
        grid_h_);
    const int64_t cy1 = clamp_cell(
        static_cast<int64_t>((std::max(s.y0, s.y1) + r - min_y_) / cell_size_m_),
        grid_h_);
    for (int64_t cy = cy0; cy <= cy1; ++cy) {
      for (int64_t cx = cx0; cx <= cx1; ++cx) {
        cells_[static_cast<size_t>(cy * grid_w_ + cx)].push_back(
            static_cast<int32_t>(i));
      }
    }
  }
}

int64_t HmmMapMatcher::CellOf(double x, double y) const {
  const int64_t cx = std::clamp<int64_t>(
      static_cast<int64_t>((x - min_x_) / cell_size_m_), 0, grid_w_ - 1);
  const int64_t cy = std::clamp<int64_t>(
      static_cast<int64_t>((y - min_y_) / cell_size_m_), 0, grid_h_ - 1);
  return cy * grid_w_ + cx;
}

std::vector<int64_t> HmmMapMatcher::Candidates(double x, double y) const {
  std::vector<std::pair<double, int64_t>> scored;
  for (const int32_t v : cells_[static_cast<size_t>(CellOf(x, y))]) {
    const double d = PointToSegmentDistance(net_->segment(v), x, y);
    if (d <= config_.candidate_radius_m) scored.emplace_back(d, v);
  }
  // (distance, id) ordering — identical to the old full scan, because the
  // cell holds a superset of every segment within the radius and ids within
  // a cell ascend.
  std::sort(scored.begin(), scored.end());
  // Keep the closest few candidates to bound Viterbi cost.
  constexpr size_t kMaxCandidates = 8;
  if (scored.size() > kMaxCandidates) scored.resize(kMaxCandidates);
  std::vector<int64_t> out;
  out.reserve(scored.size());
  for (const auto& [d, v] : scored) out.push_back(v);
  return out;
}

std::vector<int64_t> HmmMapMatcher::Match(const GpsTrajectory& gps) const {
  const std::vector<int64_t> states = ViterbiStates(gps);
  // Collapse consecutive duplicates into the road sequence.
  std::vector<int64_t> roads;
  for (const int64_t s : states) {
    if (roads.empty() || roads.back() != s) roads.push_back(s);
  }
  return roads;
}

Trajectory HmmMapMatcher::MatchTrajectory(const GpsTrajectory& gps) const {
  const std::vector<int64_t> states = ViterbiStates(gps);
  Trajectory traj;
  if (states.empty()) return traj;
  for (size_t i = 0; i < states.size(); ++i) {
    if (traj.roads.empty() || traj.roads.back() != states[i]) {
      traj.roads.push_back(states[i]);
      traj.timestamps.push_back(gps.points[i].timestamp);
    }
  }
  traj.end_time = gps.points.back().timestamp;
  return traj;
}

std::vector<int64_t> HmmMapMatcher::ViterbiStates(
    const GpsTrajectory& gps) const {
  const int64_t n = static_cast<int64_t>(gps.points.size());
  if (n == 0) return {};
  const double inv_two_sigma2 =
      1.0 / (2.0 * config_.emission_sigma_m * config_.emission_sigma_m);
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();

  std::vector<std::vector<int64_t>> cands(static_cast<size_t>(n));
  std::vector<std::vector<double>> score(static_cast<size_t>(n));
  std::vector<std::vector<int32_t>> back(static_cast<size_t>(n));
  for (int64_t t = 0; t < n; ++t) {
    cands[static_cast<size_t>(t)] =
        Candidates(gps.points[static_cast<size_t>(t)].x,
                   gps.points[static_cast<size_t>(t)].y);
    if (cands[static_cast<size_t>(t)].empty()) return {};
    score[static_cast<size_t>(t)].assign(
        cands[static_cast<size_t>(t)].size(), kNegInf);
    back[static_cast<size_t>(t)].assign(
        cands[static_cast<size_t>(t)].size(), -1);
  }
  auto emission = [&](int64_t t, size_t c) {
    const double d = PointToSegmentDistance(
        net_->segment(cands[static_cast<size_t>(t)][c]),
        gps.points[static_cast<size_t>(t)].x,
        gps.points[static_cast<size_t>(t)].y);
    return -d * d * inv_two_sigma2;
  };
  // Transition log-prob by hop distance (0 hops: same segment; 1 hop:
  // direct successor; 2 hops: one intermediate).
  auto transition = [&](int64_t from, int64_t to) {
    if (from == to) return 0.0;
    if (net_->HasEdge(from, to)) return -config_.hop_penalty;
    for (const int64_t mid : net_->OutSpan(from)) {
      if (net_->HasEdge(mid, to)) return -2.0 * config_.hop_penalty;
    }
    return kNegInf;
  };
  for (size_t c = 0; c < cands[0].size(); ++c) {
    score[0][c] = emission(0, c);
  }
  for (int64_t t = 1; t < n; ++t) {
    for (size_t c = 0; c < cands[static_cast<size_t>(t)].size(); ++c) {
      const double em = emission(t, c);
      for (size_t p = 0; p < cands[static_cast<size_t>(t - 1)].size(); ++p) {
        if (score[static_cast<size_t>(t - 1)][p] == kNegInf) continue;
        const double tr =
            transition(cands[static_cast<size_t>(t - 1)][p],
                       cands[static_cast<size_t>(t)][c]);
        if (tr == kNegInf) continue;
        const double s = score[static_cast<size_t>(t - 1)][p] + tr + em;
        if (s > score[static_cast<size_t>(t)][c]) {
          score[static_cast<size_t>(t)][c] = s;
          back[static_cast<size_t>(t)][c] = static_cast<int32_t>(p);
        }
      }
    }
  }
  // Best final state.
  size_t best = 0;
  double best_score = kNegInf;
  for (size_t c = 0; c < cands[static_cast<size_t>(n - 1)].size(); ++c) {
    if (score[static_cast<size_t>(n - 1)][c] > best_score) {
      best_score = score[static_cast<size_t>(n - 1)][c];
      best = c;
    }
  }
  if (best_score == kNegInf) return {};
  std::vector<int64_t> states(static_cast<size_t>(n));
  int64_t cur = static_cast<int64_t>(best);
  for (int64_t t = n - 1; t >= 0; --t) {
    states[static_cast<size_t>(t)] =
        cands[static_cast<size_t>(t)][static_cast<size_t>(cur)];
    if (t > 0) {
      cur = back[static_cast<size_t>(t)][static_cast<size_t>(cur)];
      if (cur < 0) return {};  // broken chain
    }
  }
  return states;
}

}  // namespace start::traj
