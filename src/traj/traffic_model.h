#ifndef START_TRAJ_TRAFFIC_MODEL_H_
#define START_TRAJ_TRAFFIC_MODEL_H_

#include <vector>

#include "common/rng.h"
#include "roadnet/road_network.h"
#include "traj/trajectory.h"

namespace start::traj {

/// \brief Time-dependent congestion model of the synthetic city.
///
/// Produces the two temporal regularities the paper builds on (Fig. 1):
/// periodic urban traffic (weekday morning/evening rush hours, flatter
/// weekends) and dynamic per-road travel times. Each road has a congestion
/// propensity — arterials congest more — so travel times carry road-specific
/// temporal signal.
class TrafficModel {
 public:
  struct Config {
    double morning_peak_hour = 8.0;
    double evening_peak_hour = 18.0;
    double peak_width_hours = 1.6;      ///< Gaussian sigma of the rush bumps.
    double max_slowdown = 0.62;         ///< Peak fractional speed reduction.
    double weekend_midday_peak = 14.0;
    double weekend_slowdown = 0.25;
    double noise = 0.08;                ///< Per-traversal speed noise (std).
    uint64_t seed = 99;
  };

  TrafficModel(const roadnet::RoadNetwork* net, const Config& config);

  /// Rush intensity in [0, 1] at `timestamp` (weekday double-peak profile or
  /// the weekend midday bump).
  double RushIntensity(int64_t timestamp) const;

  /// Deterministic expected speed multiplier in (0, 1] for a road at a time.
  double SpeedFactor(int64_t road, int64_t timestamp) const;

  /// Expected (noise-free) travel time of `road` entered at `timestamp`, s.
  double ExpectedTravelTime(int64_t road, int64_t timestamp) const;

  /// Noisy travel time of one traversal (uses `rng`), seconds.
  double SampleTravelTime(int64_t road, int64_t timestamp,
                          common::Rng* rng) const;

  /// Historical mean travel time of a road (time-of-day averaged); this is
  /// the t_his used by the Temporal Shifting augmentation (Sec. III-C2).
  double HistoricalMeanTravelTime(int64_t road) const;

  /// Congestion propensity of a road in [0, 1].
  double CongestionPropensity(int64_t road) const;

  const roadnet::RoadNetwork& network() const { return *net_; }

 private:
  const roadnet::RoadNetwork* net_;
  Config config_;
  std::vector<double> propensity_;  ///< Per-road congestion propensity.
};

}  // namespace start::traj

#endif  // START_TRAJ_TRAFFIC_MODEL_H_
