#ifndef START_TRAJ_STATS_H_
#define START_TRAJ_STATS_H_

#include <cstdint>
#include <vector>

#include "roadnet/road_network.h"
#include "traj/trajectory.h"

namespace start::traj {

/// \brief Corpus statistics backing Fig. 1 and Table I of the paper.
struct CorpusStats {
  int64_t num_trajectories = 0;
  int64_t num_users = 0;
  int64_t num_covered_roads = 0;      ///< Roads visited at least once.
  double mean_length = 0.0;           ///< Mean hops per trajectory.
  double mean_travel_time_s = 0.0;

  /// Trajectory counts per day-of-week (index 0 = Monday) — Fig. 1(b).
  std::vector<int64_t> per_day_of_week = std::vector<int64_t>(7, 0);
  /// Trajectory counts per hour of day (24 bins) — Fig. 1(b).
  std::vector<int64_t> per_hour = std::vector<int64_t>(24, 0);
  /// Road visit counts (size |V|), sorted descending exposes the skew of
  /// Fig. 1(a).
  std::vector<int64_t> road_visits;
  /// Histogram of inter-point time intervals, 5-second bins up to 120 s —
  /// Fig. 1(c).
  std::vector<int64_t> interval_histogram = std::vector<int64_t>(24, 0);
};

/// Computes corpus statistics.
CorpusStats ComputeStats(const roadnet::RoadNetwork& net,
                         const std::vector<Trajectory>& corpus);

}  // namespace start::traj

#endif  // START_TRAJ_STATS_H_
