#ifndef START_TRAJ_TRIP_GENERATOR_H_
#define START_TRAJ_TRIP_GENERATOR_H_

#include <map>
#include <vector>

#include "common/rng.h"
#include "roadnet/road_network.h"
#include "roadnet/shortest_path.h"
#include "traj/traffic_model.h"
#include "traj/trajectory.h"

namespace start::traj {

/// \brief Agent-based taxi-trip simulator — the substitute for the BJ/Porto
/// taxi corpora (see DESIGN.md, "Substitutions").
///
/// Each driver has a home and a work anchor zone and a personal route-choice
/// bias. Weekday occupied trips follow commuter demand (home->work in the
/// morning peak, work->home in the evening peak, plus midday errands);
/// vacant repositioning trips are shorter and more random. The realised
/// timestamps come from the TrafficModel, so rush-hour trips are genuinely
/// slower — the signal the paper's temporal machinery exploits.
class TripGenerator {
 public:
  struct Config {
    int64_t num_drivers = 20;
    int64_t num_days = 14;
    double trips_per_driver_day = 6.0;
    double vacant_fraction = 0.35;  ///< Fraction of vacant repositioning trips.
    /// Strength of per-driver route preference (weight jitter amplitude).
    double driver_preference = 0.6;
    /// Per-trip route randomness on top of the driver preference.
    double trip_noise = 0.15;
    /// Zone radius (meters) around each anchor for OD sampling.
    double zone_radius_m = 450.0;
    uint64_t seed = 4242;
  };

  TripGenerator(const TrafficModel* traffic, const Config& config);

  /// Generates the full corpus (chronologically ordered by departure time).
  std::vector<Trajectory> Generate();

  /// Generates a single trip from `src` to `dst` departing at `depart`,
  /// using driver `driver`'s route preference. Returns an empty trajectory
  /// when no route exists.
  Trajectory GenerateTrip(int64_t driver, int64_t src, int64_t dst,
                          int64_t depart);

  /// The driver's home/work anchor segments (exposed for tests/examples).
  int64_t HomeAnchor(int64_t driver) const;
  int64_t WorkAnchor(int64_t driver) const;

 private:
  int64_t SampleNear(int64_t anchor, common::Rng* rng) const;
  int64_t SampleDepartureTime(int64_t day, common::Rng* rng,
                              bool* is_commute_morning,
                              bool* is_commute_evening) const;

  const TrafficModel* traffic_;
  const roadnet::RoadNetwork* net_;
  Config config_;
  common::Rng rng_;
  std::vector<int64_t> home_anchor_;
  std::vector<int64_t> work_anchor_;
  std::vector<uint64_t> driver_seed_;
  /// Reusable Dijkstra workspace: per-driver weights rule out contraction
  /// hierarchies, but the O(|V|) label arrays need not be reallocated per
  /// trip. Routes are bitwise-identical to roadnet::ShortestPath.
  roadnet::DijkstraRouter router_;
  /// anchor segment -> segments within zone_radius_m (SampleNear scans the
  /// network once per distinct anchor instead of once per call).
  mutable std::map<int64_t, std::vector<int64_t>> zone_cache_;
};

}  // namespace start::traj

#endif  // START_TRAJ_TRIP_GENERATOR_H_
