#include "eval/encoder.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "common/check.h"
#include "data/dataset.h"
#include "data/view.h"

namespace start::eval {

namespace {
/// Inference-time length-bucket granularity: trajectories within 4 roads of
/// each other share a batch, so almost no attention compute is spent on
/// padding. Narrower than the training bucket (8) because inference has no
/// shuffling constraint to respect.
constexpr int64_t kEmbedBucketWidth = 4;
}  // namespace

std::vector<float> EmbedAllWith(
    int64_t dim, const std::vector<traj::Trajectory>& trajs,
    int64_t batch_size,
    const std::function<
        tensor::Tensor(const std::vector<const traj::Trajectory*>&)>&
        encode) {
  START_CHECK_GT(batch_size, 0);
  const int64_t n = static_cast<int64_t>(trajs.size());
  std::vector<float> out(static_cast<size_t>(n * dim));
  // Length-bucketed batch assembly (data/batch.h): corpus order in, so the
  // plan — and therefore every embedding — is deterministic; each batch's
  // rows are scattered back to their original corpus positions below.
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  const auto plan = data::BucketBatchPlan(data::Lengths(trajs), order,
                                          batch_size, kEmbedBucketWidth);
  std::vector<const traj::Trajectory*> batch;  // reused across batches
  batch.reserve(static_cast<size_t>(batch_size));
  for (const auto& step : plan) {
    batch.clear();
    for (const int64_t i : step) {
      batch.push_back(&trajs[static_cast<size_t>(i)]);
    }
    // `encode` may hand back a zero-copy view (e.g. the cls-token slice);
    // compact it once here for the flat output buffer.
    const tensor::Tensor reps = encode(batch).Contiguous();
    START_CHECK_EQ(reps.dim(0), static_cast<int64_t>(step.size()));
    START_CHECK_EQ(reps.dim(1), dim);
    for (size_t r = 0; r < step.size(); ++r) {
      std::memcpy(out.data() + step[r] * dim,
                  reps.data() + static_cast<int64_t>(r) * dim,
                  static_cast<size_t>(dim) * sizeof(float));
    }
  }
  return out;
}

std::vector<float> TrajectoryEncoder::EmbedAll(
    const std::vector<traj::Trajectory>& trajs, EncodeMode mode,
    int64_t batch_size) {
  SetTraining(false);
  // Encoding goes through InferBatch (the no-grad inference entry point),
  // which lets encoders hoist per-artifact work out of the per-batch loop:
  // StartEncoder caches its stage-1 road representations behind the loaded
  // checkpoint handle instead of re-deriving them on every call.
  return EmbedAllWith(dim(), trajs, batch_size,
                      [&](const std::vector<const traj::Trajectory*>& batch) {
                        return InferBatch(batch, mode);
                      });
}

}  // namespace start::eval
