#include "eval/encoder.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"

namespace start::eval {

std::vector<float> TrajectoryEncoder::EmbedAll(
    const std::vector<traj::Trajectory>& trajs, EncodeMode mode,
    int64_t batch_size) {
  START_CHECK_GT(batch_size, 0);
  const int64_t n = static_cast<int64_t>(trajs.size());
  std::vector<float> out(static_cast<size_t>(n * dim()));
  SetTraining(false);
  tensor::NoGradGuard no_grad;
  for (int64_t begin = 0; begin < n; begin += batch_size) {
    const int64_t end = std::min(n, begin + batch_size);
    std::vector<const traj::Trajectory*> batch;
    batch.reserve(static_cast<size_t>(end - begin));
    for (int64_t i = begin; i < end; ++i) {
      batch.push_back(&trajs[static_cast<size_t>(i)]);
    }
    // EncodeBatch may hand back a zero-copy view (e.g. the cls-token slice);
    // compact it once here for the flat output buffer.
    const tensor::Tensor reps = EncodeBatch(batch, mode).Contiguous();
    START_CHECK_EQ(reps.dim(0), end - begin);
    START_CHECK_EQ(reps.dim(1), dim());
    std::memcpy(out.data() + begin * dim(), reps.data(),
                static_cast<size_t>((end - begin) * dim()) * sizeof(float));
  }
  return out;
}

}  // namespace start::eval
