#ifndef START_EVAL_ENCODER_H_
#define START_EVAL_ENCODER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "data/batch.h"
#include "data/view.h"
#include "tensor/tensor.h"
#include "traj/trajectory.h"

namespace start::eval {

/// How much temporal information an encoder may consume.
enum class EncodeMode {
  kFull,           ///< Pre-training / similarity: full timestamps available.
  kDepartureOnly,  ///< ETA fine-tuning protocol (Sec. IV-D2): only the
                   ///< departure time is exposed.
};

/// \brief Common interface over START and every baseline: a model that maps
/// trajectories to d-dimensional representations.
///
/// The downstream-task harness (eval/tasks.h) and the similarity protocols
/// only see this interface, so Table II's per-model rows all run through
/// identical task code.
class TrajectoryEncoder {
 public:
  virtual ~TrajectoryEncoder() = default;

  /// Representation dimensionality.
  virtual int64_t dim() const = 0;

  /// Encodes a batch with gradients (for fine-tuning). Returns [B, dim].
  virtual tensor::Tensor EncodeBatch(
      const std::vector<const traj::Trajectory*>& batch, EncodeMode mode) = 0;

  /// \brief Inference entry point: encodes a batch without recording
  /// autograd state, so no graph nodes or gradient buffers are allocated.
  ///
  /// This is the API every embedding *consumer* (corpus embedding, the
  /// frozen-encoder task paths, the serving plane) goes through; EncodeBatch
  /// remains the fine-tuning surface. Callers must put the encoder in eval
  /// mode first (SetTraining(false)) — InferBatch does not toggle it, so
  /// encoders may hoist work that is invariant while parameters are frozen
  /// (StartEncoder caches its stage-1 road representations across calls).
  /// The default implementation (inherited by the baselines) wraps
  /// EncodeBatch in a NoGradGuard. Returns [B, dim].
  virtual tensor::Tensor InferBatch(
      const std::vector<const traj::Trajectory*>& batch, EncodeMode mode) {
    tensor::NoGradGuard no_grad;
    return EncodeBatch(batch, mode);
  }

  /// Parameters updated during fine-tuning.
  virtual std::vector<tensor::Tensor> TrainableParameters() = 0;

  /// Toggles dropout etc.
  virtual void SetTraining(bool training) = 0;

  /// Sets the generator used for dropout mask sampling (see
  /// nn::Module::SetDropoutRng); the fine-tuning tasks seed one from
  /// TaskConfig::seed so a fine-tune run is reproducible regardless of what
  /// consumed the global stream before it. Default: no-op (encoders without
  /// dropout). Pass nullptr to fall back to common::GlobalRng().
  virtual void SetDropoutRng(common::Rng* rng) { (void)rng; }

  /// Warm-starts the encoder from a pre-trained checkpoint instead of
  /// training from scratch (see core/checkpoint.h). `allow_missing` /
  /// `skip_mismatched` mirror Module::Load: a fine-tuning model may add a
  /// head the checkpoint lacks, and |V|-bound tensors cannot move between
  /// road networks. Default: not supported by this encoder. (Defined inline
  /// so this interface keeps no out-of-line virtuals — core implements
  /// adapters against it and must not need eval's objects at link time.)
  virtual common::Status WarmStart(const std::string& checkpoint_path,
                                   bool allow_missing = false,
                                   bool skip_mismatched = false) {
    (void)allow_missing;
    (void)skip_mismatched;
    return common::Status::Unimplemented(
        "this encoder cannot load checkpoints (" + checkpoint_path + ")");
  }

  /// Convenience: embeds a corpus without gradients; row-major [n, dim].
  std::vector<float> EmbedAll(const std::vector<traj::Trajectory>& trajs,
                              EncodeMode mode, int64_t batch_size = 64);
};

/// Pads a pointer batch into the model-facing data::Batch for an encode
/// mode (full views vs. the departure-only ETA protocol). The single place
/// the mode -> view translation lives; shared by StartEncoder and the
/// serving plane's FrozenEncoder. (Defined inline for the same reason this
/// interface keeps no out-of-line virtuals: core implements adapters
/// against eval and must not need eval's objects at link time.)
inline data::Batch MakeModeBatch(
    const std::vector<const traj::Trajectory*>& batch, EncodeMode mode) {
  START_CHECK(!batch.empty());
  std::vector<data::View> views;
  views.reserve(batch.size());
  for (const auto* t : batch) {
    views.push_back(mode == EncodeMode::kDepartureOnly ? data::MakeEtaView(*t)
                                                       : data::MakeView(*t));
  }
  return data::MakeBatch(views);
}

/// \brief The shared corpus-embedding loop behind every EmbedAll.
///
/// Builds a deterministic length-bucketed plan over `trajs` (corpus order
/// in, so embeddings never depend on scheduling), calls `encode` per batch
/// (must return dense-compactable [B, dim] rows), and scatters rows back to
/// corpus positions. Keeping this in one place means the eval harness and
/// serve::FrozenEncoder cannot drift apart in how a corpus is embedded.
std::vector<float> EmbedAllWith(
    int64_t dim, const std::vector<traj::Trajectory>& trajs,
    int64_t batch_size,
    const std::function<
        tensor::Tensor(const std::vector<const traj::Trajectory*>&)>& encode);

}  // namespace start::eval

#endif  // START_EVAL_ENCODER_H_
