#ifndef START_EVAL_ENCODER_H_
#define START_EVAL_ENCODER_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "traj/trajectory.h"

namespace start::eval {

/// How much temporal information an encoder may consume.
enum class EncodeMode {
  kFull,           ///< Pre-training / similarity: full timestamps available.
  kDepartureOnly,  ///< ETA fine-tuning protocol (Sec. IV-D2): only the
                   ///< departure time is exposed.
};

/// \brief Common interface over START and every baseline: a model that maps
/// trajectories to d-dimensional representations.
///
/// The downstream-task harness (eval/tasks.h) and the similarity protocols
/// only see this interface, so Table II's per-model rows all run through
/// identical task code.
class TrajectoryEncoder {
 public:
  virtual ~TrajectoryEncoder() = default;

  /// Representation dimensionality.
  virtual int64_t dim() const = 0;

  /// Encodes a batch with gradients (for fine-tuning). Returns [B, dim].
  virtual tensor::Tensor EncodeBatch(
      const std::vector<const traj::Trajectory*>& batch, EncodeMode mode) = 0;

  /// Parameters updated during fine-tuning.
  virtual std::vector<tensor::Tensor> TrainableParameters() = 0;

  /// Toggles dropout etc.
  virtual void SetTraining(bool training) = 0;

  /// Convenience: embeds a corpus without gradients; row-major [n, dim].
  std::vector<float> EmbedAll(const std::vector<traj::Trajectory>& trajs,
                              EncodeMode mode, int64_t batch_size = 64);
};

}  // namespace start::eval

#endif  // START_EVAL_ENCODER_H_
