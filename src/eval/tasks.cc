#include "eval/tasks.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/check.h"
#include "common/logging.h"
#include "common/rng.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace start::eval {

using tensor::Shape;
using tensor::Tensor;

namespace {

std::vector<const traj::Trajectory*> MakeBatchPtrs(
    const std::vector<traj::Trajectory>& trajs,
    const std::vector<int64_t>& order, int64_t begin, int64_t end) {
  std::vector<const traj::Trajectory*> out;
  out.reserve(static_cast<size_t>(end - begin));
  for (int64_t i = begin; i < end; ++i) {
    out.push_back(&trajs[static_cast<size_t>(order[static_cast<size_t>(i)])]);
  }
  return out;
}

/// Assembles a [B, dim] batch from pre-embedded rows ([n, dim] row-major),
/// following `order[begin, end)`. Frozen-encoder (linear-probe) training
/// embeds the split once and gathers per epoch: the frozen path is
/// deterministic and batch-composition invariant, so the gathered rows are
/// bitwise what InferBatch would have produced for the shuffled batch.
Tensor GatherEmbeddedRows(const std::vector<float>& rows, int64_t dim,
                          const std::vector<int64_t>& order, int64_t begin,
                          int64_t end) {
  std::vector<float> out(static_cast<size_t>((end - begin) * dim));
  for (int64_t i = begin; i < end; ++i) {
    std::memcpy(out.data() + (i - begin) * dim,
                rows.data() + order[static_cast<size_t>(i)] * dim,
                static_cast<size_t>(dim) * sizeof(float));
  }
  return Tensor::FromVector(Shape({end - begin, dim}), std::move(out));
}

/// Warm-starts the encoder from the configured checkpoint before any
/// fine-tuning step runs. A missing/corrupt artifact is a programming error
/// at this layer (callers gate on CheckpointExists when it is optional).
void MaybeWarmStart(TrajectoryEncoder* encoder, const TaskConfig& config) {
  if (config.encoder_checkpoint.empty()) return;
  const auto st =
      encoder->WarmStart(config.encoder_checkpoint, /*allow_missing=*/false,
                         config.checkpoint_skip_mismatched);
  START_CHECK_MSG(st.ok(), "encoder warm-start failed: " << st.ToString());
}

}  // namespace

EtaResult FinetuneEta(TrajectoryEncoder* encoder,
                      const std::vector<traj::Trajectory>& train,
                      const std::vector<traj::Trajectory>& test,
                      const TaskConfig& config) {
  START_CHECK(encoder != nullptr);
  START_CHECK(!train.empty());
  START_CHECK(!test.empty());
  MaybeWarmStart(encoder, config);
  common::Rng rng(config.seed);
  common::Rng head_rng = rng.Fork();
  // Dropout draws from a run-private stream, so the fine-tune trajectory is
  // a pure function of (encoder state, data, config.seed).
  common::Rng dropout_rng = rng.Fork();
  encoder->SetDropoutRng(&dropout_rng);
  nn::Linear head(encoder->dim(), 1, &head_rng);

  // Standardise the target (minutes) over the training split.
  double mean = 0.0;
  for (const auto& t : train) {
    mean += static_cast<double>(t.TravelTimeSeconds()) / 60.0;
  }
  mean /= static_cast<double>(train.size());
  double var = 0.0;
  for (const auto& t : train) {
    const double y = static_cast<double>(t.TravelTimeSeconds()) / 60.0 - mean;
    var += y * y;
  }
  const double stddev =
      std::sqrt(std::max(1e-8, var / static_cast<double>(train.size())));

  std::vector<Tensor> params = head.Parameters();
  if (config.finetune_encoder) {
    for (auto& p : encoder->TrainableParameters()) params.push_back(p);
  }
  nn::AdamW opt(params, config.lr);
  // A frozen encoder (linear probe) stays in eval mode and is driven through
  // the no-grad inference surface: no encoder dropout, no autograd graph
  // below the head. Frozen embeddings are deterministic and
  // batch-composition invariant, so the train split is embedded ONCE
  // (EmbedAll = bucketed InferBatch) and every epoch gathers cached rows
  // instead of re-running the encoder forward.
  encoder->SetTraining(config.finetune_encoder);
  head.SetTraining(true);
  std::vector<float> frozen_rows;  // [n, dim] when the encoder is frozen
  if (!config.finetune_encoder) {
    frozen_rows = encoder->EmbedAll(train, EncodeMode::kDepartureOnly,
                                    config.batch_size);
  }

  std::vector<int64_t> order(train.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int64_t>(i);
  const int64_t n = static_cast<int64_t>(train.size());
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    int64_t batches = 0;
    for (int64_t begin = 0; begin + 1 < n; begin += config.batch_size) {
      const int64_t end = std::min(n, begin + config.batch_size);
      const auto batch = MakeBatchPtrs(train, order, begin, end);
      std::vector<float> targets;
      targets.reserve(batch.size());
      for (const auto* t : batch) {
        targets.push_back(static_cast<float>(
            (static_cast<double>(t->TravelTimeSeconds()) / 60.0 - mean) /
            stddev));
      }
      const Tensor reps =
          config.finetune_encoder
              ? encoder->EncodeBatch(batch, EncodeMode::kDepartureOnly)
              : GatherEmbeddedRows(frozen_rows, encoder->dim(), order, begin,
                                   end);
      const Tensor pred = head.Forward(reps);  // [B, 1]
      Tensor loss = tensor::MseLoss(pred, targets);
      opt.ZeroGrad();
      loss.Backward();
      nn::ClipGradNorm(params, config.grad_clip);
      opt.Step();
      epoch_loss += loss.item();
      ++batches;
    }
    if (config.verbose) {
      START_LOG(Info) << "eta epoch " << epoch << " mse "
                      << epoch_loss / std::max<int64_t>(1, batches);
    }
  }

  // Evaluate on the test split: always the frozen-encoder path (InferBatch),
  // under an outer NoGradGuard so the head forward is graph-free too.
  EtaResult result;
  encoder->SetTraining(false);
  head.SetTraining(false);
  tensor::NoGradGuard no_grad;
  const int64_t tn = static_cast<int64_t>(test.size());
  std::vector<int64_t> id_order(test.size());
  for (size_t i = 0; i < id_order.size(); ++i) {
    id_order[i] = static_cast<int64_t>(i);
  }
  for (int64_t begin = 0; begin < tn; begin += config.batch_size) {
    const int64_t end = std::min(tn, begin + config.batch_size);
    const auto batch = MakeBatchPtrs(test, id_order, begin, end);
    const Tensor reps =
        encoder->InferBatch(batch, EncodeMode::kDepartureOnly);
    const Tensor pred = head.Forward(reps);
    for (int64_t i = 0; i < end - begin; ++i) {
      result.pred_minutes.push_back(
          static_cast<double>(pred.data()[i]) * stddev + mean);
      result.true_minutes.push_back(
          static_cast<double>(batch[static_cast<size_t>(i)]
                                  ->TravelTimeSeconds()) /
          60.0);
    }
  }
  result.metrics =
      ComputeRegressionMetrics(result.true_minutes, result.pred_minutes);
  encoder->SetDropoutRng(nullptr);  // the run-private stream goes away now
  return result;
}

ClassificationResult FinetuneClassification(
    TrajectoryEncoder* encoder, const std::vector<traj::Trajectory>& train,
    const std::vector<traj::Trajectory>& test, const LabelFn& label_fn,
    int64_t num_classes, int64_t recall_k, const TaskConfig& config) {
  START_CHECK(encoder != nullptr);
  START_CHECK_GT(num_classes, 1);
  MaybeWarmStart(encoder, config);
  common::Rng rng(config.seed);
  common::Rng head_rng = rng.Fork();
  // See FinetuneEta: run-private dropout stream for reproducibility.
  common::Rng dropout_rng = rng.Fork();
  encoder->SetDropoutRng(&dropout_rng);
  nn::Linear head(encoder->dim(), num_classes, &head_rng);

  std::vector<Tensor> params = head.Parameters();
  if (config.finetune_encoder) {
    for (auto& p : encoder->TrainableParameters()) params.push_back(p);
  }
  nn::AdamW opt(params, config.lr);
  // See FinetuneEta: a frozen encoder embeds the split once and the epochs
  // train the head on gathered cached rows.
  encoder->SetTraining(config.finetune_encoder);
  head.SetTraining(true);
  std::vector<float> frozen_rows;  // [n, dim] when the encoder is frozen
  if (!config.finetune_encoder) {
    frozen_rows = encoder->EmbedAll(train, EncodeMode::kFull,
                                    config.batch_size);
  }

  std::vector<int64_t> order(train.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int64_t>(i);
  const int64_t n = static_cast<int64_t>(train.size());
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    int64_t batches = 0;
    for (int64_t begin = 0; begin + 1 < n; begin += config.batch_size) {
      const int64_t end = std::min(n, begin + config.batch_size);
      const auto batch = MakeBatchPtrs(train, order, begin, end);
      std::vector<int64_t> labels;
      labels.reserve(batch.size());
      for (const auto* t : batch) {
        const int64_t y = label_fn(*t);
        START_CHECK(y >= 0 && y < num_classes);
        labels.push_back(y);
      }
      const Tensor reps =
          config.finetune_encoder
              ? encoder->EncodeBatch(batch, EncodeMode::kFull)
              : GatherEmbeddedRows(frozen_rows, encoder->dim(), order, begin,
                                   end);
      const Tensor logits = head.Forward(reps);
      Tensor loss = tensor::CrossEntropyWithLogits(logits, labels);
      opt.ZeroGrad();
      loss.Backward();
      nn::ClipGradNorm(params, config.grad_clip);
      opt.Step();
      epoch_loss += loss.item();
      ++batches;
    }
    if (config.verbose) {
      START_LOG(Info) << "cls epoch " << epoch << " ce "
                      << epoch_loss / std::max<int64_t>(1, batches);
    }
  }

  ClassificationResult result;
  encoder->SetTraining(false);
  head.SetTraining(false);
  tensor::NoGradGuard no_grad;
  std::vector<double> pos_scores;       // binary AUC
  std::vector<double> all_scores;       // Recall@k
  const int64_t tn = static_cast<int64_t>(test.size());
  std::vector<int64_t> id_order(test.size());
  for (size_t i = 0; i < id_order.size(); ++i) {
    id_order[i] = static_cast<int64_t>(i);
  }
  for (int64_t begin = 0; begin < tn; begin += config.batch_size) {
    const int64_t end = std::min(tn, begin + config.batch_size);
    const auto batch = MakeBatchPtrs(test, id_order, begin, end);
    const Tensor reps = encoder->InferBatch(batch, EncodeMode::kFull);
    const Tensor probs = tensor::SoftmaxLastDim(head.Forward(reps));
    for (int64_t i = 0; i < end - begin; ++i) {
      const float* row = probs.data() + i * num_classes;
      int64_t argmax = 0;
      for (int64_t c = 1; c < num_classes; ++c) {
        if (row[c] > row[argmax]) argmax = c;
      }
      result.predictions.push_back(argmax);
      result.labels.push_back(label_fn(*batch[static_cast<size_t>(i)]));
      if (num_classes == 2) pos_scores.push_back(row[1]);
      for (int64_t c = 0; c < num_classes; ++c) {
        all_scores.push_back(row[c]);
      }
    }
  }
  result.accuracy = Accuracy(result.labels, result.predictions);
  result.micro_f1 = MicroF1(result.labels, result.predictions);
  result.macro_f1 = MacroF1(result.labels, result.predictions, num_classes);
  result.recall_at_k =
      RecallAtK(result.labels, all_scores, num_classes, recall_k);
  if (num_classes == 2) {
    result.f1 = BinaryF1(result.labels, result.predictions);
    result.auc = BinaryAuc(result.labels, pos_scores);
  }
  encoder->SetDropoutRng(nullptr);  // the run-private stream goes away now
  return result;
}

}  // namespace start::eval
