#ifndef START_EVAL_TASKS_H_
#define START_EVAL_TASKS_H_

#include <functional>
#include <vector>

#include "eval/encoder.h"
#include "eval/metrics.h"
#include "traj/trajectory.h"

namespace start::eval {

/// \brief Fine-tuning hyper-parameters shared by the downstream tasks
/// (Sec. III-D / IV-C2).
struct TaskConfig {
  int64_t epochs = 4;
  int64_t batch_size = 32;
  double lr = 1e-3;
  double grad_clip = 5.0;
  uint64_t seed = 11;
  bool verbose = false;
  /// When false, the encoder is frozen and only the head is trained (used by
  /// linear-probe style experiments). The frozen path drives the encoder in
  /// eval mode through TrajectoryEncoder::InferBatch, so head training runs
  /// grad-free below the head (no encoder dropout, no graph through the
  /// encoder).
  bool finetune_encoder = true;
  /// When non-empty, the encoder is warm-started from this checkpoint (a
  /// core::Pretrain artifact) before fine-tuning, instead of whatever state
  /// it happens to be in — the Sec. III-D protocol of consuming the
  /// pre-trained encoder, without re-running pre-training.
  std::string encoder_checkpoint;
  /// Passed to TrajectoryEncoder::WarmStart: leave |V|-bound tensors (e.g.
  /// the MLM head) at their fresh values when the checkpoint comes from a
  /// different road network (cross-city transfer, Table III).
  bool checkpoint_skip_mismatched = false;
};

/// \brief Result of the travel-time-estimation task (Sec. III-D1).
struct EtaResult {
  RegressionMetrics metrics;           ///< In minutes.
  std::vector<double> true_minutes;    ///< Per test trajectory.
  std::vector<double> pred_minutes;
};

/// Fine-tunes a regression head (FC layer, Eq. 16) on travel times; only the
/// departure time is exposed to the encoder (EncodeMode::kDepartureOnly).
EtaResult FinetuneEta(TrajectoryEncoder* encoder,
                      const std::vector<traj::Trajectory>& train,
                      const std::vector<traj::Trajectory>& test,
                      const TaskConfig& config);

/// Extracts a class label from a trajectory.
using LabelFn = std::function<int64_t(const traj::Trajectory&)>;

/// \brief Result of the trajectory-classification task (Sec. III-D2).
struct ClassificationResult {
  // Binary metrics (meaningful when num_classes == 2).
  double accuracy = 0.0;
  double f1 = 0.0;
  double auc = 0.0;
  // Multi-class metrics.
  double micro_f1 = 0.0;
  double macro_f1 = 0.0;
  double recall_at_k = 0.0;
  std::vector<int64_t> labels;
  std::vector<int64_t> predictions;
};

/// Fine-tunes a softmax head (Eq. 17). `recall_k` sets the k of Recall@k.
ClassificationResult FinetuneClassification(
    TrajectoryEncoder* encoder, const std::vector<traj::Trajectory>& train,
    const std::vector<traj::Trajectory>& test, const LabelFn& label_fn,
    int64_t num_classes, int64_t recall_k, const TaskConfig& config);

}  // namespace start::eval

#endif  // START_EVAL_TASKS_H_
