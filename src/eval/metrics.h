#ifndef START_EVAL_METRICS_H_
#define START_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

namespace start::eval {

/// \brief Regression metrics of the travel-time task (Sec. IV-C3).
struct RegressionMetrics {
  double mae = 0.0;   ///< Mean absolute error (same unit as inputs).
  double mape = 0.0;  ///< Mean absolute percentage error, in percent.
  double rmse = 0.0;  ///< Root mean squared error.
};

RegressionMetrics ComputeRegressionMetrics(const std::vector<double>& truth,
                                           const std::vector<double>& pred);

/// Fraction of exact matches.
double Accuracy(const std::vector<int64_t>& labels,
                const std::vector<int64_t>& preds);

/// F1 of the positive class (binary tasks).
double BinaryF1(const std::vector<int64_t>& labels,
                const std::vector<int64_t>& preds, int64_t positive = 1);

/// Area under the ROC curve from positive-class scores (rank statistic;
/// ties get half credit).
double BinaryAuc(const std::vector<int64_t>& labels,
                 const std::vector<double>& scores);

/// Micro-averaged F1; equals accuracy for single-label multi-class tasks.
double MicroF1(const std::vector<int64_t>& labels,
               const std::vector<int64_t>& preds);

/// Macro-averaged F1 over `num_classes` classes (absent classes count 0).
double MacroF1(const std::vector<int64_t>& labels,
               const std::vector<int64_t>& preds, int64_t num_classes);

/// Fraction of samples whose true class is within the top-k scores.
/// `scores` is row-major [n, num_classes].
double RecallAtK(const std::vector<int64_t>& labels,
                 const std::vector<double>& scores, int64_t num_classes,
                 int64_t k);

}  // namespace start::eval

#endif  // START_EVAL_METRICS_H_
