#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace start::eval {

RegressionMetrics ComputeRegressionMetrics(const std::vector<double>& truth,
                                           const std::vector<double>& pred) {
  START_CHECK_EQ(truth.size(), pred.size());
  START_CHECK(!truth.empty());
  RegressionMetrics m;
  double se = 0.0;
  int64_t mape_n = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    const double err = pred[i] - truth[i];
    m.mae += std::fabs(err);
    se += err * err;
    if (std::fabs(truth[i]) > 1e-9) {
      m.mape += std::fabs(err / truth[i]);
      ++mape_n;
    }
  }
  const double n = static_cast<double>(truth.size());
  m.mae /= n;
  m.rmse = std::sqrt(se / n);
  m.mape = mape_n > 0 ? 100.0 * m.mape / static_cast<double>(mape_n) : 0.0;
  return m;
}

double Accuracy(const std::vector<int64_t>& labels,
                const std::vector<int64_t>& preds) {
  START_CHECK_EQ(labels.size(), preds.size());
  START_CHECK(!labels.empty());
  int64_t correct = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == preds[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

double BinaryF1(const std::vector<int64_t>& labels,
                const std::vector<int64_t>& preds, int64_t positive) {
  START_CHECK_EQ(labels.size(), preds.size());
  int64_t tp = 0, fp = 0, fn = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    const bool t = labels[i] == positive;
    const bool p = preds[i] == positive;
    if (t && p) ++tp;
    if (!t && p) ++fp;
    if (t && !p) ++fn;
  }
  if (tp == 0) return 0.0;
  const double precision = static_cast<double>(tp) / static_cast<double>(tp + fp);
  const double recall = static_cast<double>(tp) / static_cast<double>(tp + fn);
  return 2.0 * precision * recall / (precision + recall);
}

double BinaryAuc(const std::vector<int64_t>& labels,
                 const std::vector<double>& scores) {
  START_CHECK_EQ(labels.size(), scores.size());
  // Mann-Whitney U statistic via rank sums (ties averaged).
  std::vector<size_t> order(labels.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });
  std::vector<double> rank(labels.size());
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j < order.size() && scores[order[j]] == scores[order[i]]) ++j;
    const double avg_rank = 0.5 * static_cast<double>(i + j - 1) + 1.0;
    for (size_t k = i; k < j; ++k) rank[order[k]] = avg_rank;
    i = j;
  }
  double pos_rank_sum = 0.0;
  int64_t npos = 0, nneg = 0;
  for (size_t k = 0; k < labels.size(); ++k) {
    if (labels[k] == 1) {
      pos_rank_sum += rank[k];
      ++npos;
    } else {
      ++nneg;
    }
  }
  if (npos == 0 || nneg == 0) return 0.5;
  const double u = pos_rank_sum -
                   static_cast<double>(npos) * (static_cast<double>(npos) + 1.0) / 2.0;
  return u / (static_cast<double>(npos) * static_cast<double>(nneg));
}

double MicroF1(const std::vector<int64_t>& labels,
               const std::vector<int64_t>& preds) {
  // Single-label micro-F1 reduces to accuracy.
  return Accuracy(labels, preds);
}

double MacroF1(const std::vector<int64_t>& labels,
               const std::vector<int64_t>& preds, int64_t num_classes) {
  START_CHECK_EQ(labels.size(), preds.size());
  START_CHECK_GT(num_classes, 0);
  double total = 0.0;
  for (int64_t c = 0; c < num_classes; ++c) {
    int64_t tp = 0, fp = 0, fn = 0;
    for (size_t i = 0; i < labels.size(); ++i) {
      const bool t = labels[i] == c;
      const bool p = preds[i] == c;
      if (t && p) ++tp;
      if (!t && p) ++fp;
      if (t && !p) ++fn;
    }
    if (tp > 0) {
      const double precision =
          static_cast<double>(tp) / static_cast<double>(tp + fp);
      const double recall =
          static_cast<double>(tp) / static_cast<double>(tp + fn);
      total += 2.0 * precision * recall / (precision + recall);
    }
  }
  return total / static_cast<double>(num_classes);
}

double RecallAtK(const std::vector<int64_t>& labels,
                 const std::vector<double>& scores, int64_t num_classes,
                 int64_t k) {
  START_CHECK_GT(num_classes, 0);
  START_CHECK_EQ(scores.size(), labels.size() * static_cast<size_t>(num_classes));
  START_CHECK_GT(k, 0);
  int64_t hits = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    const double* row = scores.data() + i * static_cast<size_t>(num_classes);
    const double label_score = row[labels[i]];
    int64_t better = 0;
    for (int64_t c = 0; c < num_classes; ++c) {
      if (row[c] > label_score) ++better;
    }
    if (better < k) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(labels.size());
}

}  // namespace start::eval
