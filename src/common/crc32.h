#ifndef START_COMMON_CRC32_H_
#define START_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace start::common {

/// \brief CRC-32 (IEEE 802.3, reflected 0xEDB88320) over `n` bytes.
///
/// The one integrity checksum every serialized artifact in the repo uses:
/// the tensor/checkpoint container (tensor::Crc32 delegates here) and the
/// contraction-hierarchy artifacts of the graph plane. `seed` chains calls:
/// Crc32(b, n2, Crc32(a, n1)) == Crc32(concat(a, b), n1 + n2).
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

}  // namespace start::common

#endif  // START_COMMON_CRC32_H_
