#include "common/logging.h"

#include <chrono>
#include <cstdio>
#include <ctime>

namespace start::common {

namespace {
LogLevel g_level = LogLevel::kInfo;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarning:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  (void)file;
  (void)line;
}

LogMessage::~LogMessage() {
  if (level_ < g_level) return;
  const auto now = std::chrono::system_clock::now();
  const std::time_t tt = std::chrono::system_clock::to_time_t(now);
  std::tm tm_buf;
  localtime_r(&tt, &tm_buf);
  char ts[32];
  std::strftime(ts, sizeof(ts), "%H:%M:%S", &tm_buf);
  std::fprintf(stderr, "[%s %s] %s\n", ts, LevelTag(level_),
               stream_.str().c_str());
}

}  // namespace internal
}  // namespace start::common
