#ifndef START_COMMON_ENV_H_
#define START_COMMON_ENV_H_

#include <string>

namespace start::common {

/// Reads an environment variable as a double, falling back to `fallback` when
/// unset or unparsable. Used by the bench harness for scale knobs
/// (e.g. START_BENCH_SCALE=2 doubles dataset sizes / epochs).
double GetEnvDouble(const std::string& name, double fallback);

/// Reads an environment variable as an int64, falling back to `fallback`.
int64_t GetEnvInt(const std::string& name, int64_t fallback);

}  // namespace start::common

#endif  // START_COMMON_ENV_H_
