#ifndef START_COMMON_LOGGING_H_
#define START_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace start::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is actually emitted (default: kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// RAII sink: accumulates a message and emits it (with a timestamp and level
/// tag) on destruction if the level passes the global threshold.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace start::common

#define START_LOG(level)                                            \
  ::start::common::internal::LogMessage(                            \
      ::start::common::LogLevel::k##level, __FILE__, __LINE__)

#endif  // START_COMMON_LOGGING_H_
