#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/check.h"

namespace start::common {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  START_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  START_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::ostringstream os;
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c];
      os << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    os << "\n";
    return os.str();
  };
  std::ostringstream os;
  os << render_row(headers_);
  os << "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) os << render_row(row);
  return os.str();
}

void TablePrinter::Print() const { std::printf("%s", ToString().c_str()); }

}  // namespace start::common
