#ifndef START_COMMON_CHECK_H_
#define START_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace start::common::internal {

/// Formats the failure banner and aborts. Never returns.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

}  // namespace start::common::internal

/// \brief Aborts with a diagnostic if `cond` is false.
///
/// Used for programming errors (invariant violations, API misuse); recoverable
/// conditions use Status/Result instead. Enabled in all build types: the checks
/// guard memory-safety-relevant invariants (e.g. tensor shape agreement).
#define START_CHECK(cond)                                                     \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::start::common::internal::CheckFailed(__FILE__, __LINE__, #cond, "");  \
    }                                                                         \
  } while (0)

/// START_CHECK with an extra streamed message: START_CHECK_MSG(a == b, a << " vs " << b).
#define START_CHECK_MSG(cond, stream_expr)                                     \
  do {                                                                         \
    if (!(cond)) {                                                             \
      std::ostringstream _oss;                                                 \
      _oss << stream_expr; /* NOLINT */                                        \
      ::start::common::internal::CheckFailed(__FILE__, __LINE__, #cond,        \
                                             _oss.str());                      \
    }                                                                          \
  } while (0)

#define START_CHECK_EQ(a, b) START_CHECK_MSG((a) == (b), (a) << " != " << (b))
#define START_CHECK_NE(a, b) START_CHECK_MSG((a) != (b), (a) << " == " << (b))
#define START_CHECK_LT(a, b) START_CHECK_MSG((a) < (b), (a) << " >= " << (b))
#define START_CHECK_LE(a, b) START_CHECK_MSG((a) <= (b), (a) << " > " << (b))
#define START_CHECK_GT(a, b) START_CHECK_MSG((a) > (b), (a) << " <= " << (b))
#define START_CHECK_GE(a, b) START_CHECK_MSG((a) >= (b), (a) << " < " << (b))

#endif  // START_COMMON_CHECK_H_
