#ifndef START_COMMON_THREAD_POOL_H_
#define START_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace start::common {

/// \brief Fixed-size worker pool with a FIFO task queue.
///
/// Shared infrastructure for everything that needs background threads: the
/// async data loader runs its augmentation workers on one, and future serving
/// work (request fan-out, shard queries) is expected to reuse it. Tasks are
/// plain `std::function<void()>`; long-running tasks (e.g. a loader worker
/// loop) are fine as long as they observe their own stop signal — the pool
/// only guarantees that the destructor waits for every submitted task to
/// finish.
///
/// Threading contract:
///  - `Submit` may be called from any thread, including from inside a task.
///  - The destructor stops accepting new work, drains already-queued tasks,
///    and joins all workers. It must not be called from inside a task.
///  - The pool never touches thread-local or global RNG state; tasks that
///    need randomness must carry their own seeded `Rng` (see
///    `data/loader.h` for the per-batch seeding scheme).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads);

  /// Drains queued tasks, waits for running ones, joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks submitted from inside a running task are executed
  /// even if the destructor has already begun draining (a chain of tasks that
  /// self-submits forever would make the destructor wait forever — tasks must
  /// terminate).
  void Submit(std::function<void()> task);

  /// Number of worker threads.
  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace start::common

#endif  // START_COMMON_THREAD_POOL_H_
