#ifndef START_COMMON_THREAD_POOL_H_
#define START_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace start::common {

/// \brief Count-down join latch for fan-out/fan-in over a ThreadPool.
///
/// The pool has no join primitive by design (tasks are fire-and-forget);
/// callers that submit a batch and need all of it finished — the sharded
/// trainer's per-replica phases, the all-reduce's per-parameter fan-out —
/// pair each task with `CountDown()` and block on `Wait()`. One-shot:
/// create a fresh latch per batch.
class Latch {
 public:
  explicit Latch(int count) : remaining_(count) {}

  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  /// Signals one task done. The counter is decremented (and the last waiter
  /// notified) under the lock, so a waiter that wakes and destroys the
  /// latch cannot race the signaling thread.
  void CountDown() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--remaining_ == 0) cv_.notify_all();
  }

  /// Blocks until CountDown() has been called `count` times.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return remaining_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int remaining_;
};

/// \brief Fixed-size worker pool with a FIFO task queue.
///
/// Shared infrastructure for everything that needs background threads: the
/// async data loader runs its augmentation workers on one, and future serving
/// work (request fan-out, shard queries) is expected to reuse it. Tasks are
/// plain `std::function<void()>`; long-running tasks (e.g. a loader worker
/// loop) are fine as long as they observe their own stop signal — the pool
/// only guarantees that the destructor waits for every submitted task to
/// finish.
///
/// Threading contract:
///  - `Submit` may be called from any thread, including from inside a task.
///  - The destructor stops accepting new work, drains already-queued tasks,
///    and joins all workers. It must not be called from inside a task.
///  - The pool never touches thread-local or global RNG state; tasks that
///    need randomness must carry their own seeded `Rng` (see
///    `data/loader.h` for the per-batch seeding scheme).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads);

  /// Drains queued tasks, waits for running ones, joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks submitted from inside a running task are executed
  /// even if the destructor has already begun draining (a chain of tasks that
  /// self-submits forever would make the destructor wait forever — tasks must
  /// terminate).
  void Submit(std::function<void()> task);

  /// Number of worker threads.
  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace start::common

#endif  // START_COMMON_THREAD_POOL_H_
