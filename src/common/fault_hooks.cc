#include "common/fault_hooks.h"

#include <chrono>
#include <thread>

namespace start::common {

namespace {

int64_t SteadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const FaultHooks& FaultHooks::Default() {
  static const FaultHooks instance;
  return instance;
}

void FaultHooks::SleepUs(int64_t micros) const {
  if (sleep_us) {
    sleep_us(micros);
    return;
  }
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

int64_t FaultHooks::NowUs() const {
  return now_us ? now_us() : SteadyNowUs();
}

}  // namespace start::common
