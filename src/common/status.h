#ifndef START_COMMON_STATUS_H_
#define START_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace start::common {

/// \brief Error category carried by a Status.
///
/// Mirrors the RocksDB/Arrow convention: a small closed set of machine-readable
/// codes plus a free-form human-readable message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kAlreadyExists = 4,
  kIOError = 5,
  kFailedPrecondition = 6,
  kInternal = 7,
  kUnimplemented = 8,
};

/// \brief Returns the canonical name of a status code (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// \brief Result of a fallible operation: a code plus message.
///
/// The library does not throw exceptions across public API boundaries; fallible
/// operations return Status (or Result<T> for operations that produce a value).
/// Programming errors are handled with START_CHECK instead.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: batch size must be > 0".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// \brief Either a value of type T or an error Status.
///
/// Analogous to arrow::Result / absl::StatusOr. Accessing the value of an
/// errored Result aborts (programming error), so callers must test ok() first
/// or use the START_ASSIGN_OR_RETURN macro.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (by design, mirroring arrow::Result).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status.
  Result(Status status) : payload_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Returns the error status (OK if the Result holds a value).
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  const T& value() const& { return std::get<T>(payload_); }
  T& value() & { return std::get<T>(payload_); }
  T&& value() && { return std::move(std::get<T>(payload_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace start::common

/// Propagates an error status out of the current function.
#define START_RETURN_IF_ERROR(expr)                                \
  do {                                                             \
    ::start::common::Status _st = (expr);                          \
    if (!_st.ok()) return _st;                                     \
  } while (0)

#define START_CONCAT_IMPL(x, y) x##y
#define START_CONCAT(x, y) START_CONCAT_IMPL(x, y)

/// Evaluates a Result<T> expression; on error returns the Status, otherwise
/// assigns the value into `lhs` (which may be a declaration).
#define START_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  auto START_CONCAT(_result_, __LINE__) = (rexpr);                 \
  if (!START_CONCAT(_result_, __LINE__).ok())                      \
    return START_CONCAT(_result_, __LINE__).status();              \
  lhs = std::move(START_CONCAT(_result_, __LINE__)).value()

#endif  // START_COMMON_STATUS_H_
