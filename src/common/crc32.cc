#include "common/crc32.h"

#include <vector>

namespace start::common {

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  // Table-driven CRC-32 (IEEE), table built once on first use.
  static const auto table = [] {
    std::vector<uint32_t> t(256);
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = seed ^ 0xffffffffu;
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace start::common
