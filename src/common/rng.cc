#include "common/rng.h"

#include <cmath>
#include <cstring>

#include "common/check.h"

namespace start::common {

namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
  have_cached_normal_ = false;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int64_t Rng::UniformInt(int64_t n) {
  START_CHECK_GT(n, 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t un = static_cast<uint64_t>(n);
  const uint64_t limit = UINT64_MAX - UINT64_MAX % un;
  uint64_t r;
  do {
    r = Next();
  } while (r >= limit);
  return static_cast<int64_t>(r % un);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  START_CHECK_LE(lo, hi);
  return lo + UniformInt(hi - lo + 1);
}

double Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller: generate two normals, cache one.
  double u1 = Uniform();
  double u2 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

int64_t Rng::Categorical(const std::vector<double>& weights) {
  START_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    START_CHECK_GE(w, 0.0);
    total += w;
  }
  START_CHECK_GT(total, 0.0);
  double x = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return static_cast<int64_t>(i);
  }
  return static_cast<int64_t>(weights.size()) - 1;
}

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  START_CHECK_LE(k, n);
  START_CHECK_GE(k, 0);
  std::vector<int64_t> all(n);
  for (int64_t i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher-Yates: only the first k positions need shuffling.
  for (int64_t i = 0; i < k; ++i) {
    int64_t j = i + UniformInt(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

Rng Rng::Fork() {
  Rng child(Next() ^ 0xa02bdbf7bb3c0a7ULL);
  return child;
}

std::vector<uint64_t> Rng::GetState() const {
  std::vector<uint64_t> out(state_, state_ + 4);
  out.push_back(have_cached_normal_ ? 1 : 0);
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(cached_normal_));
  std::memcpy(&bits, &cached_normal_, sizeof(bits));
  out.push_back(bits);
  return out;
}

void Rng::SetState(const std::vector<uint64_t>& state) {
  START_CHECK_EQ(state.size(), 6u);
  for (int i = 0; i < 4; ++i) state_[i] = state[static_cast<size_t>(i)];
  have_cached_normal_ = state[4] != 0;
  std::memcpy(&cached_normal_, &state[5], sizeof(cached_normal_));
}

Rng& GlobalRng() {
  static Rng rng(0x5eed5eedULL);
  return rng;
}

void SeedGlobalRng(uint64_t seed) { GlobalRng().Seed(seed); }

}  // namespace start::common
