#ifndef START_COMMON_FAULT_HOOKS_H_
#define START_COMMON_FAULT_HOOKS_H_

#include <cstdint>
#include <functional>

#include "common/status.h"

namespace start::common {

/// \brief Injection and clock seam for long-running concurrent subsystems
/// (the streaming ingestion pipeline is the first consumer).
///
/// Production code takes a `const FaultHooks*` (nullptr means Default())
/// and routes its sleeps, its latency clock, and one interception point per
/// stage through it; everything defaults to the real behavior, so the
/// production path has no test-only branches. Tests install lambdas that
/// fail the Nth item of a stage (exercising retry/backoff), record backoff
/// sleeps instead of sleeping (so retry tests take microseconds, not
/// walltime), or block inside the hook on a latch (a stalled worker).
///
/// Hooks must be thread-safe: stages invoke them concurrently from worker
/// threads.
struct FaultHooks {
  /// Invoked before stage `stage` processes the item with pipeline sequence
  /// number `seq`. A non-OK return is treated by retryable stages as a
  /// transient failure of that attempt; blocking inside the hook simulates
  /// a stalled worker. Unset (the default) means no interception.
  std::function<Status(const char* stage, int64_t seq)> before_stage;

  /// Backoff sleep between retry attempts. Unset falls back to a real
  /// std::this_thread::sleep_for.
  std::function<void(int64_t micros)> sleep_us;

  /// Monotonic microsecond clock used for stage-latency accounting. Unset
  /// falls back to std::chrono::steady_clock.
  std::function<int64_t()> now_us;

  /// The shared no-injection instance: real sleep, real clock, no
  /// interception.
  static const FaultHooks& Default();

  // Call-site helpers that apply the per-member fallbacks.
  Status BeforeStage(const char* stage, int64_t seq) const {
    return before_stage ? before_stage(stage, seq) : Status::OK();
  }
  void SleepUs(int64_t micros) const;
  int64_t NowUs() const;
};

}  // namespace start::common

#endif  // START_COMMON_FAULT_HOOKS_H_
