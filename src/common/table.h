#ifndef START_COMMON_TABLE_H_
#define START_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace start::common {

/// \brief Formats aligned text tables for the benchmark harness.
///
/// Every bench binary prints its reproduction of a paper table/figure through
/// this class so the output is uniform and diffable (a markdown-ish pipe table).
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; the number of cells must equal the number of headers.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 3);

  /// Renders the table with aligned columns.
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace start::common

#endif  // START_COMMON_TABLE_H_
