#include "common/thread_pool.h"

#include <utility>

#include "common/check.h"

namespace start::common {

ThreadPool::ThreadPool(int num_threads) {
  START_CHECK_GE(num_threads, 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  START_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Accepted even while the destructor is draining: a running task may
    // legally submit follow-up work, and workers only exit once the queue is
    // empty, so the follow-up still runs before join completes.
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

}  // namespace start::common
