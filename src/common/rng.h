#ifndef START_COMMON_RNG_H_
#define START_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace start::common {

/// \brief Deterministic pseudo-random number generator (xoshiro256**).
///
/// A single self-contained PRNG is used everywhere (data generation, parameter
/// initialisation, masking, augmentation) so that every experiment in the
/// benchmark harness is exactly reproducible from its seed. The seed is expanded
/// with SplitMix64 per the xoshiro reference implementation.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eedULL) { Seed(seed); }

  /// Re-seeds the generator deterministically.
  void Seed(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  int64_t UniformInt(int64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller.
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// True with probability p.
  bool Bernoulli(double p);

  /// Samples an index in [0, weights.size()) proportional to `weights`.
  /// Weights must be non-negative with a positive sum.
  int64_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (int64_t i = static_cast<int64_t>(v->size()) - 1; i > 0; --i) {
      int64_t j = UniformInt(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k);

  /// Forks an independent child generator (stream split by hashing the state).
  Rng Fork();

  /// Serialises the full generator state (xoshiro words + the Box-Muller
  /// cache) so a checkpointed training run can resume its random stream at
  /// the exact cursor where it stopped. The layout is 6 words:
  /// state[0..3], have_cached_normal, bit pattern of cached_normal.
  std::vector<uint64_t> GetState() const;

  /// Restores a state captured by GetState(). The next draw after SetState
  /// is bitwise identical to the draw the captured generator would have made.
  void SetState(const std::vector<uint64_t>& state);

 private:
  uint64_t state_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// \brief Process-wide RNG used by components that need randomness but take no
/// explicit Rng parameter (e.g. dropout inside autograd ops). Seed it once at
/// program start for reproducibility. Not thread-safe by design: training loops
/// in this library are single-threaded at the op-graph level (OpenMP is only
/// used inside individual kernels).
Rng& GlobalRng();

/// Seeds GlobalRng().
void SeedGlobalRng(uint64_t seed);

}  // namespace start::common

#endif  // START_COMMON_RNG_H_
