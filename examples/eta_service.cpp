// Travel-time estimation (ETA) service demo — the paper's first downstream
// task (Sec. III-D1). Pre-trains START, fine-tunes the regression head with
// only the departure time exposed, and serves a few example queries,
// demonstrating that the model has internalised rush-hour congestion.
#include <cstdio>

#include "core/pretrain.h"
#include "core/start_encoder.h"
#include "data/dataset.h"
#include "eval/tasks.h"
#include "roadnet/synthetic_city.h"
#include "traj/trip_generator.h"

int main() {
  using namespace start;
  std::printf("=== ETA service example ===\n");
  const roadnet::RoadNetwork net = roadnet::BuildSyntheticCity(
      {.grid_width = 8, .grid_height = 8, .seed = 5});
  traj::TrafficModel traffic(&net, {});
  traj::TripGenerator::Config trip_config;
  trip_config.num_drivers = 12;
  trip_config.num_days = 10;
  trip_config.seed = 6;
  traj::TripGenerator generator(&traffic, trip_config);
  const auto dataset = data::TrajDataset::FromCorpus(
      net, generator.Generate(), {.min_length = 6});
  const auto transfer = roadnet::TransferProbability::FromTrajectories(
      net, dataset.TrainRoadSequences());

  core::StartConfig config;
  config.d = 32;
  config.gat_heads = {4, 4, 1};
  config.encoder_layers = 2;
  config.encoder_heads = 4;
  config.max_len = 96;
  common::Rng rng(7);
  core::StartModel model(config, &net, &transfer, &rng);

  std::printf("pre-training on %zu trajectories...\n",
              dataset.train().size());
  core::PretrainConfig pretrain;
  pretrain.epochs = 8;
  pretrain.batch_size = 16;
  pretrain.lr = 2e-3;
  core::Pretrain(&model, dataset.train(), &traffic, pretrain);

  std::printf("fine-tuning the ETA head (departure time only)...\n");
  core::StartEncoder encoder(&model);
  eval::TaskConfig task;
  task.epochs = 5;
  task.batch_size = 32;
  task.lr = 2e-3;
  const auto result = eval::FinetuneEta(&encoder, dataset.train(),
                                        dataset.test(), task);
  std::printf("test metrics: MAE %.3f min, MAPE %.2f%%, RMSE %.3f min\n",
              result.metrics.mae, result.metrics.mape, result.metrics.rmse);

  // Serve example queries: the same route at night vs morning rush.
  std::printf("\nexample queries (same route, different departures):\n");
  traj::TripGenerator query_gen(&traffic, trip_config);
  const int64_t src = 3, dst = net.num_segments() - 5;
  for (const double hour : {3.0, 8.0, 12.0, 18.0}) {
    const int64_t depart =
        2 * traj::kSecondsPerDay + static_cast<int64_t>(hour * 3600);
    traj::Trajectory trip = query_gen.GenerateTrip(0, src, dst, depart);
    if (trip.size() < 2) continue;
    const double truth = trip.TravelTimeSeconds() / 60.0;
    // Strip realised timestamps: the service only knows route + departure.
    tensor::NoGradGuard no_grad;
    encoder.SetTraining(false);
    // Predict via a 1-trajectory "dataset" evaluation trick: reuse the head
    // weights learned above by re-running FinetuneEta's protocol would
    // retrain; instead report the simulator's truth vs the congestion-free
    // baseline to illustrate the temporal spread the model must capture.
    double free_flow = 0.0;
    for (const int64_t r : trip.roads) free_flow += net.FreeFlowTravelTime(r);
    std::printf("  depart %04.1fh: simulated %.1f min (free-flow %.1f min, "
                "congestion factor %.2fx)\n",
                hour, truth, free_flow / 60.0, truth * 60.0 / free_flow);
  }
  std::printf("\nthe fine-tuned model's MAPE above shows how well the "
              "departure-time embedding captures this congestion spread.\n");
  return 0;
}
