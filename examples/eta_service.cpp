// Travel-time estimation (ETA) service demo — the paper's first downstream
// task (Sec. III-D1), deployed on the serving plane. Pre-trains START,
// freezes the checkpoint into a serve::FrozenEncoder, trains a linear ETA
// head on embeddings obtained through the concurrent EmbeddingService (only
// the departure time is exposed, Sec. IV-D2), then serves live queries
// end-to-end: trajectory -> micro-batched embedding -> head -> minutes.
#include <cmath>
#include <cstdio>
#include <future>
#include <vector>

#include "core/checkpoint.h"
#include "core/pretrain.h"
#include "data/dataset.h"
#include "eval/metrics.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "roadnet/synthetic_city.h"
#include "serve/embedding_service.h"
#include "serve/frozen_encoder.h"
#include "tensor/ops.h"
#include "traj/trip_generator.h"

namespace {

/// Embeds a split through the service (departure-time-only view) into a
/// row-major [n, d] buffer.
std::vector<float> EmbedThroughService(
    start::serve::EmbeddingService* service,
    const std::vector<start::traj::Trajectory>& trajs) {
  std::vector<std::future<start::serve::EmbeddingRow>> futures;
  futures.reserve(trajs.size());
  for (const auto& t : trajs) {
    auto result =
        service->Encode(t, start::eval::EncodeMode::kDepartureOnly);
    if (!result.ok()) {
      std::fprintf(stderr, "encode rejected: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    futures.push_back(std::move(result).value());
  }
  std::vector<float> rows;
  for (auto& f : futures) {
    const start::serve::EmbeddingRow row = f.get();
    rows.insert(rows.end(), row.data(), row.data() + row.dim());
  }
  return rows;
}

}  // namespace

int main() {
  using namespace start;
  std::printf("=== ETA service example (serving plane) ===\n");
  const roadnet::RoadNetwork net = roadnet::BuildSyntheticCity(
      {.grid_width = 8, .grid_height = 8, .seed = 5});
  traj::TrafficModel traffic(&net, {});
  traj::TripGenerator::Config trip_config;
  trip_config.num_drivers = 12;
  trip_config.num_days = 10;
  trip_config.seed = 6;
  traj::TripGenerator generator(&traffic, trip_config);
  const auto dataset = data::TrajDataset::FromCorpus(
      net, generator.Generate(), {.min_length = 6});
  const auto transfer = roadnet::TransferProbability::FromTrajectories(
      net, dataset.TrainRoadSequences());

  core::StartConfig config;
  config.d = 32;
  config.gat_heads = {4, 4, 1};
  config.encoder_layers = 2;
  config.encoder_heads = 4;
  config.max_len = 96;
  common::Rng rng(7);
  core::StartModel model(config, &net, &transfer, &rng);

  std::printf("pre-training on %zu trajectories...\n",
              dataset.train().size());
  core::PretrainConfig pretrain;
  pretrain.epochs = 8;
  pretrain.batch_size = 16;
  pretrain.lr = 2e-3;
  pretrain.checkpoint_path = "/tmp/start_eta_model.sttn";
  core::Pretrain(&model, dataset.train(), &traffic, pretrain);

  // Freeze the artifact into the serving engine and put the concurrent
  // micro-batching service in front of it.
  auto loaded = serve::FrozenEncoder::Load(pretrain.checkpoint_path, config,
                                           &net, &transfer);
  if (!loaded.ok()) {
    std::fprintf(stderr, "frozen-engine load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  const auto engine = std::move(loaded).value();
  serve::ServiceConfig service_config;
  service_config.num_workers = 2;
  service_config.batch_deadline_us = 500;
  serve::EmbeddingService service(engine.get(), service_config);

  // Train the ETA head (Eq. 16: a single FC layer) on frozen embeddings
  // served by the engine — a linear probe, so the engine itself never needs
  // gradients. Targets are standardised minutes over the training split.
  std::printf("training the ETA head on served embeddings "
              "(departure time only)...\n");
  const auto& train = dataset.train();
  const std::vector<float> train_emb = EmbedThroughService(&service, train);
  double mean = 0.0;
  for (const auto& t : train) {
    mean += static_cast<double>(t.TravelTimeSeconds()) / 60.0;
  }
  mean /= static_cast<double>(train.size());
  double var = 0.0;
  for (const auto& t : train) {
    const double y = static_cast<double>(t.TravelTimeSeconds()) / 60.0 - mean;
    var += y * y;
  }
  const double stddev =
      std::sqrt(std::max(1e-8, var / static_cast<double>(train.size())));
  std::vector<float> targets;
  targets.reserve(train.size());
  for (const auto& t : train) {
    targets.push_back(static_cast<float>(
        (static_cast<double>(t.TravelTimeSeconds()) / 60.0 - mean) / stddev));
  }
  common::Rng head_rng(11);
  nn::Linear head(engine->dim(), 1, &head_rng);
  nn::AdamW opt(head.Parameters(), 2e-3);
  const tensor::Tensor x = tensor::Tensor::FromVector(
      tensor::Shape({static_cast<int64_t>(train.size()), engine->dim()}),
      std::vector<float>(train_emb));
  for (int epoch = 0; epoch < 60; ++epoch) {
    const tensor::Tensor pred = head.Forward(x);
    tensor::Tensor loss = tensor::MseLoss(pred, targets);
    opt.ZeroGrad();
    loss.Backward();
    opt.Step();
  }

  // Evaluate on the test split, everything through the service.
  const auto& test = dataset.test();
  const std::vector<float> test_emb = EmbedThroughService(&service, test);
  {
    tensor::NoGradGuard no_grad;
    head.SetTraining(false);
    const tensor::Tensor tx = tensor::Tensor::FromVector(
        tensor::Shape({static_cast<int64_t>(test.size()), engine->dim()}),
        std::vector<float>(test_emb));
    const tensor::Tensor pred = head.Forward(tx);
    std::vector<double> truth, predicted;
    for (size_t i = 0; i < test.size(); ++i) {
      truth.push_back(static_cast<double>(test[i].TravelTimeSeconds()) / 60.0);
      predicted.push_back(
          static_cast<double>(pred.data()[i]) * stddev + mean);
    }
    const auto metrics = eval::ComputeRegressionMetrics(truth, predicted);
    std::printf("test metrics: MAE %.3f min, MAPE %.2f%%, RMSE %.3f min\n",
                metrics.mae, metrics.mape, metrics.rmse);
  }
  const auto stats = service.stats();
  std::printf("service stats: %ld requests in %ld batches "
              "(%.1f coalesced/batch, padding efficiency %.3f)\n",
              stats.requests, stats.batches, stats.coalescing(),
              stats.padding_efficiency());

  // Serve live queries: the same route at night vs morning rush, predicted
  // end-to-end from route + departure time only.
  std::printf("\nlive queries (same route, different departures):\n");
  traj::TripGenerator query_gen(&traffic, trip_config);
  const int64_t src = 3, dst = net.num_segments() - 5;
  for (const double hour : {3.0, 8.0, 12.0, 18.0}) {
    const int64_t depart =
        2 * traj::kSecondsPerDay + static_cast<int64_t>(hour * 3600);
    traj::Trajectory trip = query_gen.GenerateTrip(0, src, dst, depart);
    if (trip.size() < 2) continue;
    const double truth = trip.TravelTimeSeconds() / 60.0;
    const auto row =
        service.EncodeSync(trip, eval::EncodeMode::kDepartureOnly);
    if (!row.ok()) continue;
    tensor::NoGradGuard no_grad;
    const tensor::Tensor qx = tensor::Tensor::FromVector(
        tensor::Shape({1, engine->dim()}), std::vector<float>(row.value()));
    const double eta =
        static_cast<double>(head.Forward(qx).data()[0]) * stddev + mean;
    std::printf("  depart %04.1fh: served ETA %.1f min | simulated %.1f min\n",
                hour, eta, truth);
  }
  std::printf("\nthe spread across departures shows the departure-time "
              "embedding has internalised rush-hour congestion — served "
              "entirely from the frozen artifact.\n");
  return 0;
}
