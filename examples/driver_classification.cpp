// Trajectory classification demo — the paper's second downstream task
// (Sec. III-D2), in its Porto-style multi-class form: identify the driver
// from the trajectory alone. Driver identity is recoverable because each
// simulated driver has home/work anchors and a personal route preference.
#include <cstdio>

#include "core/pretrain.h"
#include "core/start_encoder.h"
#include "data/dataset.h"
#include "eval/tasks.h"
#include "roadnet/synthetic_city.h"
#include "traj/trip_generator.h"

int main() {
  using namespace start;
  std::printf("=== driver classification example ===\n");
  const roadnet::RoadNetwork net = roadnet::BuildSyntheticCity(
      {.grid_width = 8, .grid_height = 8, .seed = 15});
  traj::TrafficModel traffic(&net, {});
  traj::TripGenerator::Config trip_config;
  trip_config.num_drivers = 8;
  trip_config.num_days = 12;
  trip_config.driver_preference = 0.8;
  trip_config.seed = 16;
  traj::TripGenerator generator(&traffic, trip_config);
  const auto dataset = data::TrajDataset::FromCorpus(
      net, generator.Generate(), {.min_length = 6});
  const int64_t num_drivers = dataset.num_drivers();
  std::printf("%zu trajectories from %ld drivers\n",
              dataset.train().size() + dataset.val().size() +
                  dataset.test().size(),
              num_drivers);

  const auto transfer = roadnet::TransferProbability::FromTrajectories(
      net, dataset.TrainRoadSequences());
  core::StartConfig config;
  config.d = 32;
  config.gat_heads = {4, 4, 1};
  config.encoder_layers = 2;
  config.encoder_heads = 4;
  config.max_len = 96;
  common::Rng rng(17);
  core::StartModel model(config, &net, &transfer, &rng);

  std::printf("pre-training...\n");
  core::PretrainConfig pretrain;
  pretrain.epochs = 8;
  pretrain.batch_size = 16;
  pretrain.lr = 2e-3;
  core::Pretrain(&model, dataset.train(), &traffic, pretrain);

  std::printf("fine-tuning the %ld-way softmax head...\n", num_drivers);
  core::StartEncoder encoder(&model);
  eval::TaskConfig task;
  task.epochs = 5;
  task.batch_size = 32;
  task.lr = 2e-3;
  const auto result = eval::FinetuneClassification(
      &encoder, dataset.train(), dataset.test(),
      [](const traj::Trajectory& t) { return t.driver_id; }, num_drivers, 3,
      task);
  std::printf("test metrics: Micro-F1 %.3f, Macro-F1 %.3f, Recall@3 %.3f\n",
              result.micro_f1, result.macro_f1, result.recall_at_k);
  std::printf("(chance Micro-F1 would be ~%.3f)\n", 1.0 / num_drivers);

  // Confusion summary: how often each driver is recognised.
  std::vector<int64_t> correct(num_drivers, 0), total(num_drivers, 0);
  for (size_t i = 0; i < result.labels.size(); ++i) {
    ++total[static_cast<size_t>(result.labels[i])];
    if (result.labels[i] == result.predictions[i]) {
      ++correct[static_cast<size_t>(result.labels[i])];
    }
  }
  std::printf("\nper-driver recall:\n");
  for (int64_t d = 0; d < num_drivers; ++d) {
    if (total[static_cast<size_t>(d)] == 0) continue;
    std::printf("  driver %ld: %.2f (%ld trips)\n", d,
                static_cast<double>(correct[static_cast<size_t>(d)]) /
                    total[static_cast<size_t>(d)],
                total[static_cast<size_t>(d)]);
  }
  return 0;
}
