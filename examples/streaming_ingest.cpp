// Streaming ingestion demo — the live half of the serving plane: raw GPS
// point streams flow through the staged StreamPipeline (HMM map matching ->
// micro-batched frozen-engine embedding -> in-order HNSW upsert) while
// similarity queries run against the same index, and a DriftMonitor watches
// the embedding distribution for the moment the live corpus stops looking
// like the one the model was trained on.
//
// The demo streams two phases:
//   phase 1: trips from the training fleet (same drivers, same districts) —
//            the drift reference is frozen from these windows;
//   phase 2: a redeployed fleet (new home/work anchors in other districts) —
//            the embedding mean vector moves, the drift callback fires, and
//            the demo prints the retraining plan it would kick off
//            (warm-start fine-tune via core::PretrainConfig::resume).
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "core/checkpoint.h"
#include "core/pretrain.h"
#include "data/dataset.h"
#include "roadnet/synthetic_city.h"
#include "serve/drift_monitor.h"
#include "serve/frozen_encoder.h"
#include "serve/hnsw_index.h"
#include "serve/stream_pipeline.h"
#include "traj/map_matching.h"
#include "traj/trip_generator.h"

namespace {

/// Streams noisy GPS replays of `trips` into the pipeline, ids starting at
/// `id_base`. Returns how many were pushed.
int64_t StreamTrips(start::serve::StreamPipeline* pipeline,
                    const start::roadnet::RoadNetwork& net,
                    const std::vector<start::traj::Trajectory>& trips,
                    int64_t id_base, start::common::Rng* rng) {
  int64_t pushed = 0;
  for (const auto& trip : trips) {
    start::serve::StreamItem item;
    item.id = id_base + pushed;
    item.gps = start::traj::SimulateGps(net, trip, /*sample_interval_s=*/30.0,
                                        /*noise_m=*/10.0, rng);
    if (item.gps.points.size() < 2) continue;
    if (pipeline->Push(std::move(item)).ok()) ++pushed;
  }
  return pushed;
}

void PrintStats(const start::serve::PipelineStats& s) {
  std::printf("  %-8s %10s %8s %8s %8s %10s %10s\n", "stage", "completed",
              "failed", "dropped", "retried", "p50 ms", "p95 ms");
  const auto row = [](const char* name, const start::serve::StageStats& st) {
    std::printf("  %-8s %10lld %8lld %8lld %8lld %10.3f %10.3f\n", name,
                static_cast<long long>(st.completed),
                static_cast<long long>(st.failed),
                static_cast<long long>(st.dropped),
                static_cast<long long>(st.retried), st.p50_ms, st.p95_ms);
  };
  row("match", s.match);
  row("embed", s.embed);
  row("upsert", s.upsert);
  std::printf("  accepted %lld -> ingested %lld, failed %lld, dropped %lld\n",
              static_cast<long long>(s.accepted),
              static_cast<long long>(s.ingested()),
              static_cast<long long>(s.total_failed()),
              static_cast<long long>(s.total_dropped()));
}

}  // namespace

int main() {
  using namespace start;
  std::printf("=== streaming ingestion example ===\n");
  const roadnet::RoadNetwork net = roadnet::BuildSyntheticCity(
      {.grid_width = 10, .grid_height = 10, .seed = 61});
  traj::TrafficModel traffic(&net, {});

  // The training fleet: phase-1 traffic comes from the same distribution.
  traj::TripGenerator::Config fleet_config;
  fleet_config.num_drivers = 10;
  fleet_config.num_days = 6;
  fleet_config.trips_per_driver_day = 4.0;
  fleet_config.seed = 62;
  traj::TripGenerator fleet(&traffic, fleet_config);
  const auto dataset = data::TrajDataset::FromCorpus(net, fleet.Generate(),
                                                     {.min_length = 6});
  const auto transfer = roadnet::TransferProbability::FromTrajectories(
      net, dataset.TrainRoadSequences());

  core::StartConfig config;
  config.d = 32;
  config.gat_heads = {4, 4, 1};
  config.encoder_layers = 2;
  config.encoder_heads = 4;
  config.max_len = 96;
  common::Rng rng(63);
  core::StartModel model(config, &net, &transfer, &rng);
  std::printf("pre-training on the phase-1 fleet...\n");
  core::PretrainConfig pretrain;
  pretrain.epochs = 4;
  pretrain.batch_size = 16;
  pretrain.lr = 2e-3;
  pretrain.checkpoint_path = "/tmp/start_streaming_model.sttn";
  core::Pretrain(&model, dataset.train(), &traffic, pretrain);

  auto loaded = serve::FrozenEncoder::Load(pretrain.checkpoint_path, config,
                                           &net, &transfer);
  if (!loaded.ok()) {
    std::fprintf(stderr, "frozen-engine load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  const auto engine = std::move(loaded).value();

  serve::HnswIndex index(engine->dim());
  serve::DriftConfig drift_config;
  drift_config.window_size = 64;
  drift_config.reference_windows = 2;
  drift_config.cosine_shift_threshold = 0.02;
  serve::DriftMonitor drift(engine->dim(), drift_config);
  std::atomic<int64_t> drift_fires{0};
  drift.SetOnDrift([&](const serve::DriftWindowStats& w) {
    if (drift_fires.fetch_add(1) > 0) return;  // print the plan once
    std::printf("\n*** DRIFT at window %lld: cosine shift %.4f, norm shift "
                "%.4f ***\n",
                static_cast<long long>(w.window), w.cosine_shift,
                w.norm_shift);
    std::printf("    -> would warm-start a fine-tune from %s\n",
                pretrain.checkpoint_path.c_str());
    std::printf("    -> (core::PretrainConfig{.resume = true} on the live "
                "window's trajectories, then hot-swap the frozen engine)\n\n");
  });

  serve::StreamConfig stream_config;
  stream_config.match_workers = 2;
  stream_config.embed_workers = 1;
  serve::StreamPipeline pipeline(engine.get(), &net, &index, stream_config,
                                 &drift);

  // Queries run against the index for the whole stream — the pipeline
  // upserts concurrently and the serve:: backends allow that by contract.
  const std::vector<traj::Trajectory> corpus = dataset.All();
  std::atomic<bool> stop_queries{false};
  std::atomic<int64_t> queries_served{0};
  std::thread querier([&] {
    common::Rng qrng(64);
    while (!stop_queries.load(std::memory_order_acquire)) {
      if (index.size() == 0) continue;
      const auto probe = engine->EncodeBatch(
          {&corpus[static_cast<size_t>(
              qrng.UniformInt(static_cast<int64_t>(corpus.size())))]},
          eval::EncodeMode::kFull);
      if (index.Query(probe.data(), engine->dim(), 5).ok()) {
        queries_served.fetch_add(1);
      }
    }
  });

  std::printf("phase 1: streaming the training fleet...\n");
  common::Rng gps_rng(65);
  common::Stopwatch timer;
  const int64_t phase1 = StreamTrips(&pipeline, net, corpus, 0, &gps_rng);
  pipeline.Flush();
  std::printf("phase 1 done: %lld trips pushed, %lld in index, "
              "drift windows %lld (reference frozen), %.0f trajs/sec\n",
              static_cast<long long>(phase1),
              static_cast<long long>(index.size()),
              static_cast<long long>(drift.windows_completed()),
              static_cast<double>(pipeline.stats().ingested()) /
                  timer.ElapsedSeconds());

  // Phase 2: the fleet redeploys — new drivers with home/work anchors in
  // different districts. Same roads, same model, different trip
  // distribution: the embedding mean moves and the monitor notices.
  std::printf("phase 2: streaming the redeployed fleet...\n");
  traj::TripGenerator::Config moved_config = fleet_config;
  moved_config.seed = 66;  // re-rolls every driver's anchor districts
  moved_config.zone_radius_m = 250.0;
  traj::TripGenerator moved_fleet(&traffic, moved_config);
  const auto moved = data::TrajDataset::FromCorpus(net, moved_fleet.Generate(),
                                                   {.min_length = 6});
  const int64_t phase2 =
      StreamTrips(&pipeline, net, moved.All(), 1000000, &gps_rng);
  pipeline.Flush();
  stop_queries.store(true, std::memory_order_release);
  querier.join();

  std::printf("phase 2 done: %lld trips pushed, %lld in index, %lld queries "
              "served during ingest\n",
              static_cast<long long>(phase2),
              static_cast<long long>(index.size()),
              static_cast<long long>(queries_served.load()));
  std::printf("drift monitor: %lld windows, %lld drift events\n",
              static_cast<long long>(drift.windows_completed()),
              static_cast<long long>(drift.drift_events()));
  std::printf("pipeline stats:\n");
  PrintStats(pipeline.stats());
  pipeline.Drain();

  if (drift_fires.load() == 0) {
    std::fprintf(stderr, "expected the redeployed fleet to trip the drift "
                         "monitor and it did not\n");
    return 1;
  }
  std::printf("done.\n");
  return 0;
}
