// Streaming ingestion demo — the live half of the serving plane, with the
// adaptation loop closed: raw GPS point streams flow through the staged
// StreamPipeline (HMM map matching -> micro-batched frozen-engine embedding
// -> in-order HNSW upsert) while similarity queries run against the same
// index, and a DriftMonitor watches the embedding distribution for the
// moment the live corpus stops looking like the one the model was trained
// on.
//
// The demo streams two phases:
//   phase 1: trips from the training fleet (same drivers, same districts) —
//            the drift reference is frozen from these windows;
//   phase 2: a redeployed fleet (new home/work anchors in other districts) —
//            the embedding mean vector moves, drift fires, and the
//            serve::AdaptationController runs one full round on a background
//            thread: warm-start fine-tune off the serving checkpoint, rebuild
//            a fresh engine + index from the recorded corpus, and hot-swap at
//            a quiescent sequence boundary while queries keep running.
//
// The process exits non-zero unless a swap actually completed (generation
// advanced past the base artifact), so CI runs this as an end-to-end smoke
// test of the adaptation loop.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "core/pretrain.h"
#include "data/dataset.h"
#include "roadnet/synthetic_city.h"
#include "serve/adaptation.h"
#include "serve/stream_pipeline.h"
#include "traj/map_matching.h"
#include "traj/trip_generator.h"

namespace {

/// Streams noisy GPS replays of `trips` into the controller, ids starting at
/// `id_base`. Returns how many were pushed.
int64_t StreamTrips(start::serve::AdaptationController* controller,
                    const start::roadnet::RoadNetwork& net,
                    const std::vector<start::traj::Trajectory>& trips,
                    int64_t id_base, start::common::Rng* rng) {
  int64_t pushed = 0;
  for (const auto& trip : trips) {
    start::serve::StreamItem item;
    item.id = id_base + pushed;
    item.gps = start::traj::SimulateGps(net, trip, /*sample_interval_s=*/30.0,
                                        /*noise_m=*/10.0, rng);
    if (item.gps.points.size() < 2) continue;
    if (controller->Push(std::move(item)).ok()) ++pushed;
  }
  return pushed;
}

void PrintStats(const start::serve::PipelineStats& s) {
  std::printf("  %-8s %10s %8s %8s %8s %10s %10s\n", "stage", "completed",
              "failed", "dropped", "retried", "p50 ms", "p95 ms");
  const auto row = [](const char* name, const start::serve::StageStats& st) {
    std::printf("  %-8s %10lld %8lld %8lld %8lld %10.3f %10.3f\n", name,
                static_cast<long long>(st.completed),
                static_cast<long long>(st.failed),
                static_cast<long long>(st.dropped),
                static_cast<long long>(st.retried), st.p50_ms, st.p95_ms);
  };
  row("match", s.match);
  row("embed", s.embed);
  row("upsert", s.upsert);
  std::printf("  accepted %lld -> ingested %lld, failed %lld, dropped %lld; "
              "engine epoch %lld (%lld swaps)\n",
              static_cast<long long>(s.accepted),
              static_cast<long long>(s.ingested()),
              static_cast<long long>(s.total_failed()),
              static_cast<long long>(s.total_dropped()),
              static_cast<long long>(s.epoch),
              static_cast<long long>(s.swaps));
}

}  // namespace

int main() {
  using namespace start;
  std::printf("=== streaming ingestion + adaptation example ===\n");
  const roadnet::RoadNetwork net = roadnet::BuildSyntheticCity(
      {.grid_width = 10, .grid_height = 10, .seed = 61});
  traj::TrafficModel traffic(&net, {});

  // The training fleet: phase-1 traffic comes from the same distribution.
  traj::TripGenerator::Config fleet_config;
  fleet_config.num_drivers = 10;
  fleet_config.num_days = 6;
  fleet_config.trips_per_driver_day = 4.0;
  fleet_config.seed = 62;
  traj::TripGenerator fleet(&traffic, fleet_config);
  const auto dataset = data::TrajDataset::FromCorpus(net, fleet.Generate(),
                                                     {.min_length = 6});
  const auto transfer = roadnet::TransferProbability::FromTrajectories(
      net, dataset.TrainRoadSequences());

  core::StartConfig config;
  config.d = 32;
  config.gat_heads = {4, 4, 1};
  config.encoder_layers = 2;
  config.encoder_heads = 4;
  config.max_len = 96;
  common::Rng rng(63);
  core::StartModel model(config, &net, &transfer, &rng);
  std::printf("pre-training on the phase-1 fleet...\n");
  core::PretrainConfig pretrain;
  pretrain.epochs = 4;
  pretrain.batch_size = 16;
  pretrain.lr = 2e-3;
  pretrain.checkpoint_path = "/tmp/start_streaming_gen_0.sttn";
  core::Pretrain(&model, dataset.train(), &traffic, pretrain);

  // The controller owns the whole serving stack: frozen engine, HNSW index,
  // drift monitor, ingestion pipeline, and the background adaptation worker.
  serve::AdaptationConfig adapt;
  adapt.model = config;
  adapt.artifact_dir = "/tmp";
  adapt.base_checkpoint = pretrain.checkpoint_path;
  adapt.finetune.epochs = 1;
  adapt.finetune.batch_size = 16;
  adapt.finetune.lr = 1e-3;
  adapt.drift.window_size = 64;
  adapt.drift.reference_windows = 2;
  adapt.drift.cosine_shift_threshold = 0.02;
  adapt.stream.match_workers = 2;
  adapt.stream.embed_workers = 1;
  auto created = serve::AdaptationController::Create(adapt, &net, &transfer,
                                                     &traffic);
  if (!created.ok()) {
    std::fprintf(stderr, "controller boot failed: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }
  const auto controller = std::move(created).value();

  // Queries run against the serving index for the whole stream — including
  // straight through the hot swap. Re-fetching engine() each iteration is
  // the serving contract: the bundle a query pins stays alive even if the
  // controller swaps a new generation in underneath.
  const std::vector<traj::Trajectory> corpus = dataset.All();
  std::atomic<bool> stop_queries{false};
  std::atomic<int64_t> queries_served{0};
  std::thread querier([&] {
    common::Rng qrng(64);
    while (!stop_queries.load(std::memory_order_acquire)) {
      const serve::EngineBundle engine = controller->engine();
      if (engine.index->size() == 0) continue;
      const auto probe = engine.encoder->EncodeBatch(
          {&corpus[static_cast<size_t>(
              qrng.UniformInt(static_cast<int64_t>(corpus.size())))]},
          eval::EncodeMode::kFull);
      if (engine.index->Query(probe.data(), engine.encoder->dim(), 5).ok()) {
        queries_served.fetch_add(1);
      }
    }
  });

  std::printf("phase 1: streaming the training fleet...\n");
  common::Rng gps_rng(65);
  common::Stopwatch timer;
  const int64_t phase1 = StreamTrips(controller.get(), net, corpus, 0,
                                     &gps_rng);
  controller->Flush();
  std::printf("phase 1 done: %lld trips pushed, %lld in index, "
              "%.0f trajs/sec\n",
              static_cast<long long>(phase1),
              static_cast<long long>(controller->engine().index->size()),
              static_cast<double>(controller->pipeline()->stats().ingested()) /
                  timer.ElapsedSeconds());

  // Phase 2: the fleet redeploys — new drivers with home/work anchors in
  // different districts. Same roads, same model, different trip
  // distribution: the embedding mean moves, the monitor notices, and the
  // controller runs the adaptation round on its own.
  std::printf("phase 2: streaming the redeployed fleet...\n");
  traj::TripGenerator::Config moved_config = fleet_config;
  moved_config.seed = 66;  // re-rolls every driver's anchor districts
  moved_config.zone_radius_m = 250.0;
  traj::TripGenerator moved_fleet(&traffic, moved_config);
  const auto moved = data::TrajDataset::FromCorpus(net, moved_fleet.Generate(),
                                                   {.min_length = 6});
  const int64_t phase2 =
      StreamTrips(controller.get(), net, moved.All(), 1000000, &gps_rng);
  controller->Flush();

  // Let the drift-triggered round finish: warm-start fine-tune, rebuild,
  // quiescent hot-swap, catch-up, persist.
  if (!controller->WaitUntilIdle(/*timeout_us=*/300'000'000)) {
    std::fprintf(stderr, "adaptation round did not finish in time\n");
    return 1;
  }
  stop_queries.store(true, std::memory_order_release);
  querier.join();

  const serve::AdaptationStats stats = controller->stats();
  std::printf("phase 2 done: %lld trips pushed, %lld in index, %lld queries "
              "served during ingest\n",
              static_cast<long long>(phase2),
              static_cast<long long>(controller->engine().index->size()),
              static_cast<long long>(queries_served.load()));
  std::printf("adaptation: %lld drift triggers -> %lld rounds completed "
              "(%lld failed, %lld skipped), generation %lld, %lld catch-up "
              "items, now serving %s\n",
              static_cast<long long>(stats.drift_triggers),
              static_cast<long long>(stats.rounds_completed),
              static_cast<long long>(stats.rounds_failed),
              static_cast<long long>(stats.rounds_skipped),
              static_cast<long long>(stats.generation),
              static_cast<long long>(stats.catch_up_items),
              controller->serving_checkpoint().c_str());
  std::printf("pipeline stats:\n");
  PrintStats(controller->pipeline()->stats());

  if (stats.drift_triggers == 0) {
    std::fprintf(stderr, "expected the redeployed fleet to trip the drift "
                         "monitor and it did not\n");
    return 1;
  }
  if (stats.generation < 1 || stats.rounds_completed < 1) {
    std::fprintf(stderr, "expected the drift-triggered round to complete a "
                         "hot swap (last error: %s)\n",
                 stats.last_error.c_str());
    return 1;
  }
  std::printf("done.\n");
  return 0;
}
