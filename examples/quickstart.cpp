// Quickstart: build a synthetic city, generate trajectories, pre-train a
// small START model with the two self-supervised tasks, checkpoint it, and
// warm-start a *fresh* model from the checkpoint for a similarity query —
// the minimal end-to-end tour of the public API, including the
// train-once/serve-many artifact flow.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/pretrain.h"
#include "core/start_encoder.h"
#include "data/dataset.h"
#include "eval/encoder.h"
#include "roadnet/synthetic_city.h"
#include "sim/search.h"
#include "sim/similarity.h"
#include "traj/trip_generator.h"

int main() {
  using namespace start;

  // 1. Build a road network (Definition 1). In production this would come
  //    from an OSM extract; here the synthetic-city generator stands in.
  std::printf("[1/5] building road network...\n");
  roadnet::SyntheticCityConfig city_config;
  city_config.grid_width = 8;
  city_config.grid_height = 8;
  const roadnet::RoadNetwork net = roadnet::BuildSyntheticCity(city_config);
  std::printf("      %ld road segments, %ld connectivity edges\n",
              net.num_segments(), net.num_edges());

  // 2. Generate road-network constrained trajectories (Definition 3) with
  //    rush-hour congestion and driver route preferences.
  std::printf("[2/5] generating trajectories...\n");
  traj::TrafficModel traffic(&net, {});
  traj::TripGenerator::Config trip_config;
  trip_config.num_drivers = 10;
  trip_config.num_days = 10;
  traj::TripGenerator generator(&traffic, trip_config);
  data::DatasetConfig dataset_config;
  dataset_config.min_length = 6;
  const auto dataset = data::TrajDataset::FromCorpus(
      net, generator.Generate(), dataset_config);
  std::printf("      %zu train / %zu val / %zu test trajectories\n",
              dataset.train().size(), dataset.val().size(),
              dataset.test().size());

  // 3. Estimate transfer probabilities (Eq. 2) from the training split and
  //    assemble the START model (TPE-GAT + TAT-Enc).
  std::printf("[3/5] building START model...\n");
  const auto transfer = roadnet::TransferProbability::FromTrajectories(
      net, dataset.TrainRoadSequences());
  core::StartConfig model_config;
  model_config.d = 32;
  model_config.gat_heads = {4, 4, 1};
  model_config.encoder_layers = 2;
  model_config.encoder_heads = 4;
  model_config.max_len = 96;
  common::Rng rng(7);
  core::StartModel model(model_config, &net, &transfer, &rng);
  std::printf("      %ld parameters\n", model.ParameterCount());

  // 4. Pre-train with span-masked recovery + trajectory contrastive
  //    learning (Sec. III-C), checkpointing the result. The checkpoint is a
  //    full training checkpoint: re-running this binary after an
  //    interruption would resume mid-plan (set pretrain_config.resume).
  std::printf("[4/5] self-supervised pre-training...\n");
  const std::string checkpoint = "/tmp/start_quickstart.sttn";
  core::PretrainConfig pretrain_config;
  pretrain_config.epochs = 6;
  pretrain_config.batch_size = 16;
  pretrain_config.lr = 2e-3;
  pretrain_config.verbose = true;
  pretrain_config.checkpoint_path = checkpoint;
  const auto stats =
      core::Pretrain(&model, dataset.train(), &traffic, pretrain_config);
  std::printf("      final loss %.4f (mask %.4f, contrastive %.4f)\n",
              stats.epoch_loss.back(), stats.epoch_mask_loss.back(),
              stats.epoch_contrastive_loss.back());
  std::printf("      checkpoint written to %s\n", checkpoint.c_str());

  // 5. Warm-start a *fresh* model from the checkpoint — the serving-side
  //    flow: no retraining, just load the artifact — and run a most-similar
  //    trajectory query on its frozen representations.
  std::printf("[5/5] similarity query from the checkpointed artifact...\n");
  common::Rng serving_rng(99);  // init values are irrelevant; overwritten
  core::StartModel served_model(model_config, &net, &transfer, &serving_rng);
  core::StartEncoder encoder(&served_model);
  if (const auto st = encoder.WarmStart(checkpoint); !st.ok()) {
    std::fprintf(stderr, "warm-start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::vector<traj::Trajectory> database(dataset.test().begin(),
                                         dataset.test().end());
  const traj::Trajectory query = database.front();
  const auto db_emb = encoder.EmbedAll(database, eval::EncodeMode::kFull);
  const auto q_emb = encoder.EmbedAll({query}, eval::EncodeMode::kFull);
  const auto top = sim::TopK(
      static_cast<int64_t>(database.size()), 4, [&](int64_t i) {
        return sim::EmbeddingDistance(q_emb.data(),
                                      db_emb.data() + i * model_config.d,
                                      model_config.d);
      });
  std::printf("      query: %ld roads departing %.1fh\n", query.size(),
              traj::HourOfDay(query.departure_time()));
  for (const int64_t idx : top) {
    const auto& t = database[static_cast<size_t>(idx)];
    std::printf("      match #%ld: %ld roads, departs %.1fh, driver %ld\n",
                idx, t.size(), traj::HourOfDay(t.departure_time()),
                t.driver_id);
  }
  std::printf("done.\n");
  return 0;
}
