// Trajectory clustering demo — the downstream application motivating DETECT
// and E2DTC (Sec. V-A). With generic pre-trained representations, clustering
// reduces to k-means in embedding space; the clusters recover latent trip
// structure (here: the simulated drivers) without any labels.
#include <cstdio>

#include "core/pretrain.h"
#include "core/start_encoder.h"
#include "data/dataset.h"
#include "roadnet/synthetic_city.h"
#include "sim/kmeans.h"
#include "traj/trip_generator.h"

int main() {
  using namespace start;
  std::printf("=== trajectory clustering example ===\n");
  const roadnet::RoadNetwork net = roadnet::BuildSyntheticCity(
      {.grid_width = 8, .grid_height = 8, .seed = 45});
  traj::TrafficModel traffic(&net, {});
  traj::TripGenerator::Config trip_config;
  trip_config.num_drivers = 6;
  trip_config.num_days = 12;
  trip_config.driver_preference = 0.8;
  trip_config.seed = 46;
  traj::TripGenerator generator(&traffic, trip_config);
  const auto dataset = data::TrajDataset::FromCorpus(
      net, generator.Generate(), {.min_length = 6});
  const auto transfer = roadnet::TransferProbability::FromTrajectories(
      net, dataset.TrainRoadSequences());

  core::StartConfig config;
  config.d = 32;
  config.gat_heads = {4, 4, 1};
  config.encoder_layers = 2;
  config.encoder_heads = 4;
  config.max_len = 96;
  common::Rng rng(47);
  core::StartModel model(config, &net, &transfer, &rng);
  std::printf("pre-training (no labels are ever used)...\n");
  core::PretrainConfig pretrain;
  pretrain.epochs = 10;
  pretrain.batch_size = 16;
  pretrain.lr = 2e-3;
  core::Pretrain(&model, dataset.train(), &traffic, pretrain);

  core::StartEncoder encoder(&model);
  const auto test = dataset.test();
  const auto embeddings = encoder.EmbedAll(test, eval::EncodeMode::kFull);
  const int64_t k = dataset.num_drivers();
  std::printf("k-means with k = %ld over %zu test embeddings...\n", k,
              test.size());
  common::Rng km_rng(48);
  const auto clusters = sim::KMeans(
      embeddings, static_cast<int64_t>(test.size()), config.d, k, &km_rng);
  std::printf("converged in %ld iterations, inertia %.2f\n",
              clusters.iterations, clusters.inertia);

  std::vector<int64_t> driver_labels;
  driver_labels.reserve(test.size());
  for (const auto& t : test) driver_labels.push_back(t.driver_id);
  const auto quality =
      sim::EvaluateClusters(clusters.assignments, driver_labels);
  std::printf("cluster quality vs (hidden) driver identity: purity %.3f, "
              "NMI %.3f\n",
              quality.purity, quality.nmi);
  std::printf("(chance purity for %ld balanced drivers would be ~%.3f)\n", k,
              1.0 / static_cast<double>(k));

  // Random-embedding control: same pipeline without pre-training.
  common::Rng rng2(49);
  core::StartModel fresh(config, &net, &transfer, &rng2);
  core::StartEncoder fresh_encoder(&fresh);
  const auto fresh_emb = fresh_encoder.EmbedAll(test, eval::EncodeMode::kFull);
  common::Rng km_rng2(48);
  const auto fresh_clusters = sim::KMeans(
      fresh_emb, static_cast<int64_t>(test.size()), config.d, k, &km_rng2);
  const auto fresh_quality =
      sim::EvaluateClusters(fresh_clusters.assignments, driver_labels);
  std::printf("control (random-init encoder): purity %.3f, NMI %.3f\n",
              fresh_quality.purity, fresh_quality.nmi);
  std::printf("\nboth clusterings beat chance: the embeddings organise trips "
              "by route structure without labels. (At this miniature scale "
              "an untrained encoder already propagates road identity, so "
              "pre-training's edge shows mainly in the fine-tuned tasks — "
              "see bench_fig6_train_size.)\n");
  return 0;
}
