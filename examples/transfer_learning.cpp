// Cross-city transfer demo — the paper's Sec. IV-E2 / Table III scenario:
// pre-train START on a large city, then fine-tune on a *different* small
// city. Possible because TPE-GAT parameters are independent of the number
// of road segments; only |V|-bound tensors (the MLM head) stay behind.
#include <cstdio>
#include <string>

#include "core/pretrain.h"
#include "core/start_encoder.h"
#include "data/dataset.h"
#include "eval/tasks.h"
#include "roadnet/synthetic_city.h"
#include "traj/trip_generator.h"

namespace {

using namespace start;

struct City {
  roadnet::RoadNetwork net;
  std::unique_ptr<traj::TrafficModel> traffic;
  std::unique_ptr<data::TrajDataset> dataset;
  std::unique_ptr<roadnet::TransferProbability> transfer;
};

City MakeCity(int32_t w, int32_t h, int64_t drivers, int64_t days,
              uint64_t seed) {
  City city;
  city.net = roadnet::BuildSyntheticCity(
      {.grid_width = w, .grid_height = h, .seed = seed});
  city.traffic = std::make_unique<traj::TrafficModel>(&city.net,
                                                      traj::TrafficModel::Config{});
  traj::TripGenerator::Config trips;
  trips.num_drivers = drivers;
  trips.num_days = days;
  trips.seed = seed + 1;
  traj::TripGenerator gen(city.traffic.get(), trips);
  data::DatasetConfig ds;
  ds.min_length = 5;
  ds.min_user_trajectories = 5;
  city.dataset = std::make_unique<data::TrajDataset>(
      data::TrajDataset::FromCorpus(city.net, gen.Generate(), ds));
  city.transfer = std::make_unique<roadnet::TransferProbability>(
      roadnet::TransferProbability::FromTrajectories(
          city.net, city.dataset->TrainRoadSequences()));
  return city;
}

core::StartConfig ModelConfig() {
  core::StartConfig config;
  config.d = 32;
  config.gat_heads = {4, 4, 1};
  config.encoder_layers = 2;
  config.encoder_heads = 4;
  config.max_len = 96;
  return config;
}

// Fine-tunes ETA on `city`. When `checkpoint` is non-empty the encoder is
// warm-started from it first (skip_mismatched leaves |V|-bound tensors — the
// MLM head — freshly initialised, since they cannot move between networks).
double EvalEta(core::StartModel* model, const City& city,
               const std::string& checkpoint = "") {
  core::StartEncoder encoder(model);
  eval::TaskConfig task;
  task.epochs = 6;
  task.batch_size = 32;
  task.lr = 2e-3;
  task.encoder_checkpoint = checkpoint;
  task.checkpoint_skip_mismatched = true;
  return eval::FinetuneEta(&encoder, city.dataset->train(),
                           city.dataset->test(), task)
      .metrics.mape;
}

}  // namespace

int main() {
  using namespace start;
  std::printf("=== transfer learning example ===\n");
  std::printf("building the big source city and the small target city...\n");
  City source = MakeCity(9, 9, 14, 12, 101);
  City target = MakeCity(5, 6, 5, 6, 202);
  std::printf("source: %ld segments, %zu train trajectories\n",
              source.net.num_segments(), source.dataset->train().size());
  std::printf("target: %ld segments, %zu train trajectories (data-poor!)\n",
              target.net.num_segments(), target.dataset->train().size());

  // Baseline: fine-tune on the target with random initialisation.
  common::Rng rng_a(1);
  core::StartModel scratch(ModelConfig(), &target.net, target.transfer.get(),
                           &rng_a);
  const double scratch_mape = EvalEta(&scratch, target);

  // Transfer: pre-train on the source with checkpointing; the artifact is
  // then consumed by fine-tuning on the target without retraining. The
  // pretrainer writes the checkpoint itself (it is also the resume point if
  // this run is interrupted — rerun with pretrain.resume = true).
  std::printf("pre-training on the source city...\n");
  common::Rng rng_b(2);
  core::StartModel pretrained(ModelConfig(), &source.net,
                              source.transfer.get(), &rng_b);
  const std::string checkpoint = "/tmp/start_transfer_example.sttn";
  core::PretrainConfig pretrain;
  pretrain.epochs = 10;
  pretrain.batch_size = 16;
  pretrain.lr = 2e-3;
  pretrain.checkpoint_path = checkpoint;
  core::Pretrain(&pretrained, source.dataset->train(), source.traffic.get(),
                 pretrain);
  // Fine-tuning warm-starts from the checkpoint (TaskConfig's
  // encoder_checkpoint), carrying the |V|-independent weights to the target.
  common::Rng rng_c(3);
  core::StartModel transferred(ModelConfig(), &target.net,
                               target.transfer.get(), &rng_c);
  const double transfer_mape = EvalEta(&transferred, target, checkpoint);

  std::printf("\nETA on the small target city:\n");
  std::printf("  random init + fine-tune : MAPE %.2f%%\n", scratch_mape);
  std::printf("  transferred + fine-tune : MAPE %.2f%%\n", transfer_mape);
  std::printf("\nthe transferred encoder carries travel semantics learned in "
              "the source city (Table III's conclusion).\n");
  return 0;
}
