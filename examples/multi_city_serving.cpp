// Multi-city serving demo — the graph plane end to end: two synthetic
// cities are lowered to CSR, contraction hierarchies are built and
// registered in a roadnet::GraphRegistry, and one serve::CityRouter process
// serves both — streaming GPS ingestion (map-match -> embed -> upsert) into
// per-city indexes, ANN queries, and CH-exact free-flow travel times —
// without the two cities' data ever mixing. Runs as a CI smoke test: any
// broken invariant exits non-zero.
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/checkpoint.h"
#include "core/start_model.h"
#include "data/dataset.h"
#include "roadnet/graph_registry.h"
#include "roadnet/shortest_path.h"
#include "roadnet/synthetic_city.h"
#include "serve/city_router.h"
#include "serve/embedding_index.h"
#include "serve/frozen_encoder.h"
#include "traj/map_matching.h"
#include "traj/trip_generator.h"

namespace {

using namespace start;

/// Everything one city needs to serve: network + corpus + frozen encoder +
/// index. The network is shared with the registry.
struct City {
  std::string name;
  std::shared_ptr<const roadnet::RoadNetwork> net;
  std::unique_ptr<traj::TrafficModel> traffic;
  std::vector<traj::Trajectory> corpus;
  std::unique_ptr<roadnet::TransferProbability> transfer;
  std::unique_ptr<serve::FrozenEncoder> encoder;
  std::unique_ptr<serve::EmbeddingIndex> index;
};

std::unique_ptr<City> MakeCity(const std::string& name,
                               const core::StartConfig& config, int64_t grid,
                               uint64_t seed) {
  auto city = std::make_unique<City>();
  city->name = name;
  roadnet::SyntheticCityConfig city_config;
  city_config.grid_width = grid;
  city_config.grid_height = grid;
  city_config.seed = seed;
  city->net = std::make_shared<const roadnet::RoadNetwork>(
      roadnet::BuildSyntheticCity(city_config));
  city->traffic = std::make_unique<traj::TrafficModel>(
      city->net.get(), traj::TrafficModel::Config{});
  traj::TripGenerator::Config trips;
  trips.num_drivers = 6;
  trips.num_days = 4;
  trips.trips_per_driver_day = 3.0;
  trips.seed = seed;
  traj::TripGenerator gen(city->traffic.get(), trips);
  data::DatasetConfig ds;
  ds.min_length = 5;
  ds.min_user_trajectories = 2;
  city->corpus =
      data::TrajDataset::FromCorpus(*city->net, gen.Generate(), ds).All();
  std::vector<std::vector<int64_t>> seqs;
  for (const auto& t : city->corpus) seqs.push_back(t.roads);
  city->transfer = std::make_unique<roadnet::TransferProbability>(
      roadnet::TransferProbability::FromTrajectories(*city->net, seqs));
  // An untrained checkpoint keeps the demo fast; swap in a pre-trained
  // artifact for meaningful embeddings (see examples/quickstart.cpp).
  common::Rng rng(seed);
  core::StartModel model(config, city->net.get(), city->transfer.get(), &rng);
  const std::string path = "/tmp/start_multi_city_" + name + ".sttn";
  auto save = core::SaveModelCheckpoint(path, model,
                                        core::HashStartConfig(config));
  if (!save.ok()) {
    std::fprintf(stderr, "checkpoint save failed: %s\n",
                 save.ToString().c_str());
    return nullptr;
  }
  auto loaded = serve::FrozenEncoder::Load(path, config, city->net.get(),
                                           city->transfer.get());
  std::remove(path.c_str());
  if (!loaded.ok()) {
    std::fprintf(stderr, "frozen load failed: %s\n",
                 loaded.status().ToString().c_str());
    return nullptr;
  }
  city->encoder = std::move(loaded).value();
  city->index = std::make_unique<serve::EmbeddingIndex>(config.d);
  return city;
}

std::vector<serve::StreamItem> MakeStream(const City& city, int64_t n,
                                          int64_t id_base) {
  common::Rng rng(99);
  std::vector<serve::StreamItem> items;
  for (size_t i = 0;
       i < city.corpus.size() && items.size() < static_cast<size_t>(n); ++i) {
    serve::StreamItem item;
    item.id = id_base + static_cast<int64_t>(i);
    item.gps = traj::SimulateGps(*city.net, city.corpus[i],
                                 /*sample_interval_s=*/30.0,
                                 /*noise_m=*/10.0, &rng);
    if (item.gps.points.size() >= 2) items.push_back(std::move(item));
  }
  return items;
}

}  // namespace

int main() {
  std::printf("=== multi-city serving example (graph plane) ===\n");
  const core::StartConfig config = [] {
    core::StartConfig c;
    c.d = 16;
    c.gat_layers = 2;
    c.gat_heads = {4, 1};
    c.encoder_layers = 2;
    c.encoder_heads = 2;
    c.max_len = 96;
    return c;
  }();

  common::Stopwatch watch;
  auto porto = MakeCity("porto", config, /*grid=*/6, /*seed=*/3);
  auto beijing = MakeCity("beijing", config, /*grid=*/5, /*seed=*/17);
  if (porto == nullptr || beijing == nullptr) return 1;
  std::printf("built 2 cities in %.1f ms (porto: %ld roads, beijing: %ld)\n",
              watch.ElapsedMillis(), porto->net->num_segments(),
              beijing->net->num_segments());

  // Graph plane: CSR lowering + CH build per city, behind one registry.
  watch.Restart();
  roadnet::GraphRegistry registry;
  for (const auto* city : {porto.get(), beijing.get()}) {
    const auto status = registry.Register(city->name, city->net);
    if (!status.ok()) {
      std::fprintf(stderr, "register failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    const auto entry = registry.Get(city->name);
    std::printf("  %s: %d nodes, %ld arcs, %ld CH shortcuts\n",
                city->name.c_str(), entry->graph->num_nodes(),
                entry->graph->num_arcs(), entry->ch->num_shortcuts());
  }
  std::printf("registry ready in %.1f ms\n", watch.ElapsedMillis());

  // Serving plane: one router, one lane per city.
  serve::CityRouter router(&registry);
  for (auto* city : {porto.get(), beijing.get()}) {
    serve::CityRouter::CityConfig lane;
    lane.encoder = city->encoder.get();
    lane.index = city->index.get();
    lane.stream.match_workers = 2;
    lane.stream.embed_workers = 2;
    const auto status = router.OpenCity(city->name, lane);
    if (!status.ok()) {
      std::fprintf(stderr, "open failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  // Stream each city's GPS into its own lane concurrently.
  watch.Restart();
  const auto porto_stream = MakeStream(*porto, 12, /*id_base=*/0);
  const auto beijing_stream = MakeStream(*beijing, 12, /*id_base=*/100000);
  for (const auto& item : porto_stream) (void)router.Push("porto", item);
  for (const auto& item : beijing_stream) (void)router.Push("beijing", item);
  (void)router.Flush("porto");
  (void)router.Flush("beijing");
  for (const auto* city : {porto.get(), beijing.get()}) {
    const auto stats = router.Stats(city->name);
    if (!stats.ok() || stats.value().ingested() == 0) {
      std::fprintf(stderr, "%s ingested nothing\n", city->name.c_str());
      return 1;
    }
    std::printf("  %s: ingested %ld trajectories, index size %ld\n",
                city->name.c_str(), stats.value().ingested(),
                city->index->size());
  }
  std::printf("streamed both cities in %.1f ms\n", watch.ElapsedMillis());

  // Isolation: no porto id may appear in beijing's index (disjoint ranges).
  for (const auto& item : porto_stream) {
    if (beijing->index->Contains(item.id)) {
      std::fprintf(stderr, "city isolation violated: id %ld leaked\n",
                   item.id);
      return 1;
    }
  }

  // CH travel times agree with a direct Dijkstra over the same metric.
  for (const auto* city : {porto.get(), beijing.get()}) {
    const auto& net = *city->net;
    auto weight = [&](int64_t v) { return net.FreeFlowTravelTime(v); };
    const int64_t n = net.num_segments();
    for (const int64_t dst : {n - 1, n / 2}) {
      const auto got = router.TravelTimeSeconds(city->name, 0, dst);
      const auto want = roadnet::ShortestPath(net, 0, dst, weight);
      if (got.ok() != want.has_value()) {
        std::fprintf(stderr, "%s reachability mismatch 0->%ld\n",
                     city->name.c_str(), dst);
        return 1;
      }
      if (!want.has_value()) continue;
      const double tol =
          1e-3 * static_cast<double>(want->path.size()) + 1e-9;
      if (std::abs(got.value() - want->cost) > tol) {
        std::fprintf(stderr, "%s travel time mismatch 0->%ld: %f vs %f\n",
                     city->name.c_str(), dst, got.value(), want->cost);
        return 1;
      }
      std::printf("  %s travel time 0 -> %ld: %.2f s (CH == Dijkstra)\n",
                  city->name.c_str(), dst, got.value());
    }
  }

  std::printf("OK: one process served %zu cities\n", router.Cities().size());
  return 0;
}
