// Trajectory similarity search demo — the paper's third downstream task
// (Sec. III-D3 / IV-D4), served through the serving plane: pre-train once,
// checkpoint, load the artifact into a serve::FrozenEncoder, embed queries
// and database concurrently through a micro-batched serve::EmbeddingService,
// index the database behind the serve::IndexInterface, and answer
// most-similar queries there — compared with classical DTW.
//
// --index=exact|hnsw|both (default both) picks the retrieval backend: the
// exact brute-force EmbeddingIndex, the approximate HnswIndex, or both —
// in which case the demo also reports recall@10 of hnsw against exact.
//
// --precision=f32|int8 (default f32) picks the frozen engine's numeric
// regime: int8 quantizes the stage-2 projection Linears to per-row-scaled
// int8 (tensor::qgemm) at load, trading <= 0.001 cosine error for ~2x
// embedding throughput at serving widths.
#include <cstdio>
#include <cstring>
#include <future>
#include <vector>

#include "common/stopwatch.h"
#include "core/checkpoint.h"
#include "core/pretrain.h"
#include "data/dataset.h"
#include "data/detour.h"
#include "roadnet/synthetic_city.h"
#include "serve/embedding_index.h"
#include "serve/embedding_service.h"
#include "serve/frozen_encoder.h"
#include "serve/hnsw_index.h"
#include "serve/index_interface.h"
#include "sim/search.h"
#include "sim/similarity.h"
#include "traj/trip_generator.h"

int main(int argc, char** argv) {
  using namespace start;
  bool use_exact = true, use_hnsw = true;
  serve::FrozenEncoderOptions engine_options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--index=exact") == 0) {
      use_hnsw = false;
    } else if (std::strcmp(argv[i], "--index=hnsw") == 0) {
      use_exact = false;
    } else if (std::strcmp(argv[i], "--precision=int8") == 0) {
      engine_options.precision = serve::Precision::kInt8;
    } else if (std::strcmp(argv[i], "--index=both") != 0 &&
               std::strcmp(argv[i], "--precision=f32") != 0) {
      std::fprintf(stderr,
                   "usage: %s [--index=exact|hnsw|both] [--precision=f32|int8]\n",
                   argv[0]);
      return 1;
    }
  }
  std::printf("=== similarity search example (serving plane, index=%s, "
              "precision=%s) ===\n",
              use_exact && use_hnsw ? "both" : (use_hnsw ? "hnsw" : "exact"),
              engine_options.precision == serve::Precision::kInt8 ? "int8"
                                                                  : "f32");
  const roadnet::RoadNetwork net = roadnet::BuildSyntheticCity(
      {.grid_width = 8, .grid_height = 8, .seed = 25});
  traj::TrafficModel traffic(&net, {});
  traj::TripGenerator::Config trip_config;
  trip_config.num_drivers = 12;
  trip_config.num_days = 10;
  trip_config.seed = 26;
  traj::TripGenerator generator(&traffic, trip_config);
  const auto dataset = data::TrajDataset::FromCorpus(
      net, generator.Generate(), {.min_length = 6});
  const auto transfer = roadnet::TransferProbability::FromTrajectories(
      net, dataset.TrainRoadSequences());

  core::StartConfig config;
  config.d = 32;
  config.gat_heads = {4, 4, 1};
  config.encoder_layers = 2;
  config.encoder_heads = 4;
  config.max_len = 96;
  common::Rng rng(27);
  core::StartModel model(config, &net, &transfer, &rng);
  std::printf("pre-training (representations are used frozen)...\n");
  core::PretrainConfig pretrain;
  pretrain.epochs = 8;
  pretrain.batch_size = 16;
  pretrain.lr = 2e-3;
  pretrain.checkpoint_path = "/tmp/start_similarity_model.sttn";
  core::Pretrain(&model, dataset.train(), &traffic, pretrain);

  // The serving engine: the checkpoint artifact loaded as an immutable
  // snapshot — no grad buffers, dropout off, road table precomputed.
  auto loaded = serve::FrozenEncoder::Load(pretrain.checkpoint_path, config,
                                           &net, &transfer, engine_options);
  if (!loaded.ok()) {
    std::fprintf(stderr, "frozen-engine load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  const auto engine = std::move(loaded).value();
  if (engine->precision() == serve::Precision::kInt8) {
    std::printf("engine quantized: %ld stage-2 Linears on the int8 path\n",
                engine->quantized_layer_count());
  }

  // Detour ground truth (Sec. IV-D4a): replace a sub-trajectory with a
  // top-k alternative whose travel time differs by more than t_d.
  std::printf("building detour queries...\n");
  common::Rng detour_rng(28);
  data::DetourGenerator detours(&traffic, {});
  std::vector<traj::Trajectory> queries, database;
  std::vector<int64_t> gt;
  for (const auto& t : dataset.test()) {
    if (queries.size() >= 25) break;
    const auto detour = detours.Generate(t, &detour_rng);
    if (!detour.has_value()) continue;
    gt.push_back(static_cast<int64_t>(database.size()));
    database.push_back(*detour);
    queries.push_back(t);
  }
  for (const auto& t : dataset.test()) {
    if (database.size() >= 150) break;
    database.push_back(t);
  }
  std::printf("%zu queries against %zu database trajectories\n",
              queries.size(), database.size());

  // Embed everything through the concurrent service (micro-batched, two
  // workers) and build the retrieval index from the database rows.
  common::Stopwatch watch;
  serve::ServiceConfig service_config;
  service_config.num_workers = 2;
  service_config.batch_deadline_us = 500;
  serve::EmbeddingService service(engine.get(), service_config);
  const auto embed_all = [&](const std::vector<traj::Trajectory>& trajs) {
    std::vector<std::future<serve::EmbeddingRow>> futures;
    futures.reserve(trajs.size());
    for (const auto& t : trajs) {
      auto result = service.Encode(t);
      if (!result.ok()) {
        std::fprintf(stderr, "encode rejected: %s\n",
                     result.status().ToString().c_str());
        std::exit(1);
      }
      futures.push_back(std::move(result).value());
    }
    std::vector<float> rows;
    rows.reserve(trajs.size() * static_cast<size_t>(engine->dim()));
    for (auto& f : futures) {
      const serve::EmbeddingRow row = f.get();
      rows.insert(rows.end(), row.data(), row.data() + row.dim());
    }
    return rows;
  };
  const std::vector<float> q = embed_all(queries);
  const std::vector<float> db = embed_all(database);

  // Both backends sit behind serve::IndexInterface, so everything below the
  // build is backend-agnostic. With both built, hnsw serves the protocol and
  // exact is its recall oracle.
  serve::EmbeddingIndex exact_index(engine->dim());
  serve::HnswIndex hnsw_index(engine->dim());
  serve::IndexInterface& index =
      use_hnsw ? static_cast<serve::IndexInterface&>(hnsw_index)
               : static_cast<serve::IndexInterface&>(exact_index);
  std::vector<int64_t> db_ids(database.size());
  for (size_t i = 0; i < database.size(); ++i) {
    db_ids[i] = static_cast<int64_t>(i);
  }
  for (serve::IndexInterface* backend :
       std::initializer_list<serve::IndexInterface*>{&exact_index,
                                                     &hnsw_index}) {
    if (backend == &exact_index && !use_exact) continue;
    if (backend == &hnsw_index && !use_hnsw) continue;
    if (const auto st = backend->AddBatch(db_ids, db); !st.ok()) {
      std::fprintf(stderr, "index build failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  const auto emb_metrics = index.EvaluateMostSimilar(
      q, static_cast<int64_t>(queries.size()), gt);
  if (!emb_metrics.ok()) {
    std::fprintf(stderr, "retrieval failed: %s\n",
                 emb_metrics.status().ToString().c_str());
    return 1;
  }
  const double emb_time = watch.ElapsedMillis();
  const auto stats = service.stats();

  // Classical DTW for comparison.
  watch.Restart();
  std::vector<sim::PointSeq> q_pts, db_pts;
  for (const auto& t : queries) q_pts.push_back(sim::ToPointSequence(net, t));
  for (const auto& t : database) db_pts.push_back(sim::ToPointSequence(net, t));
  const auto dtw_metrics = sim::MostSimilarSearch(
      static_cast<int64_t>(queries.size()),
      static_cast<int64_t>(database.size()),
      [&](int64_t a, int64_t b) {
        return sim::DtwDistance(q_pts[static_cast<size_t>(a)],
                                db_pts[static_cast<size_t>(b)]);
      },
      gt);
  const double dtw_time = watch.ElapsedMillis();

  std::printf("\nSTART serving plane: MR %.2f, HR@1 %.3f, HR@5 %.3f (%.1f ms "
              "incl. embedding; %.1f requests/batch coalesced)\n",
              emb_metrics->mean_rank, emb_metrics->hr_at_1,
              emb_metrics->hr_at_5, emb_time, stats.coalescing());
  std::printf("DTW:                 MR %.2f, HR@1 %.3f, HR@5 %.3f (%.1f ms)\n",
              dtw_metrics.mean_rank, dtw_metrics.hr_at_1,
              dtw_metrics.hr_at_5, dtw_time);
  // With both backends built: recall@10 of the approximate index against
  // the exact oracle, averaged over every query.
  if (use_exact && use_hnsw) {
    const int64_t k = 10;
    double recall = 0.0;
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const auto truth =
          exact_index.Query(q.data() + qi * static_cast<size_t>(engine->dim()),
                            engine->dim(), k);
      const auto got =
          hnsw_index.Query(q.data() + qi * static_cast<size_t>(engine->dim()),
                           engine->dim(), k);
      if (!truth.ok() || !got.ok()) continue;
      int64_t overlap = 0;
      for (const auto& t : *truth) {
        for (const auto& g : *got) {
          if (g.id == t.id) {
            ++overlap;
            break;
          }
        }
      }
      recall += static_cast<double>(overlap) /
                static_cast<double>(truth->size());
    }
    std::printf("\nhnsw recall@10 vs exact: %.4f over %zu queries\n",
                recall / static_cast<double>(queries.size()), queries.size());
  }
  // Top-K through the index: the nearest database entries for query 0.
  const auto top = index.Query(q.data(), engine->dim(), 3);
  if (top.ok() && !top->empty()) {
    std::printf("\nquery 0 top-3 from the index:");
    for (const auto& n : *top) {
      std::printf("  id %ld (cos %.3f)", n.id, n.score);
    }
    std::printf("   [ground truth: id %ld]\n", gt[0]);
  }
  std::printf("\nembedding search answers from a %ld-dim vector (O(d) per "
              "pair) while DTW costs O(L^2) per pair — the Fig. 10 "
              "trade-off.\n",
              config.d);
  return 0;
}
