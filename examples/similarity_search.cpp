// Trajectory similarity search demo — the paper's third downstream task
// (Sec. III-D3 / IV-D4): most-similar search against detour-generated ground
// truth using frozen pre-trained embeddings, compared with the classical
// DTW / LCSS / Fréchet / EDR measures.
#include <cstdio>

#include "common/stopwatch.h"
#include "core/pretrain.h"
#include "core/start_encoder.h"
#include "data/dataset.h"
#include "data/detour.h"
#include "roadnet/synthetic_city.h"
#include "sim/search.h"
#include "sim/similarity.h"
#include "traj/trip_generator.h"

int main() {
  using namespace start;
  std::printf("=== similarity search example ===\n");
  const roadnet::RoadNetwork net = roadnet::BuildSyntheticCity(
      {.grid_width = 8, .grid_height = 8, .seed = 25});
  traj::TrafficModel traffic(&net, {});
  traj::TripGenerator::Config trip_config;
  trip_config.num_drivers = 12;
  trip_config.num_days = 10;
  trip_config.seed = 26;
  traj::TripGenerator generator(&traffic, trip_config);
  const auto dataset = data::TrajDataset::FromCorpus(
      net, generator.Generate(), {.min_length = 6});
  const auto transfer = roadnet::TransferProbability::FromTrajectories(
      net, dataset.TrainRoadSequences());

  core::StartConfig config;
  config.d = 32;
  config.gat_heads = {4, 4, 1};
  config.encoder_layers = 2;
  config.encoder_heads = 4;
  config.max_len = 96;
  common::Rng rng(27);
  core::StartModel model(config, &net, &transfer, &rng);
  std::printf("pre-training (representations are used frozen)...\n");
  core::PretrainConfig pretrain;
  pretrain.epochs = 10;
  pretrain.batch_size = 16;
  pretrain.lr = 2e-3;
  core::Pretrain(&model, dataset.train(), &traffic, pretrain);
  core::StartEncoder encoder(&model);

  // Detour ground truth (Sec. IV-D4a): replace a sub-trajectory with a
  // top-k alternative whose travel time differs by more than t_d.
  std::printf("building detour queries...\n");
  common::Rng detour_rng(28);
  std::vector<traj::Trajectory> queries, database;
  std::vector<int64_t> gt;
  for (const auto& t : dataset.test()) {
    if (queries.size() >= 25) break;
    const auto detour = data::MakeDetour(traffic, t, {}, &detour_rng);
    if (!detour.has_value()) continue;
    gt.push_back(static_cast<int64_t>(database.size()));
    database.push_back(*detour);
    queries.push_back(t);
  }
  for (const auto& t : dataset.test()) {
    if (database.size() >= 150) break;
    database.push_back(t);
  }
  std::printf("%zu queries against %zu database trajectories\n",
              queries.size(), database.size());

  // Embedding-based search.
  common::Stopwatch watch;
  const auto q = encoder.EmbedAll(queries, eval::EncodeMode::kFull);
  const auto db = encoder.EmbedAll(database, eval::EncodeMode::kFull);
  const auto emb_metrics = sim::MostSimilarSearchEmbeddings(
      q, static_cast<int64_t>(queries.size()), db,
      static_cast<int64_t>(database.size()), config.d, gt);
  const double emb_time = watch.ElapsedMillis();

  // Classical DTW for comparison.
  watch.Restart();
  std::vector<sim::PointSeq> q_pts, db_pts;
  for (const auto& t : queries) q_pts.push_back(sim::ToPointSequence(net, t));
  for (const auto& t : database) db_pts.push_back(sim::ToPointSequence(net, t));
  const auto dtw_metrics = sim::MostSimilarSearch(
      static_cast<int64_t>(queries.size()),
      static_cast<int64_t>(database.size()),
      [&](int64_t a, int64_t b) {
        return sim::DtwDistance(q_pts[static_cast<size_t>(a)],
                                db_pts[static_cast<size_t>(b)]);
      },
      gt);
  const double dtw_time = watch.ElapsedMillis();

  std::printf("\nSTART embeddings: MR %.2f, HR@1 %.3f, HR@5 %.3f (%.1f ms "
              "incl. embedding)\n",
              emb_metrics.mean_rank, emb_metrics.hr_at_1,
              emb_metrics.hr_at_5, emb_time);
  std::printf("DTW:              MR %.2f, HR@1 %.3f, HR@5 %.3f (%.1f ms)\n",
              dtw_metrics.mean_rank, dtw_metrics.hr_at_1,
              dtw_metrics.hr_at_5, dtw_time);
  std::printf("\nembedding search answers from a %ld-dim vector (O(d) per "
              "pair) while DTW costs O(L^2) per pair — the Fig. 10 "
              "trade-off.\n",
              config.d);
  return 0;
}
