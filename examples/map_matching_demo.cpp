// Map-matching demo: the GPS -> road-constrained preprocessing step of
// Sec. II (Definition 2 -> Definition 3). Simulates noisy GPS sampling of a
// known route and recovers the route with the HMM map matcher (the FMM [21]
// substitute in this repository).
#include <algorithm>
#include <cstdio>

#include "roadnet/synthetic_city.h"
#include "traj/map_matching.h"
#include "traj/traffic_model.h"
#include "traj/trip_generator.h"

int main() {
  using namespace start;
  std::printf("=== map matching example ===\n");
  const roadnet::RoadNetwork net = roadnet::BuildSyntheticCity(
      {.grid_width = 7, .grid_height = 7, .seed = 35});
  traj::TrafficModel traffic(&net, {});
  traj::TripGenerator::Config trip_config;
  trip_config.num_drivers = 1;
  trip_config.seed = 36;
  traj::TripGenerator generator(&traffic, trip_config);

  const traj::Trajectory truth =
      generator.GenerateTrip(0, 2, net.num_segments() - 4, 9 * 3600);
  std::printf("true route: %ld road segments, %.1f min travel time\n",
              truth.size(), truth.TravelTimeSeconds() / 60.0);

  for (const double noise : {2.0, 8.0, 20.0}) {
    common::Rng rng(37);
    // Porto-style sampling: one fix every 15 seconds.
    const traj::GpsTrajectory gps =
        traj::SimulateGps(net, truth, /*sample_interval_s=*/15.0, noise,
                          &rng);
    traj::HmmMapMatcher matcher(&net, {});
    const auto matched = matcher.Match(gps);
    int64_t on_route = 0;
    for (const int64_t r : matched) {
      if (std::find(truth.roads.begin(), truth.roads.end(), r) !=
          truth.roads.end()) {
        ++on_route;
      }
    }
    std::printf("noise sigma %5.1f m: %3zu GPS fixes -> %2zu matched "
                "segments, %.0f%% on the true route\n",
                noise, gps.points.size(), matched.size(),
                matched.empty()
                    ? 0.0
                    : 100.0 * static_cast<double>(on_route) /
                          static_cast<double>(matched.size()));
  }
  std::printf("\nthe matched road sequences are exactly the model input "
              "format used everywhere else in this library.\n");
  return 0;
}
