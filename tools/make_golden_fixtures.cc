// Generates the committed golden checkpoint fixtures under tests/fixtures/:
//
//   golden_v1.sttn — a hand-assembled version-1 container (tensors only, no
//                    meta tag, no CRCs), byte-for-byte the legacy layout.
//   golden_v2.sttn — a version-2 container with every record kind (f32
//                    tensor, f64/i64/u64 arrays), written by SaveBundle.
//   golden_q8.sttn — a version-2 container with the quantized record kinds
//                    (int8 tensor with per-row scales, f16 tensor), pinning
//                    the serving-snapshot payload layout.
//   hnsw_golden.sttn — a small HnswIndex::Save artifact (graph records:
//                    rows, ids, levels, tombstones, fixed-stride link
//                    lists, entry point, level-RNG cursor), pinning the ANN
//                    persistence format read by tests/hnsw_persist_test.cc.
//
// These files are committed to the repository and loaded bitwise by
// tests/golden_checkpoint_test.cc. They pin the on-disk format: a future
// change to the serializer that silently alters how OLD artifacts are read
// (record framing, CRC coverage, payload layout) fails the back-compat test
// even if its own writer/reader pair stays self-consistent. Regenerate ONLY
// on a deliberate, documented format break:
//
//   cmake --build build --target make_golden_fixtures
//   ./build/make_golden_fixtures tests/fixtures
//
// The expected *values* are duplicated in golden_checkpoint_test.cc via the
// same Golden*() formulas — keep the two in sync.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "serve/hnsw_index.h"
#include "tensor/serialize.h"
#include "tensor/tensor.h"

namespace {

using start::tensor::RecordBundle;
using start::tensor::SaveBundle;
using start::tensor::Shape;
using start::tensor::Tensor;

// Deterministic, exactly-representable payloads (quarters stay exact in
// binary float, so the formulas below reproduce the committed bits).
std::vector<float> GoldenAlpha() {
  std::vector<float> v(12);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<float>(i) * 0.25f - 1.5f;
  }
  return v;
}

std::vector<float> GoldenLegacyTable() {
  std::vector<float> v(12);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = 2.0f - static_cast<float>(i) * 0.5f;
  }
  return v;
}

// Deterministic int8 code pattern covering the full [-127, 127] range, and
// exactly-representable scales (multiples of 2^-7).
std::vector<int8_t> GoldenQ8Codes() {
  std::vector<int8_t> v(3 * 5);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<int8_t>(static_cast<int>(i * 37 % 255) - 127);
  }
  return v;
}

std::vector<float> GoldenQ8Scales() {
  return {0.0078125f, 0.015625f, 0.0234375f};  // (r+1) / 128
}

// Quarters survive the f32 -> f16 -> f32 round trip bitwise.
std::vector<float> GoldenHalfTable() {
  std::vector<float> v(8);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<float>(i) * 0.25f - 2.0f;
  }
  return v;
}

constexpr uint64_t kGoldenMetaTag = 0x60a1d2c3b4a59687ULL;
constexpr uint64_t kGoldenQ8MetaTag = 0x51e8f00dc0ffee42ULL;

bool WriteV1(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const uint32_t version = 1;
  const uint64_t count = 1;
  const char name[] = "legacy.table";
  const uint32_t name_len = sizeof(name) - 1;
  const uint32_t ndim = 2;
  const int64_t dims[2] = {4, 3};
  const auto data = GoldenLegacyTable();
  bool ok = std::fwrite("STTN", 1, 4, f) == 4 &&
            std::fwrite(&version, sizeof(version), 1, f) == 1 &&
            std::fwrite(&count, sizeof(count), 1, f) == 1 &&
            std::fwrite(&name_len, sizeof(name_len), 1, f) == 1 &&
            std::fwrite(name, 1, name_len, f) == name_len &&
            std::fwrite(&ndim, sizeof(ndim), 1, f) == 1 &&
            std::fwrite(dims, sizeof(int64_t), 2, f) == 2 &&
            std::fwrite(data.data(), sizeof(float), data.size(), f) ==
                data.size();
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

bool WriteV2(const std::string& path) {
  RecordBundle bundle;
  bundle.tensors.emplace("weights.alpha",
                         Tensor::FromVector(Shape({3, 4}), GoldenAlpha()));
  bundle.tensors.emplace(
      "weights.beta",
      Tensor::FromVector(Shape({2, 2, 2}),
                         {8.0f, -4.0f, 2.0f, -1.0f, 0.5f, -0.25f, 0.125f,
                          -0.0625f}));
  bundle.doubles["trainer.loss_sum"] = {0.5, -1.25, 3.75};
  bundle.ints["trainer.cursor"] = {-3, 0, 1LL << 40};
  bundle.uints["trainer.rng_state"] = {0x0123456789abcdefULL, ~0ULL};
  return SaveBundle(path, kGoldenMetaTag, bundle).ok();
}

bool WriteQ8(const std::string& path) {
  RecordBundle bundle;
  start::tensor::QuantizedTensor q;
  q.rows = 3;
  q.cols = 5;
  q.scales = GoldenQ8Scales();
  q.data = GoldenQ8Codes();
  bundle.qtensors.emplace("encoder0.attn.wq", std::move(q));
  bundle.halfs.emplace("ext_table",
                       Tensor::FromVector(Shape({2, 4}), GoldenHalfTable()));
  bundle.uints["snapshot.format"] = {1};
  return SaveBundle(path, kGoldenQ8MetaTag, bundle).ok();
}

// The golden HNSW recipe — duplicated as BuildGoldenHnsw() in
// tests/hnsw_persist_test.cc; keep the two in sync. Rows come from
// Rng::Uniform (pure arithmetic, bit-exact everywhere).
bool WriteHnsw(const std::string& path) {
  start::serve::HnswConfig config;
  config.M = 4;
  config.ef_construction = 16;
  config.ef_search = 8;
  config.seed = 0xA11CE;
  start::serve::HnswIndex index(6, config);
  start::common::Rng rng(99);
  for (int64_t id = 0; id < 24; ++id) {
    std::vector<float> row(6);
    for (auto& v : row) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
    if (!index.Add(id, row.data(), 6).ok()) return false;
  }
  for (int64_t id = 2; id < 24; id += 5) {
    if (!index.Remove(id).ok()) return false;
  }
  return index.Save(path).ok();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "tests/fixtures";
  const std::string v1 = dir + "/golden_v1.sttn";
  const std::string v2 = dir + "/golden_v2.sttn";
  const std::string q8 = dir + "/golden_q8.sttn";
  if (!WriteV1(v1)) {
    std::fprintf(stderr, "failed to write %s\n", v1.c_str());
    return 1;
  }
  if (!WriteV2(v2)) {
    std::fprintf(stderr, "failed to write %s\n", v2.c_str());
    return 1;
  }
  if (!WriteQ8(q8)) {
    std::fprintf(stderr, "failed to write %s\n", q8.c_str());
    return 1;
  }
  const std::string hnsw = dir + "/hnsw_golden.sttn";
  if (!WriteHnsw(hnsw)) {
    std::fprintf(stderr, "failed to write %s\n", hnsw.c_str());
    return 1;
  }
  std::printf("wrote %s, %s, %s and %s\n", v1.c_str(), v2.c_str(),
              q8.c_str(), hnsw.c_str());
  return 0;
}
