#!/usr/bin/env python3
"""Fails CI when a BENCH_*.json headline metric regresses >10% vs baseline.

Usage:
    python3 tools/check_bench_regression.py \
        --baseline bench/baselines --current build [--tolerance 0.10]

The committed baselines under bench/baselines/ are the BENCH_*.json files a
known-good build produced (refresh them by copying a trusted run's output:
`cp build/BENCH_*.json bench/baselines/`). Only *headline* metrics are
gated — dimensionless ratios and efficiencies that are stable across host
hardware. Raw millisecond timings and absolute steps/sec are deliberately
not compared: they measure the runner, not the code. The baselines were
recorded on a small host, so beefier CI runners clear them with margin;
regressions of the code itself (a kernel losing its fast path, bucketing
breaking) show up in the ratios on any machine.
"""

import argparse
import json
import os
import sys

# file -> list of (human name, extractor). Metrics are higher-is-better
# unless their key is listed in LOWER_IS_BETTER below.
HEADLINE_METRICS = {
    "BENCH_tensor.json": [
        # Fused-kernel speedup over the seed scalar loop, per benchmark.
        # Entries without a scalar reference (speedup == 0) are skipped.
        (
            "tensor kernel speedups",
            lambda doc: {
                f"benchmarks[{b['name']}].speedup": b["speedup"]
                for b in doc["benchmarks"]
                if b.get("speedup", 0) > 0
            },
        ),
    ],
    "BENCH_pipeline.json": [
        (
            "pipeline end-to-end speedup",
            lambda doc: {
                "speedup_4workers_vs_seed": doc["speedup_4workers_vs_seed"]
            },
        ),
        (
            "length-bucketing padding efficiency",
            lambda doc: {
                "padding_efficiency.bucketed":
                    doc["padding_efficiency"]["bucketed"]
            },
        ),
        # CH-backed detour generation vs the seed's per-call Yen search —
        # a same-host ratio of two algorithms over the identical corpus.
        (
            "detour CH-vs-Yen speedup",
            lambda doc: {"detour.ch_speedup": doc["detour"]["ch_speedup"]},
        ),
    ],
    "BENCH_graph.json": [
        # Contraction-hierarchy point-to-point speedup over CSR Dijkstra on
        # the same pairs, and the exactness share (must stay 1.0 — the CH
        # answers are integer-identical to Dijkstra by construction).
        (
            "contraction-hierarchy query speedup",
            lambda doc: {"ch_speedup": doc["ch_speedup"]},
        ),
        (
            "contraction-hierarchy exactness",
            lambda doc: {"ch_exactness": doc["ch_exactness"]},
        ),
    ],
    "BENCH_pretrain.json": [
        # The sharded engine's determinism contract: K in {2,3,5} bitwise
        # identical to K=1. Binary (1.0/0.0) and host-independent; any
        # regression below 1.0 is a broken reduction order.
        (
            "sharded-engine bitwise gate",
            lambda doc: {"bitwise_identical": doc["bitwise_identical"]},
        ),
        # Engine bookkeeping cost at K=1 relative to the legacy loop —
        # a same-host ratio, so stable across runners.
        (
            "sharded-engine K=1 overhead",
            lambda doc: {
                "overhead_1shard_vs_legacy":
                    doc["overhead_1shard_vs_legacy"]
            },
        ),
    ],
    "BENCH_serve.json": [
        # Frozen-engine corpus embedding vs the seed grad-tracking consumer
        # path: algorithmic (no autograd capture, precomputed road table,
        # bucketed batches), so stable across hosts.
        (
            "frozen-engine speedup",
            lambda doc: {
                "frozen_speedup_vs_seed": doc["frozen_speedup_vs_seed"]
            },
        ),
        # Padding efficiency of service-coalesced batches (length bucketing
        # inside the micro-batcher) — dimensionless and host-independent.
        (
            "service padding efficiency",
            lambda doc: {
                "service_padding_efficiency":
                    doc["service_padding_efficiency"]
            },
        ),
        # HNSW query throughput over the exact scan, and its recall@10
        # against the exact oracle. Both are same-host ratios (the speedup
        # is algorithmic — graph search visits O(ef*M) of the corpus — and
        # recall is dimensionless), so stable across runners.
        (
            "ann hnsw speedup",
            lambda doc: {"ann_hnsw_speedup": doc["ann_hnsw_speedup"]},
        ),
        (
            "ann hnsw recall@10",
            lambda doc: {"ann_recall_at_10": doc["ann_recall_at_10"]},
        ),
        # int8 serving vs the f32 frozen engine at serving width: a
        # same-host ratio (both sides run the same batches on the same
        # machine), so stable across runners with the same SIMD backend.
        (
            "quantized embed speedup",
            lambda doc: {
                "quantized_embed_speedup": doc["quantized_embed_speedup"]
            },
        ),
        # Quantization error, encoded higher-is-better as the mean cosine
        # between int8 and f32 embeddings (1.0 = exact). Dimensionless and
        # host-independent.
        (
            "quantized embed error",
            lambda doc: {
                "quantized_embed_mean_cos": doc["quantized_embed_mean_cos"]
            },
        ),
        # Tombstone compaction must restore build-fresh recall: the
        # compacted copy of a 50%-dead index vs the exact oracle over the
        # survivors. Dimensionless, host-independent.
        (
            "ann compacted recall@10",
            lambda doc: {
                "ann_compaction.compacted_recall":
                    doc["ann_compaction"]["compacted_recall"]
            },
        ),
    ],
    "BENCH_stream.json": [
        # Streaming-pipeline ingest throughput (full match -> embed ->
        # upsert path). Absolute trajs/sec, but the committed baseline was
        # recorded on a 1-core host, so CI runners clear it with margin;
        # a regression here is the pipeline losing a stage overlap or a
        # queue serializing, which shows on any machine.
        (
            "stream ingest rate",
            lambda doc: {"stream_ingest_rate": doc["stream_ingest_rate"]},
        ),
        # Query p95 while ingest runs concurrently — the "queries are not
        # starved by writers" contract. Lower is better.
        (
            "mixed-load query p95",
            lambda doc: {
                "mixed_query_latency_ms.p95":
                    doc["mixed_query_latency_ms"]["p95"]
            },
        ),
        # Recall@10 of the streamed HNSW index against the exact oracle
        # built from the same upserts. Dimensionless, host-independent.
        (
            "streamed-index recall@10",
            lambda doc: {
                "recall_at_10_vs_exact": doc["recall_at_10_vs_exact"]
            },
        ),
        # The pipeline accounting identity (accepted == ingested + failed
        # + dropped after drain). Binary and host-independent; anything
        # below 1.0 is a lost or double-counted item.
        (
            "pipeline accounting identity",
            lambda doc: {
                "accounting_ok": 1.0 if doc["accounting_ok"] else 0.0
            },
        ),
        # Recall@10 of the post-swap serving index after a full adaptation
        # round (warm-start retrain + rebuild + hot-swap + catch-up),
        # against an exact oracle of the new engine's embeddings.
        # Dimensionless, host-independent.
        (
            "post-swap recall@10",
            lambda doc: {
                "post_swap_recall_at_10": doc["post_swap_recall_at_10"]
            },
        ),
    ],
}

# Keys where smaller is better: the check inverts to a ceiling of
# base * (1 + tolerance).
LOWER_IS_BETTER = {
    "mixed_query_latency_ms.p95",
}


def load(path):
    with open(path) as f:
        return json.load(f)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="directory with committed BENCH_*.json")
    parser.add_argument("--current", required=True,
                        help="directory with freshly produced BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional regression (default 0.10)")
    args = parser.parse_args()

    failures = []
    checked = 0
    for filename, extractors in HEADLINE_METRICS.items():
        baseline_path = os.path.join(args.baseline, filename)
        current_path = os.path.join(args.current, filename)
        if not os.path.exists(baseline_path):
            print(f"note: no committed baseline for {filename}; skipping")
            continue
        if not os.path.exists(current_path):
            failures.append(f"{filename}: missing from {args.current} "
                            "(bench did not run?)")
            continue
        baseline_doc = load(baseline_path)
        current_doc = load(current_path)
        for group, extract in extractors:
            baseline_metrics = extract(baseline_doc)
            current_metrics = extract(current_doc)
            for key, base_value in baseline_metrics.items():
                if key not in current_metrics:
                    failures.append(f"{filename}: headline metric '{key}' "
                                    "disappeared")
                    continue
                current_value = current_metrics[key]
                if key in LOWER_IS_BETTER:
                    bound = base_value * (1.0 + args.tolerance)
                    ok = current_value <= bound
                    bound_name = "ceiling"
                else:
                    bound = base_value * (1.0 - args.tolerance)
                    ok = current_value >= bound
                    bound_name = "floor"
                status = "ok" if ok else "REGRESSED"
                print(f"[{status:>9}] {group}: {key} = {current_value:.3f} "
                      f"(baseline {base_value:.3f}, {bound_name} "
                      f"{bound:.3f})")
                checked += 1
                if not ok:
                    failures.append(
                        f"{filename}: {key} regressed to {current_value:.3f} "
                        f"(baseline {base_value:.3f}, allowed {bound_name} "
                        f"{bound:.3f})")

    if failures:
        print("\nFAIL: headline benchmark regression(s) detected:",
              file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nall {checked} headline metrics within "
          f"{args.tolerance:.0%} of the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
