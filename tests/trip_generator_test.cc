#include "traj/trip_generator.h"

#include <gtest/gtest.h>
#include <set>

#include "roadnet/synthetic_city.h"
#include "traj/stats.h"

namespace start::traj {
namespace {

class TripGeneratorTest : public ::testing::Test {
 protected:
  TripGeneratorTest()
      : net_(roadnet::BuildSyntheticCity(
            {.grid_width = 7, .grid_height = 7})),
        traffic_(&net_, {}) {}

  TripGenerator::Config SmallConfig() const {
    TripGenerator::Config config;
    config.num_drivers = 6;
    config.num_days = 7;
    config.trips_per_driver_day = 3.0;
    return config;
  }

  roadnet::RoadNetwork net_;
  TrafficModel traffic_;
};

TEST_F(TripGeneratorTest, TrajectoriesAreNetworkAdjacent) {
  TripGenerator gen(&traffic_, SmallConfig());
  const auto corpus = gen.Generate();
  ASSERT_GT(corpus.size(), 50u);
  for (const auto& t : corpus) {
    for (int64_t i = 0; i + 1 < t.size(); ++i) {
      EXPECT_TRUE(net_.HasEdge(t.roads[static_cast<size_t>(i)],
                               t.roads[static_cast<size_t>(i + 1)]))
          << "broken adjacency";
    }
  }
}

TEST_F(TripGeneratorTest, TimestampsStrictlyIncrease) {
  TripGenerator gen(&traffic_, SmallConfig());
  for (const auto& t : gen.Generate()) {
    for (size_t i = 0; i + 1 < t.timestamps.size(); ++i) {
      EXPECT_LT(t.timestamps[i], t.timestamps[i + 1]);
    }
    EXPECT_GT(t.end_time, t.timestamps.back());
    EXPECT_GT(t.TravelTimeSeconds(), 0);
  }
}

TEST_F(TripGeneratorTest, CorpusIsChronological) {
  TripGenerator gen(&traffic_, SmallConfig());
  const auto corpus = gen.Generate();
  for (size_t i = 0; i + 1 < corpus.size(); ++i) {
    EXPECT_LE(corpus[i].departure_time(), corpus[i + 1].departure_time());
  }
}

TEST_F(TripGeneratorTest, ContainsBothOccupancyLabels) {
  TripGenerator gen(&traffic_, SmallConfig());
  const auto corpus = gen.Generate();
  int64_t occupied = 0, vacant = 0;
  for (const auto& t : corpus) {
    (t.occupied ? occupied : vacant)++;
  }
  EXPECT_GT(occupied, 0);
  EXPECT_GT(vacant, 0);
  EXPECT_GT(occupied, vacant);  // vacant trips are a minority
}

TEST_F(TripGeneratorTest, AllDriversRepresented) {
  TripGenerator gen(&traffic_, SmallConfig());
  std::set<int64_t> drivers;
  for (const auto& t : gen.Generate()) drivers.insert(t.driver_id);
  EXPECT_EQ(drivers.size(), 6u);
}

TEST_F(TripGeneratorTest, WeekdayDeparturesShowRushPeaks) {
  TripGenerator::Config config = SmallConfig();
  config.num_drivers = 12;
  config.num_days = 10;
  TripGenerator gen(&traffic_, config);
  const auto corpus = gen.Generate();
  const auto stats = ComputeStats(net_, corpus);
  // More departures in the 8am hour than at 3am (periodicity of Fig. 1b).
  EXPECT_GT(stats.per_hour[8], stats.per_hour[3] + 2);
  EXPECT_GT(stats.per_hour[18], stats.per_hour[3] + 2);
}

TEST_F(TripGeneratorTest, RushHourTripsAreSlower) {
  // Same OD and driver, different departure time: the 8am trip takes longer.
  TripGenerator gen(&traffic_, SmallConfig());
  const int64_t src = 1, dst = net_.num_segments() - 3;
  const Trajectory rush = gen.GenerateTrip(0, src, dst, 8 * 3600);
  const Trajectory night = gen.GenerateTrip(0, src, dst, 3 * 3600);
  ASSERT_GT(rush.size(), 1);
  ASSERT_GT(night.size(), 1);
  EXPECT_GT(rush.TravelTimeSeconds(), night.TravelTimeSeconds());
}

TEST_F(TripGeneratorTest, DriverPreferenceDiversifiesRoutes) {
  // Different drivers sometimes choose different routes for the same OD.
  TripGenerator::Config config = SmallConfig();
  config.driver_preference = 0.8;
  config.trip_noise = 0.0;
  TripGenerator gen(&traffic_, config);
  const int64_t src = 0, dst = net_.num_segments() - 1;
  std::set<std::vector<int64_t>> routes;
  for (int64_t d = 0; d < 6; ++d) {
    const Trajectory t = gen.GenerateTrip(d, src, dst, 10 * 3600);
    if (t.size() > 0) routes.insert(t.roads);
  }
  EXPECT_GT(routes.size(), 1u);
}

TEST_F(TripGeneratorTest, StatsCoverFields) {
  TripGenerator gen(&traffic_, SmallConfig());
  const auto corpus = gen.Generate();
  const auto stats = ComputeStats(net_, corpus);
  EXPECT_EQ(stats.num_trajectories, static_cast<int64_t>(corpus.size()));
  EXPECT_EQ(stats.num_users, 6);
  EXPECT_GT(stats.num_covered_roads, 0);
  EXPECT_GT(stats.mean_length, 1.0);
  EXPECT_GT(stats.mean_travel_time_s, 0.0);
  int64_t visits = 0;
  for (const int64_t v : stats.road_visits) visits += v;
  EXPECT_GT(visits, 0);
}

}  // namespace
}  // namespace start::traj
