// Finite-difference gradient checks over whole module forward paths —
// nn/attention, nn/rnn, and core/tpe_gat — complementing the per-op sweeps
// of tensor_grad_test.cc. Dropout layers run in training mode with an
// explicitly seeded generator (Module::SetDropoutRng) that is re-seeded on
// every evaluation, so the sampled masks are identical across the
// perturbation calls and the loss stays a differentiable function.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/tpe_gat.h"
#include "nn/attention.h"
#include "nn/rnn.h"
#include "roadnet/synthetic_city.h"
#include "tensor/grad_check.h"
#include "tensor/ops.h"

namespace start {
namespace {

using tensor::CheckGradients;
using tensor::GradCheckResult;
using tensor::Shape;
using tensor::Tensor;

void ExpectGradOk(const std::function<Tensor(const std::vector<Tensor>&)>& fn,
                  std::vector<Tensor> inputs) {
  const GradCheckResult result = CheckGradients(fn, std::move(inputs));
  EXPECT_TRUE(result.passed) << result.detail
                             << " max_rel=" << result.max_rel_error;
}

/// Pulls a named parameter out of a module so the checker can perturb it
/// (tensor handles share storage, so the module sees every perturbation).
Tensor ParamByName(const nn::Module& module, const std::string& name) {
  for (auto& [param_name, t] : module.NamedParameters()) {
    if (param_name == name) return t;
  }
  ADD_FAILURE() << "no parameter named " << name;
  return Tensor();
}

TEST(ModuleGradCheckTest, AttentionForwardUnderSeededDropout) {
  common::Rng init_rng(31);
  nn::MultiHeadSelfAttention attn(8, 2, &init_rng, /*dropout=*/0.1f);
  attn.SetTraining(true);
  common::Rng dropout_rng(1);
  attn.SetDropoutRng(&dropout_rng);

  common::Rng data_rng(32);
  Tensor x = Tensor::Rand(Shape({2, 3, 8}), &data_rng, -1, 1);
  const auto fn = [&](const std::vector<Tensor>& in) {
    dropout_rng.Seed(123);  // identical masks on every evaluation
    return tensor::Mean(attn.Forward(in[0], Tensor()));
  };
  ExpectGradOk(fn, {x, ParamByName(attn, "wq.weight"),
                    ParamByName(attn, "wo.bias")});
}

TEST(ModuleGradCheckTest, TransformerLayerForwardUnderSeededDropout) {
  common::Rng init_rng(41);
  nn::TransformerEncoderLayer layer(8, 2, 8, &init_rng, /*dropout=*/0.1f);
  layer.SetTraining(true);
  common::Rng dropout_rng(2);
  layer.SetDropoutRng(&dropout_rng);

  common::Rng data_rng(42);
  Tensor x = Tensor::Rand(Shape({2, 3, 8}), &data_rng, -1, 1);
  const Tensor bias = nn::MakePaddingBias({3, 2}, 3);
  const auto fn = [&](const std::vector<Tensor>& in) {
    dropout_rng.Seed(321);
    return tensor::Mean(layer.Forward(in[0], bias));
  };
  ExpectGradOk(fn, {x});
}

TEST(ModuleGradCheckTest, GruForwardOverPaddedBatch) {
  common::Rng init_rng(51);
  nn::Gru gru(4, 6, &init_rng);
  gru.SetTraining(true);

  common::Rng data_rng(52);
  Tensor x = Tensor::Rand(Shape({2, 3, 4}), &data_rng, -1, 1);
  const std::vector<int64_t> lengths = {3, 2};
  const auto fn = [&](const std::vector<Tensor>& in) {
    const auto out = gru.Forward(in[0], lengths);
    // Touch both outputs so padded-step freezing is covered too.
    return tensor::Add(tensor::Mean(out.outputs),
                       tensor::Mean(out.last_hidden));
  };
  ExpectGradOk(fn, {x, ParamByName(gru, "cell.ih.weight")});
}

TEST(ModuleGradCheckTest, LstmForwardOverPaddedBatch) {
  common::Rng init_rng(61);
  nn::Lstm lstm(4, 5, &init_rng);
  lstm.SetTraining(true);

  common::Rng data_rng(62);
  Tensor x = Tensor::Rand(Shape({2, 3, 4}), &data_rng, -1, 1);
  const std::vector<int64_t> lengths = {2, 3};
  const auto fn = [&](const std::vector<Tensor>& in) {
    const auto out = lstm.Forward(in[0], lengths);
    return tensor::Add(tensor::Mean(out.outputs),
                       tensor::Mean(out.last_hidden));
  };
  ExpectGradOk(fn, {x});
}

TEST(ModuleGradCheckTest, TpeGatForwardOverSyntheticGraph) {
  const roadnet::RoadNetwork net = roadnet::BuildSyntheticCity(
      {.grid_width = 3, .grid_height = 3});
  const auto transfer = roadnet::TransferProbability::FromTrajectories(
      net, {});  // uniform transfer probabilities
  common::Rng init_rng(71);
  core::TpeGat gat(&net, &transfer, roadnet::RoadNetwork::FeatureDim(), 8,
                   {2, 1}, /*use_transfer_prob=*/true, &init_rng);
  gat.SetTraining(true);
  common::Rng dropout_rng(3);
  gat.SetDropoutRng(&dropout_rng);  // no dropout today; seeded for parity

  Tensor features = Tensor::FromVector(
      Shape({net.num_segments(), roadnet::RoadNetwork::FeatureDim()}),
      net.BuildFeatureMatrix());
  const auto fn = [&](const std::vector<Tensor>& in) {
    dropout_rng.Seed(213);
    return tensor::Mean(gat.Forward(in[0]));
  };
  ExpectGradOk(fn, {features});
}

}  // namespace
}  // namespace start
