#include <atomic>
#include <cmath>
#include <gtest/gtest.h>
#include <set>

#include "common/rng.h"
#include "common/status.h"
#include "common/table.h"
#include "common/thread_pool.h"

namespace start::common {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    // Destructor drains the queue and joins.
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, SubmitFromInsideATask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    pool.Submit([&] {
      pool.Submit([&count] { count.fetch_add(1); });
      count.fetch_add(1);
    });
  }
  EXPECT_EQ(count.load(), 2);
}

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad batch");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad batch");
}

Status FailingOp() { return Status::NotFound("nothing here"); }

Status Caller() {
  START_RETURN_IF_ERROR(FailingOp());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(Caller().code(), StatusCode::kNotFound);
}

Result<int> MakeValue(bool fail) {
  if (fail) return Status::Internal("boom");
  return 41;
}

Result<int> UseValue(bool fail) {
  START_ASSIGN_OR_RETURN(int v, MakeValue(fail));
  return v + 1;
}

TEST(ResultTest, AssignOrReturn) {
  const auto good = UseValue(false);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  const auto bad = UseValue(true);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInternal);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(8);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(5));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 4);
}

TEST(RngTest, NormalMoments) {
  Rng rng(9);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(10);
  int64_t counts[2] = {0, 0};
  for (int i = 0; i < 10000; ++i) {
    ++counts[rng.Categorical({1.0, 3.0})];
  }
  EXPECT_NEAR(static_cast<double>(counts[1]) / 10000.0, 0.75, 0.03);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(11);
  const auto sample = rng.SampleWithoutReplacement(20, 10);
  EXPECT_EQ(sample.size(), 10u);
  const std::set<int64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  for (const int64_t v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 20);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(12);
  Rng child = a.Fork();
  // The child stream should not replay the parent's values.
  Rng b(12);
  b.Fork();
  EXPECT_NE(child.Next(), a.Next());
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"model", "metric"});
  table.AddRow({"START", "1.0"});
  table.AddRow({"longer-name", "22.5"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| model       |"), std::string::npos);
  EXPECT_NE(out.find("| START       |"), std::string::npos);
  EXPECT_NE(out.find("| longer-name |"), std::string::npos);
}

TEST(TablePrinterTest, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::Num(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::Num(1.23456, 4), "1.2346");
}

}  // namespace
}  // namespace start::common
