#include "eval/metrics.h"

#include <cmath>
#include <gtest/gtest.h>

namespace start::eval {
namespace {

TEST(RegressionMetricsTest, PerfectPrediction) {
  const auto m = ComputeRegressionMetrics({1, 2, 3}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(m.mae, 0.0);
  EXPECT_DOUBLE_EQ(m.mape, 0.0);
  EXPECT_DOUBLE_EQ(m.rmse, 0.0);
}

TEST(RegressionMetricsTest, KnownErrors) {
  const auto m = ComputeRegressionMetrics({10, 20}, {12, 16});
  EXPECT_DOUBLE_EQ(m.mae, 3.0);                     // (2 + 4) / 2
  EXPECT_DOUBLE_EQ(m.mape, 100.0 * (0.2 + 0.2) / 2.0);
  EXPECT_DOUBLE_EQ(m.rmse, std::sqrt((4.0 + 16.0) / 2.0));
}

TEST(RegressionMetricsTest, MapeSkipsZeroTruth) {
  const auto m = ComputeRegressionMetrics({0, 10}, {1, 11});
  EXPECT_DOUBLE_EQ(m.mape, 10.0);  // only the second point counts
}

TEST(ClassificationMetricsTest, AccuracyAndMicroF1) {
  const std::vector<int64_t> y = {0, 1, 1, 2};
  const std::vector<int64_t> p = {0, 1, 2, 2};
  EXPECT_DOUBLE_EQ(Accuracy(y, p), 0.75);
  EXPECT_DOUBLE_EQ(MicroF1(y, p), 0.75);
}

TEST(ClassificationMetricsTest, BinaryF1KnownCase) {
  // TP=2, FP=1, FN=1 -> precision 2/3, recall 2/3, F1 = 2/3.
  const std::vector<int64_t> y = {1, 1, 1, 0, 0};
  const std::vector<int64_t> p = {1, 1, 0, 1, 0};
  EXPECT_NEAR(BinaryF1(y, p), 2.0 / 3.0, 1e-12);
}

TEST(ClassificationMetricsTest, F1ZeroWhenNoTruePositives) {
  EXPECT_DOUBLE_EQ(BinaryF1({1, 1}, {0, 0}), 0.0);
}

TEST(ClassificationMetricsTest, AucPerfectAndReversed) {
  const std::vector<int64_t> y = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(BinaryAuc(y, {0.1, 0.2, 0.8, 0.9}), 1.0);
  EXPECT_DOUBLE_EQ(BinaryAuc(y, {0.9, 0.8, 0.2, 0.1}), 0.0);
}

TEST(ClassificationMetricsTest, AucHalfForUninformativeScores) {
  const std::vector<int64_t> y = {0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(BinaryAuc(y, {0.5, 0.5, 0.5, 0.5}), 0.5);
}

TEST(ClassificationMetricsTest, AucHandlesTies) {
  const std::vector<int64_t> y = {0, 0, 1, 1};
  // One positive tied with one negative at 0.5.
  const double auc = BinaryAuc(y, {0.1, 0.5, 0.5, 0.9});
  EXPECT_NEAR(auc, 0.875, 1e-9);
}

TEST(ClassificationMetricsTest, MacroF1AveragesOverClasses) {
  // Class 0 perfectly predicted, class 1 never predicted, class 2 absent.
  const std::vector<int64_t> y = {0, 0, 1, 1};
  const std::vector<int64_t> p = {0, 0, 0, 0};
  // F1(class0): precision 0.5 recall 1 -> 2/3. F1(1)=0, F1(2)=0.
  EXPECT_NEAR(MacroF1(y, p, 3), (2.0 / 3.0) / 3.0, 1e-12);
}

TEST(ClassificationMetricsTest, RecallAtKBoundaries) {
  const std::vector<int64_t> y = {0, 1};
  const std::vector<double> scores = {
      0.9, 0.05, 0.05,   // truth 0 ranked 1st
      0.5, 0.3, 0.2,     // truth 1 ranked 2nd
  };
  EXPECT_DOUBLE_EQ(RecallAtK(y, scores, 3, 1), 0.5);
  EXPECT_DOUBLE_EQ(RecallAtK(y, scores, 3, 2), 1.0);
}

}  // namespace
}  // namespace start::eval
