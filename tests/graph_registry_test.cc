// GraphRegistry tests: registration semantics (duplicate ids, unfinalized
// networks, prebuilt bundles) and the reader/registrar concurrency contract —
// Get() snapshots stay valid and readers keep querying while other threads
// register new cities. Runs under the `concurrency` ctest label so the TSan
// job covers the shared_mutex + snapshot handoff.
#include "roadnet/graph_registry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "roadnet/synthetic_city.h"
#include "testing.h"

namespace start::roadnet {
namespace {

std::shared_ptr<const RoadNetwork> MakeCity(int64_t grid, uint64_t seed) {
  SyntheticCityConfig config;
  config.grid_width = grid;
  config.grid_height = grid;
  config.seed = seed;
  return std::make_shared<const RoadNetwork>(BuildSyntheticCity(config));
}

TEST(GraphRegistryTest, RegisterBuildsFullBundle) {
  GraphRegistry registry;
  ASSERT_TRUE(registry.Register("porto", MakeCity(4, 1)).ok());
  const auto entry = registry.Get("porto");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->city, "porto");
  ASSERT_NE(entry->network, nullptr);
  ASSERT_NE(entry->graph, nullptr);
  ASSERT_NE(entry->ch, nullptr);
  EXPECT_EQ(entry->graph->num_nodes(), entry->network->num_segments());
  EXPECT_EQ(&entry->ch->graph(), entry->graph.get());
  EXPECT_TRUE(registry.Contains("porto"));
  EXPECT_FALSE(registry.Contains("beijing"));
  EXPECT_EQ(registry.Get("beijing"), nullptr);
  EXPECT_EQ(registry.size(), 1);
}

TEST(GraphRegistryTest, DuplicateCityIdIsRejected) {
  GraphRegistry registry;
  ASSERT_TRUE(registry.Register("porto", MakeCity(3, 1)).ok());
  const auto status = registry.Register("porto", MakeCity(4, 2));
  EXPECT_EQ(status.code(), common::StatusCode::kAlreadyExists);
  EXPECT_EQ(registry.size(), 1);
}

TEST(GraphRegistryTest, UnfinalizedNetworkIsRejected) {
  GraphRegistry registry;
  auto net = std::make_shared<RoadNetwork>();
  net->AddSegment({});
  const auto status = registry.Register("raw", net);
  EXPECT_EQ(status.code(), common::StatusCode::kFailedPrecondition);
}

TEST(GraphRegistryTest, PrebuiltBundleMustBeConsistent) {
  GraphRegistry registry;
  const auto net = MakeCity(3, 5);
  auto graph = std::make_shared<const CsrGraph>(
      CsrGraph::FromNetworkFreeFlow(*net));
  auto other = std::make_shared<const CsrGraph>(
      CsrGraph::FromNetworkFreeFlow(*net));
  auto ch = std::make_shared<const ChEngine>(ChEngine::Build(graph.get()));
  // ch was built over `graph`, not `other`: the registry must refuse the
  // mismatched bundle and accept the consistent one.
  CityGraph bad{"mismatch", net, other, ch};
  EXPECT_EQ(registry.RegisterPrebuilt(bad).code(),
            common::StatusCode::kFailedPrecondition);
  CityGraph good{"ok", net, graph, ch};
  EXPECT_TRUE(registry.RegisterPrebuilt(good).ok());
  EXPECT_EQ(registry.Get("ok")->ch.get(), ch.get());
}

TEST(GraphRegistryTest, CitiesAreSorted) {
  GraphRegistry registry;
  ASSERT_TRUE(registry.Register("porto", MakeCity(3, 1)).ok());
  ASSERT_TRUE(registry.Register("beijing", MakeCity(3, 2)).ok());
  ASSERT_TRUE(registry.Register("chengdu", MakeCity(3, 3)).ok());
  EXPECT_EQ(registry.Cities(),
            (std::vector<std::string>{"beijing", "chengdu", "porto"}));
}

TEST(GraphRegistryTest, ReadersKeepQueryingWhileCitiesRegister) {
  GraphRegistry registry;
  ASSERT_TRUE(registry.Register("city0", MakeCity(5, 10)).ok());

  constexpr int kReaders = 4;
  constexpr int kNewCities = 6;
  std::atomic<bool> stop{false};
  std::atomic<int64_t> queries{0};

  // Readers hammer Get() + CH queries on whatever cities exist. Snapshots
  // taken before a registration must stay valid throughout.
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&registry, &stop, &queries, r] {
      const auto pinned = registry.Get("city0");
      ASSERT_NE(pinned, nullptr);
      auto ctx = pinned->ch->MakeContext();
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        // Query the pinned snapshot...
        const int32_t n = pinned->graph->num_nodes();
        const int32_t src = static_cast<int32_t>((i * 13 + r) % n);
        const int32_t dst = static_cast<int32_t>((i * 31 + 7) % n);
        (void)pinned->ch->Distance(src, dst, &ctx);
        // ...and whichever cities have appeared since.
        const auto cities = registry.Cities();
        for (const auto& c : cities) EXPECT_TRUE(registry.Contains(c));
        queries.fetch_add(1, std::memory_order_relaxed);
        ++i;
      }
    });
  }

  // Registrar thread adds cities (each Register runs a CSR lowering + CH
  // build) while the readers run.
  std::thread registrar([&registry] {
    for (int c = 1; c <= kNewCities; ++c) {
      ASSERT_TRUE(registry
                      .Register("city" + std::to_string(c),
                                MakeCity(4, 100 + static_cast<uint64_t>(c)))
                      .ok());
    }
  });
  registrar.join();
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_GT(queries.load(), 0);
  EXPECT_EQ(registry.size(), kNewCities + 1);
  // Every registered city is fully usable after the dust settles.
  for (const auto& city : registry.Cities()) {
    const auto entry = registry.Get(city);
    ASSERT_NE(entry, nullptr);
    auto ctx = entry->ch->MakeContext();
    EXPECT_LT(entry->ch->Distance(0, entry->graph->num_nodes() - 1, &ctx),
              kInfCost);
  }
}

}  // namespace
}  // namespace start::roadnet
