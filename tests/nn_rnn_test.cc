#include "nn/rnn.h"

#include <cmath>
#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/ops.h"

namespace start::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(GruCellTest, StepShape) {
  common::Rng rng(1);
  GruCell cell(4, 8, &rng);
  const Tensor x = Tensor::Rand(Shape({3, 4}), &rng, -1, 1);
  const Tensor h = Tensor::Zeros(Shape({3, 8}));
  EXPECT_EQ(cell.Step(x, h).shape(), Shape({3, 8}));
}

TEST(GruCellTest, BoundedActivations) {
  common::Rng rng(2);
  GruCell cell(4, 8, &rng);
  Tensor h = Tensor::Zeros(Shape({2, 8}));
  for (int step = 0; step < 20; ++step) {
    const Tensor x = Tensor::Rand(Shape({2, 4}), &rng, -3, 3);
    h = cell.Step(x, h);
  }
  // GRU hidden state is a convex mix of tanh outputs: stays in (-1, 1).
  for (int64_t i = 0; i < h.numel(); ++i) {
    EXPECT_LT(std::fabs(h.data()[i]), 1.0f);
  }
}

TEST(GruTest, PaddingFreezesState) {
  common::Rng rng(3);
  Gru gru(4, 8, &rng);
  // Two sequences: one of length 2, one of length 4.
  const Tensor x = Tensor::Rand(Shape({2, 4, 4}), &rng, -1, 1);
  const auto out = gru.Forward(x, {2, 4});
  EXPECT_EQ(out.outputs.shape(), Shape({2, 4, 8}));
  // Sequence 0's states at t=2,3 equal its state at t=1 (frozen).
  for (int64_t j = 0; j < 8; ++j) {
    EXPECT_EQ(out.outputs.at({0, 2, j}), out.outputs.at({0, 1, j}));
    EXPECT_EQ(out.outputs.at({0, 3, j}), out.outputs.at({0, 1, j}));
    EXPECT_EQ(out.last_hidden.at({0, j}), out.outputs.at({0, 1, j}));
  }
}

TEST(GruTest, LastHiddenMatchesFinalStep) {
  common::Rng rng(4);
  Gru gru(3, 6, &rng);
  const Tensor x = Tensor::Rand(Shape({2, 5, 3}), &rng, -1, 1);
  const auto out = gru.Forward(x, {5, 5});
  for (int64_t b = 0; b < 2; ++b) {
    for (int64_t j = 0; j < 6; ++j) {
      EXPECT_EQ(out.last_hidden.at({b, j}), out.outputs.at({b, 4, j}));
    }
  }
}

TEST(GruTest, GradientsFlowToInput) {
  common::Rng rng(5);
  Gru gru(3, 4, &rng);
  Tensor x = Tensor::Rand(Shape({1, 4, 3}), &rng, -1, 1);
  x.set_requires_grad(true);
  Tensor loss = tensor::Mean(gru.Forward(x, {4}).last_hidden);
  loss.Backward();
  double total = 0.0;
  for (int64_t i = 0; i < x.numel(); ++i) total += std::fabs(x.grad()[i]);
  EXPECT_GT(total, 0.0);
}

TEST(LstmTest, ShapesAndPaddingFreeze) {
  common::Rng rng(6);
  Lstm lstm(4, 8, &rng);
  const Tensor x = Tensor::Rand(Shape({2, 3, 4}), &rng, -1, 1);
  const auto out = lstm.Forward(x, {1, 3});
  EXPECT_EQ(out.outputs.shape(), Shape({2, 3, 8}));
  for (int64_t j = 0; j < 8; ++j) {
    EXPECT_EQ(out.outputs.at({0, 2, j}), out.outputs.at({0, 0, j}));
  }
}

TEST(LstmTest, DifferentInputsGiveDifferentStates) {
  common::Rng rng(7);
  Lstm lstm(4, 8, &rng);
  const Tensor a = Tensor::Rand(Shape({1, 3, 4}), &rng, -1, 1);
  const Tensor b = Tensor::Rand(Shape({1, 3, 4}), &rng, -1, 1);
  const auto ha = lstm.Forward(a, {3}).last_hidden;
  const auto hb = lstm.Forward(b, {3}).last_hidden;
  double diff = 0.0;
  for (int64_t i = 0; i < ha.numel(); ++i) {
    diff += std::fabs(ha.data()[i] - hb.data()[i]);
  }
  EXPECT_GT(diff, 1e-4);
}

}  // namespace
}  // namespace start::nn
