#include "testing.h"

#include <cstdio>
#include <cstring>
#include <filesystem>

#include "data/dataset.h"
#include "roadnet/synthetic_city.h"
#include "traj/trip_generator.h"

namespace start::testutil {

namespace {

/// FNV-1a over a string, for test-name-derived seeds.
uint64_t HashString(const std::string& s, uint64_t h) {
  for (const char c : s) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

std::unique_ptr<TinyWorld> MakeTinyWorld(const TinyWorldOptions& options) {
  auto world = std::make_unique<TinyWorld>();
  world->net = std::make_unique<roadnet::RoadNetwork>(
      roadnet::BuildSyntheticCity({.grid_width = options.grid_width,
                                   .grid_height = options.grid_height}));
  world->traffic = std::make_unique<traj::TrafficModel>(
      world->net.get(), traj::TrafficModel::Config{});

  traj::TripGenerator::Config gen_config;
  gen_config.num_drivers = options.num_drivers;
  gen_config.num_days = options.num_days;
  gen_config.trips_per_driver_day = options.trips_per_driver_day;
  gen_config.seed = options.trip_seed;
  traj::TripGenerator gen(world->traffic.get(), gen_config);
  auto raw = gen.Generate();

  data::DatasetConfig dataset_config;
  dataset_config.min_length = options.min_length;
  dataset_config.min_user_trajectories = options.min_user_trajectories;
  world->corpus =
      data::TrajDataset::FromCorpus(*world->net, std::move(raw),
                                    dataset_config)
          .All();

  if (options.build_transfer) {
    std::vector<std::vector<int64_t>> sequences;
    sequences.reserve(world->corpus.size());
    for (const auto& t : world->corpus) sequences.push_back(t.roads);
    world->transfer = std::make_unique<roadnet::TransferProbability>(
        roadnet::TransferProbability::FromTrajectories(*world->net,
                                                       sequences));
  }
  return world;
}

core::StartConfig TinyStartConfig() {
  core::StartConfig config;
  config.d = 16;
  config.gat_layers = 1;
  config.gat_heads = {2};
  config.encoder_layers = 1;
  config.encoder_heads = 2;
  config.max_len = 64;
  return config;
}

roadnet::TransferProbability EdgePairTransfer(
    const roadnet::RoadNetwork& net) {
  std::vector<std::vector<int64_t>> sequences;
  sequences.reserve(net.edge_sources().size());
  for (size_t e = 0; e < net.edge_sources().size(); ++e) {
    sequences.push_back({net.edge_sources()[e], net.edge_targets()[e]});
  }
  return roadnet::TransferProbability::FromTrajectories(net, sequences);
}

void ExpectAllClose(const tensor::Tensor& a, const tensor::Tensor& b,
                    double atol, const std::string& what) {
  ASSERT_TRUE(a.defined() && b.defined()) << what;
  ASSERT_EQ(a.shape(), b.shape()) << what;
  const tensor::Tensor da = a.Detach();  // compacts strided views
  const tensor::Tensor db = b.Detach();
  const float* pa = da.data();
  const float* pb = db.data();
  int reported = 0;
  for (int64_t i = 0; i < da.numel(); ++i) {
    if (std::abs(static_cast<double>(pa[i]) - pb[i]) > atol) {
      EXPECT_NEAR(pa[i], pb[i], atol) << what << " at flat index " << i;
      if (++reported >= 5) {
        FAIL() << what << ": more than 5 mismatches (of " << da.numel()
               << " elements)";
      }
    }
  }
}

void ExpectTensorBitwiseEqual(const tensor::Tensor& a, const tensor::Tensor& b,
                              const std::string& what) {
  ASSERT_TRUE(a.defined() && b.defined()) << what;
  ASSERT_EQ(a.shape(), b.shape()) << what;
  const tensor::Tensor da = a.Detach();
  const tensor::Tensor db = b.Detach();
  EXPECT_EQ(std::memcmp(da.data(), db.data(),
                        static_cast<size_t>(da.numel()) * sizeof(float)),
            0)
      << what << ": tensors differ bitwise";
}

void ExpectParamsBitwiseEqual(const nn::Module& a, const nn::Module& b) {
  const auto named_a = a.NamedParameters();
  const auto named_b = b.NamedParameters();
  ASSERT_EQ(named_a.size(), named_b.size());
  for (size_t i = 0; i < named_a.size(); ++i) {
    ASSERT_EQ(named_a[i].first, named_b[i].first);
    const auto& ta = named_a[i].second;
    const auto& tb = named_b[i].second;
    ASSERT_EQ(ta.shape(), tb.shape()) << named_a[i].first;
    EXPECT_EQ(std::memcmp(ta.data(), tb.data(),
                          static_cast<size_t>(ta.numel()) * sizeof(float)),
              0)
        << "parameter diverged: " << named_a[i].first;
  }
}

void ExpectFloatsBitwiseEqual(const std::vector<float>& a,
                              const std::vector<float>& b,
                              const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
      << what << ": buffers differ bitwise";
}

TempDir::TempDir() {
  std::string templ = std::string(::testing::TempDir()) + "start_XXXXXX";
  char* made = mkdtemp(templ.data());
  EXPECT_NE(made, nullptr) << "mkdtemp failed for " << templ;
  path_ = made != nullptr ? made : templ;
}

TempDir::~TempDir() {
  std::error_code ec;  // best effort; never throw from a destructor
  std::filesystem::remove_all(path_, ec);
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return {};
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  return bytes;
}

void WriteFileBytes(const std::string& path,
                    const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  // bytes.data() may be null when empty — fwrite's pointer must be non-null.
  if (!bytes.empty()) {
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  }
  std::fclose(f);
}

std::string FixtureDir() {
#ifdef START_TEST_FIXTURE_DIR
  return START_TEST_FIXTURE_DIR;
#else
  return "tests/fixtures";
#endif
}

uint64_t TestSeed(uint64_t salt) {
  uint64_t h = 0xcbf29ce484222325ULL ^ (salt * 0x9e3779b97f4a7c15ULL);
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  if (info != nullptr) {
    h = HashString(info->test_suite_name(), h);
    h = HashString(info->name(), h);
  }
  return h;
}

common::Rng TestRng(uint64_t salt) { return common::Rng(TestSeed(salt)); }

}  // namespace start::testutil
