#include "roadnet/ch_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>

#include "roadnet/csr_graph.h"
#include "roadnet/shortest_path.h"
#include "roadnet/synthetic_city.h"
#include "testing.h"

namespace start::roadnet {
namespace {

RoadNetwork MakeCity(int32_t grid, uint64_t seed) {
  SyntheticCityConfig config;
  config.grid_width = grid;
  config.grid_height = grid;
  config.seed = seed;
  return BuildSyntheticCity(config);
}

// --- CsrGraph lowering -----------------------------------------------------

TEST(CsrGraphTest, RenumberingIsABijection) {
  const RoadNetwork net = MakeCity(6, 11);
  const CsrGraph g = CsrGraph::FromNetworkFreeFlow(net);
  ASSERT_EQ(g.num_nodes(), net.num_segments());
  std::set<int64_t> segments;
  for (int32_t n = 0; n < g.num_nodes(); ++n) {
    const int64_t s = g.ToSegment(n);
    EXPECT_EQ(g.ToNode(s), n);
    segments.insert(s);
  }
  EXPECT_EQ(static_cast<int64_t>(segments.size()), net.num_segments());
}

TEST(CsrGraphTest, HubsAreRenumberedFirst) {
  const RoadNetwork net = MakeCity(6, 11);
  const CsrGraph g = CsrGraph::FromNetworkFreeFlow(net);
  auto degree = [&](int32_t n) {
    const int64_t s = g.ToSegment(n);
    return net.OutDegree(s) + net.InDegree(s);
  };
  for (int32_t n = 1; n < g.num_nodes(); ++n) {
    EXPECT_GE(degree(n - 1), degree(n));
  }
}

TEST(CsrGraphTest, ArcCountAndWeightsMatchNetwork) {
  const RoadNetwork net = MakeCity(6, 11);
  const CsrGraph g = CsrGraph::FromNetworkFreeFlow(net);
  EXPECT_EQ(g.num_arcs(), net.num_edges());
  const int64_t* offsets = g.out_offsets();
  const int32_t* heads = g.out_heads();
  const Cost* weights = g.out_weights();
  for (int32_t n = 0; n < g.num_nodes(); ++n) {
    for (int64_t k = offsets[n]; k < offsets[n + 1]; ++k) {
      EXPECT_TRUE(net.HasEdge(g.ToSegment(n), g.ToSegment(heads[k])));
      EXPECT_EQ(weights[k], g.node_cost(heads[k]));
    }
  }
}

TEST(CsrGraphTest, FingerprintTracksMetric) {
  const RoadNetwork net = MakeCity(5, 3);
  const CsrGraph a = CsrGraph::FromNetworkFreeFlow(net);
  const CsrGraph b = CsrGraph::FromNetworkFreeFlow(net);
  const CsrGraph c = CsrGraph::FromNetwork(
      net, [&net](int64_t s) { return 2.0 * net.FreeFlowTravelTime(s); });
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  EXPECT_NE(a.Fingerprint(), c.Fingerprint());
}

TEST(CsrDijkstraTest, MatchesLegacyShortestPathCost) {
  const RoadNetwork net = MakeCity(6, 19);
  const CsrGraph g = CsrGraph::FromNetworkFreeFlow(net);
  CsrDijkstra dij(&g);
  auto weight = [&net](int64_t s) { return net.FreeFlowTravelTime(s); };
  auto rng = testutil::TestRng();
  for (int trial = 0; trial < 25; ++trial) {
    const int64_t src = rng.UniformInt(0, net.num_segments() - 1);
    const int64_t dst = rng.UniformInt(0, net.num_segments() - 1);
    const auto legacy = ShortestPath(net, src, dst, weight);
    const Cost c = dij.Distance(g.ToNode(src), g.ToNode(dst));
    if (!legacy.has_value()) {
      EXPECT_EQ(c, kInfCost);
      continue;
    }
    ASSERT_LT(c, kInfCost);
    // Quantization error is bounded by half a cost unit per path segment.
    const double seconds = g.CostToSeconds(c);
    const double tolerance =
        static_cast<double>(legacy->path.size()) / 1000.0;
    EXPECT_NEAR(seconds, legacy->cost, tolerance + 1e-9);
  }
}

// --- ChEngine exactness (the core contract) --------------------------------

/// CH distances must be *identical* to Dijkstra over the same integer
/// weights — across random cities of different sizes and seeds.
TEST(ChEngineTest, DistancesBitwiseEqualDijkstraAcrossRandomCities) {
  const struct {
    int32_t grid;
    uint64_t city_seed;
    uint64_t ch_seed;
  } kCases[] = {
      {4, 1, 7}, {5, 22, 7}, {6, 303, 11}, {7, 4004, 13}, {8, 50005, 17},
  };
  for (const auto& tc : kCases) {
    SCOPED_TRACE(::testing::Message() << "grid=" << tc.grid
                                      << " city_seed=" << tc.city_seed);
    const RoadNetwork net = MakeCity(tc.grid, tc.city_seed);
    const CsrGraph g = CsrGraph::FromNetworkFreeFlow(net);
    ChOptions options;
    options.seed = tc.ch_seed;
    const ChEngine ch = ChEngine::Build(&g, options);
    ChEngine::QueryContext ctx = ch.MakeContext();
    CsrDijkstra dij(&g);
    auto rng = testutil::TestRng(tc.city_seed);
    for (int trial = 0; trial < 60; ++trial) {
      const int32_t src =
          static_cast<int32_t>(rng.UniformInt(0, g.num_nodes() - 1));
      const int32_t dst =
          static_cast<int32_t>(rng.UniformInt(0, g.num_nodes() - 1));
      EXPECT_EQ(ch.Distance(src, dst, &ctx), dij.Distance(src, dst))
          << "src=" << src << " dst=" << dst;
    }
  }
}

TEST(ChEngineTest, RouteUnpacksToValidPathWithExactCost) {
  const RoadNetwork net = MakeCity(7, 99);
  const CsrGraph g = CsrGraph::FromNetworkFreeFlow(net);
  const ChEngine ch = ChEngine::Build(&g);
  ChEngine::QueryContext ctx = ch.MakeContext();
  CsrDijkstra dij(&g);
  auto rng = testutil::TestRng();
  int routed = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const int32_t src =
        static_cast<int32_t>(rng.UniformInt(0, g.num_nodes() - 1));
    const int32_t dst =
        static_cast<int32_t>(rng.UniformInt(0, g.num_nodes() - 1));
    const auto route = ch.Route(src, dst, &ctx);
    const Cost expect = dij.Distance(src, dst);
    if (!route.has_value()) {
      EXPECT_EQ(expect, kInfCost);
      continue;
    }
    ++routed;
    EXPECT_EQ(route->cost, expect);
    ASSERT_FALSE(route->nodes.empty());
    EXPECT_EQ(route->nodes.front(), src);
    EXPECT_EQ(route->nodes.back(), dst);
    // Every hop must be a real arc, and the declared cost must equal the
    // recomputed node-cost sum (source included).
    Cost sum = g.node_cost(route->nodes.front());
    for (size_t i = 0; i + 1 < route->nodes.size(); ++i) {
      EXPECT_TRUE(
          net.HasEdge(g.ToSegment(route->nodes[i]),
                      g.ToSegment(route->nodes[i + 1])))
          << "hop " << i;
      sum += g.node_cost(route->nodes[i + 1]);
    }
    EXPECT_EQ(sum, route->cost);
  }
  EXPECT_GT(routed, 0);
}

TEST(ChEngineTest, SameSeedBuildsIdenticalHierarchy) {
  const RoadNetwork net = MakeCity(5, 7);
  const CsrGraph g = CsrGraph::FromNetworkFreeFlow(net);
  const ChEngine a = ChEngine::Build(&g);
  const ChEngine b = ChEngine::Build(&g);
  ASSERT_EQ(a.num_shortcuts(), b.num_shortcuts());
  for (int32_t v = 0; v < g.num_nodes(); ++v) {
    ASSERT_EQ(a.Rank(v), b.Rank(v));
  }
}

TEST(ChEngineTest, DifferentSeedsStillExact) {
  const RoadNetwork net = MakeCity(5, 7);
  const CsrGraph g = CsrGraph::FromNetworkFreeFlow(net);
  ChOptions other;
  other.seed = 0xDEADBEEF;
  const ChEngine ch = ChEngine::Build(&g, other);
  ChEngine::QueryContext ctx = ch.MakeContext();
  CsrDijkstra dij(&g);
  for (int32_t src = 0; src < g.num_nodes(); src += 7) {
    for (int32_t dst = 0; dst < g.num_nodes(); dst += 11) {
      EXPECT_EQ(ch.Distance(src, dst, &ctx), dij.Distance(src, dst));
    }
  }
}

TEST(ChEngineTest, SourceEqualsTargetCostsOneSegment) {
  const RoadNetwork net = MakeCity(4, 5);
  const CsrGraph g = CsrGraph::FromNetworkFreeFlow(net);
  const ChEngine ch = ChEngine::Build(&g);
  ChEngine::QueryContext ctx = ch.MakeContext();
  EXPECT_EQ(ch.Distance(3, 3, &ctx), g.node_cost(3));
  const auto route = ch.Route(3, 3, &ctx);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->nodes, std::vector<int32_t>{3});
}

// --- Many-to-many ----------------------------------------------------------

TEST(ChEngineTest, ManyToManyMatchesPairwiseDistances) {
  const RoadNetwork net = MakeCity(6, 42);
  const CsrGraph g = CsrGraph::FromNetworkFreeFlow(net);
  const ChEngine ch = ChEngine::Build(&g);
  ChEngine::QueryContext ctx = ch.MakeContext();
  auto rng = testutil::TestRng();
  std::vector<int32_t> sources, targets;
  for (int i = 0; i < 9; ++i) {
    sources.push_back(static_cast<int32_t>(rng.UniformInt(0, g.num_nodes() - 1)));
    targets.push_back(static_cast<int32_t>(rng.UniformInt(0, g.num_nodes() - 1)));
  }
  std::vector<Cost> table;
  ch.ManyToMany(sources, targets, &ctx, &table);
  ASSERT_EQ(table.size(), sources.size() * targets.size());
  for (size_t i = 0; i < sources.size(); ++i) {
    for (size_t j = 0; j < targets.size(); ++j) {
      EXPECT_EQ(table[i * targets.size() + j],
                ch.Distance(sources[i], targets[j], &ctx))
          << "i=" << i << " j=" << j;
    }
  }
}

TEST(ChEngineTest, ManyToManyEmptyInputs) {
  const RoadNetwork net = MakeCity(4, 2);
  const CsrGraph g = CsrGraph::FromNetworkFreeFlow(net);
  const ChEngine ch = ChEngine::Build(&g);
  ChEngine::QueryContext ctx = ch.MakeContext();
  std::vector<Cost> table;
  ch.ManyToMany({}, {1, 2}, &ctx, &table);
  EXPECT_TRUE(table.empty());
  ch.ManyToMany({1}, {}, &ctx, &table);
  EXPECT_TRUE(table.empty());
}

// --- Alternative routes ----------------------------------------------------

TEST(ChEngineTest, AlternativeRoutesAreSimpleSortedAndLeadWithShortest) {
  const RoadNetwork net = MakeCity(6, 123);
  const CsrGraph g = CsrGraph::FromNetworkFreeFlow(net);
  const ChEngine ch = ChEngine::Build(&g);
  ChEngine::QueryContext ctx = ch.MakeContext();
  CsrDijkstra dij(&g);
  auto rng = testutil::TestRng();
  int nonempty = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const int32_t src =
        static_cast<int32_t>(rng.UniformInt(0, g.num_nodes() - 1));
    const int32_t dst =
        static_cast<int32_t>(rng.UniformInt(0, g.num_nodes() - 1));
    const std::vector<CsrPath> alts = ch.AlternativeRoutes(src, dst, 6, &ctx);
    if (alts.empty()) {
      EXPECT_EQ(dij.Distance(src, dst), kInfCost);
      continue;
    }
    ++nonempty;
    EXPECT_EQ(alts.front().cost, dij.Distance(src, dst));
    for (size_t i = 0; i < alts.size(); ++i) {
      const CsrPath& p = alts[i];
      EXPECT_EQ(p.nodes.front(), src);
      EXPECT_EQ(p.nodes.back(), dst);
      std::set<int32_t> unique(p.nodes.begin(), p.nodes.end());
      EXPECT_EQ(unique.size(), p.nodes.size()) << "path not simple";
      if (i > 0) {
        EXPECT_GE(p.cost, alts[i - 1].cost);
        EXPECT_NE(p.nodes, alts[i - 1].nodes);
      }
    }
  }
  EXPECT_GT(nonempty, 0);
}

// --- Serialization ---------------------------------------------------------

TEST(ChEngineTest, SaveLoadRoundTripPreservesQueries) {
  const testutil::TempDir dir;
  const std::string path = dir.path() + "/ch.bin";
  const RoadNetwork net = MakeCity(6, 77);
  const CsrGraph g = CsrGraph::FromNetworkFreeFlow(net);
  const ChEngine built = ChEngine::Build(&g);
  ASSERT_TRUE(built.Save(path).ok());
  auto loaded = ChEngine::Load(path, &g);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_shortcuts(), built.num_shortcuts());
  ChEngine::QueryContext bctx = built.MakeContext();
  ChEngine::QueryContext lctx = loaded->MakeContext();
  auto rng = testutil::TestRng();
  for (int trial = 0; trial < 30; ++trial) {
    const int32_t src =
        static_cast<int32_t>(rng.UniformInt(0, g.num_nodes() - 1));
    const int32_t dst =
        static_cast<int32_t>(rng.UniformInt(0, g.num_nodes() - 1));
    EXPECT_EQ(built.Distance(src, dst, &bctx),
              loaded->Distance(src, dst, &lctx));
  }
}

TEST(ChEngineTest, LoadRefusesMismatchedGraph) {
  const testutil::TempDir dir;
  const std::string path = dir.path() + "/ch.bin";
  const RoadNetwork net = MakeCity(5, 1);
  const CsrGraph g = CsrGraph::FromNetworkFreeFlow(net);
  ASSERT_TRUE(ChEngine::Build(&g).Save(path).ok());
  const RoadNetwork other_net = MakeCity(5, 2);
  const CsrGraph other = CsrGraph::FromNetworkFreeFlow(other_net);
  const auto loaded = ChEngine::Load(path, &other);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), common::StatusCode::kFailedPrecondition);
}

TEST(ChEngineTest, LoadRejectsCorruptArtifact) {
  const testutil::TempDir dir;
  const std::string path = dir.path() + "/ch.bin";
  const RoadNetwork net = MakeCity(4, 9);
  const CsrGraph g = CsrGraph::FromNetworkFreeFlow(net);
  ASSERT_TRUE(ChEngine::Build(&g).Save(path).ok());
  // Flip one byte in the middle of the payload.
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(64);
  char b = 0;
  f.seekg(64);
  f.read(&b, 1);
  b = static_cast<char>(b ^ 0x40);
  f.seekp(64);
  f.write(&b, 1);
  f.close();
  const auto loaded = ChEngine::Load(path, &g);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), common::StatusCode::kInvalidArgument);
}

TEST(ChEngineTest, LoadRejectsMissingFile) {
  const RoadNetwork net = MakeCity(4, 9);
  const CsrGraph g = CsrGraph::FromNetworkFreeFlow(net);
  const auto loaded = ChEngine::Load("/nonexistent/ch.bin", &g);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), common::StatusCode::kIOError);
}

}  // namespace
}  // namespace start::roadnet
