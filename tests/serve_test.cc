// Serving-plane tests: FrozenEncoder artifact loading (including fuzzed /
// truncated / corrupt checkpoint files — the pure-Status boundary),
// equivalence with the eval-plane encoder, batch-composition invariance (the
// property micro-batch coalescing rests on), the EmbeddingService request
// path, and EmbeddingIndex add/remove/query semantics.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "core/checkpoint.h"
#include "eval/tasks.h"
#include "core/start_encoder.h"
#include "core/start_model.h"
#include "data/dataset.h"
#include "roadnet/synthetic_city.h"
#include "serve/embedding_index.h"
#include "serve/embedding_service.h"
#include "serve/frozen_encoder.h"
#include "serve/index_interface.h"
#include "tensor/serialize.h"
#include "testing.h"
#include "traj/trip_generator.h"

namespace start {
namespace {

using testutil::ReadFileBytes;
using testutil::WriteFileBytes;

/// One scratch directory per test binary, removed at exit (the suite-level
/// artifact below outlives individual tests).
std::string TempPath(const char* name) {
  static testutil::TempDir dir;
  return dir.File(name);
}

class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    city_ = new roadnet::RoadNetwork(roadnet::BuildSyntheticCity(
        {.grid_width = 6, .grid_height = 6, .seed = 3}));
    traffic_ = new traj::TrafficModel(city_, {});
    traj::TripGenerator::Config config;
    config.num_drivers = 6;
    config.num_days = 6;
    config.trips_per_driver_day = 3.0;
    config.seed = 44;
    traj::TripGenerator gen(traffic_, config);
    data::DatasetConfig ds;
    ds.min_length = 5;
    ds.min_user_trajectories = 2;
    corpus_ = new std::vector<traj::Trajectory>(
        data::TrajDataset::FromCorpus(*city_, gen.Generate(), ds).All());
    ASSERT_GE(corpus_->size(), 16u);
    transfer_ = new roadnet::TransferProbability(
        roadnet::TransferProbability::FromTrajectories(*city_, [] {
          std::vector<std::vector<int64_t>> seqs;
          for (const auto& t : *corpus_) seqs.push_back(t.roads);
          return seqs;
        }()));
    config_ = new core::StartConfig(TinyConfig());
    common::Rng rng(7);
    model_ = new core::StartModel(*config_, city_, transfer_, &rng);
    checkpoint_path_ = new std::string(TempPath("serve_model.sttn"));
    ASSERT_TRUE(core::SaveModelCheckpoint(*checkpoint_path_, *model_,
                                          core::HashStartConfig(*config_))
                    .ok());
  }

  static void TearDownTestSuite() {
    delete checkpoint_path_;
    delete model_;
    delete config_;
    delete transfer_;
    delete corpus_;
    delete traffic_;
    delete city_;
    checkpoint_path_ = nullptr;
    model_ = nullptr;
    config_ = nullptr;
    transfer_ = nullptr;
    corpus_ = nullptr;
    traffic_ = nullptr;
    city_ = nullptr;
  }

  static core::StartConfig TinyConfig() {
    core::StartConfig config;
    config.d = 16;
    config.gat_layers = 2;
    config.gat_heads = {4, 1};
    config.encoder_layers = 2;
    config.encoder_heads = 2;
    config.max_len = 96;
    return config;
  }

  static std::unique_ptr<serve::FrozenEncoder> LoadFrozen() {
    auto result = serve::FrozenEncoder::Load(*checkpoint_path_, *config_,
                                             city_, transfer_);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  static std::unique_ptr<serve::FrozenEncoder> LoadFrozenInt8() {
    serve::FrozenEncoderOptions options;
    options.precision = serve::Precision::kInt8;
    auto result = serve::FrozenEncoder::Load(*checkpoint_path_, *config_,
                                             city_, transfer_, options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  /// Per-trajectory cosine between two [n, d] embedding matrices.
  static std::vector<double> RowCosines(const std::vector<float>& a,
                                        const std::vector<float>& b,
                                        int64_t d) {
    EXPECT_EQ(a.size(), b.size());
    std::vector<double> out;
    for (size_t row = 0; row + d <= a.size(); row += d) {
      double dot = 0, na = 0, nb = 0;
      for (int64_t j = 0; j < d; ++j) {
        dot += static_cast<double>(a[row + j]) * b[row + j];
        na += static_cast<double>(a[row + j]) * a[row + j];
        nb += static_cast<double>(b[row + j]) * b[row + j];
      }
      out.push_back(dot / (std::sqrt(na) * std::sqrt(nb) + 1e-30));
    }
    return out;
  }

  static roadnet::RoadNetwork* city_;
  static traj::TrafficModel* traffic_;
  static std::vector<traj::Trajectory>* corpus_;
  static roadnet::TransferProbability* transfer_;
  static core::StartConfig* config_;
  static core::StartModel* model_;
  static std::string* checkpoint_path_;
};

roadnet::RoadNetwork* ServeTest::city_ = nullptr;
traj::TrafficModel* ServeTest::traffic_ = nullptr;
std::vector<traj::Trajectory>* ServeTest::corpus_ = nullptr;
roadnet::TransferProbability* ServeTest::transfer_ = nullptr;
core::StartConfig* ServeTest::config_ = nullptr;
core::StartModel* ServeTest::model_ = nullptr;
std::string* ServeTest::checkpoint_path_ = nullptr;

TEST_F(ServeTest, FrozenEncoderMatchesEvalEncoderBitwise) {
  const auto frozen = LoadFrozen();
  core::StartEncoder eval_encoder(model_);
  const auto expected =
      eval_encoder.EmbedAll(*corpus_, eval::EncodeMode::kFull);
  const auto got = frozen->EmbedAll(*corpus_, eval::EncodeMode::kFull);
  ASSERT_EQ(expected.size(), got.size());
  EXPECT_EQ(std::memcmp(expected.data(), got.data(),
                        expected.size() * sizeof(float)),
            0);
}

TEST_F(ServeTest, FrozenEncoderHasNoGradState) {
  const auto frozen = LoadFrozen();
  // The frozen snapshot records no autograd state even when the calling
  // thread is in grad mode (the default here).
  const std::vector<const traj::Trajectory*> batch = {&(*corpus_)[0]};
  const tensor::Tensor reps =
      frozen->EncodeBatch(batch, eval::EncodeMode::kFull);
  EXPECT_FALSE(reps.requires_grad());
  EXPECT_FALSE(reps.has_grad());
}

TEST_F(ServeTest, EncodingIsInvariantToBatchComposition) {
  // The property EmbeddingService coalescing rests on: a trajectory's row is
  // bitwise identical whether encoded alone or padded into a mixed batch.
  const auto frozen = LoadFrozen();
  ASSERT_GE(corpus_->size(), 4u);
  std::vector<const traj::Trajectory*> mixed;
  for (size_t i = 0; i < 4; ++i) mixed.push_back(&(*corpus_)[i]);
  const tensor::Tensor batched =
      frozen->EncodeBatch(mixed, eval::EncodeMode::kFull);
  for (size_t i = 0; i < mixed.size(); ++i) {
    const tensor::Tensor alone =
        frozen->EncodeBatch({mixed[i]}, eval::EncodeMode::kFull);
    EXPECT_EQ(std::memcmp(batched.data() + i * frozen->dim(), alone.data(),
                          static_cast<size_t>(frozen->dim()) * sizeof(float)),
              0)
        << "row " << i << " differs between mixed batch and solo encode";
  }
}

TEST_F(ServeTest, ValidateScreensBadRequests) {
  const auto frozen = LoadFrozen();
  traj::Trajectory empty;
  EXPECT_FALSE(frozen->Validate(empty).ok());

  traj::Trajectory too_long = (*corpus_)[0];
  too_long.roads.assign(static_cast<size_t>(frozen->max_len() + 1), 0);
  too_long.timestamps.assign(too_long.roads.size(), 0);
  EXPECT_FALSE(frozen->Validate(too_long).ok());

  traj::Trajectory bad_road = (*corpus_)[0];
  bad_road.roads[0] = city_->num_segments() + 7;
  EXPECT_FALSE(frozen->Validate(bad_road).ok());

  EXPECT_TRUE(frozen->Validate((*corpus_)[0]).ok());
}

TEST_F(ServeTest, LoadRejectsMissingFile) {
  const auto result = serve::FrozenEncoder::Load(
      TempPath("no_such_checkpoint.sttn"), *config_, city_, transfer_);
  EXPECT_FALSE(result.ok());
}

TEST_F(ServeTest, LoadRejectsWrongArchitecture) {
  core::StartConfig wider = *config_;
  wider.d = 32;
  wider.gat_heads = {4, 1};
  const auto result =
      serve::FrozenEncoder::Load(*checkpoint_path_, wider, city_, transfer_);
  EXPECT_FALSE(result.ok());  // per-tensor shape mismatch
}

TEST_F(ServeTest, LoadSurvivesTruncatedAndCorruptFiles) {
  // Fuzz-ish sweep over the artifact boundary: every truncation prefix and a
  // deterministic set of byte corruptions must come back as a Status — never
  // a crash or a CHECK abort.
  const std::vector<uint8_t> good = ReadFileBytes(*checkpoint_path_);
  ASSERT_GT(good.size(), 64u);
  const std::string path = TempPath("serve_fuzz.sttn");

  // Truncations: dense near the header, sampled through the payload.
  std::vector<size_t> cuts;
  for (size_t i = 0; i < 64; ++i) cuts.push_back(i);
  for (size_t i = 64; i < good.size(); i += good.size() / 97 + 1) {
    cuts.push_back(i);
  }
  for (const size_t cut : cuts) {
    WriteFileBytes(path,
                   std::vector<uint8_t>(good.begin(), good.begin() + cut));
    const auto result =
        serve::FrozenEncoder::Load(path, *config_, city_, transfer_);
    EXPECT_FALSE(result.ok()) << "truncation at " << cut << " loaded";
  }

  // Byte corruptions across the whole file. Flips inside the header or any
  // record must be rejected (magic/version/size checks or CRC). Payload bit
  // flips are CRC-caught, so corruption never silently loads. Bytes 8..15
  // are exempt: they hold the advisory config hash, which by design loads
  // with a warning (shapes are checked per tensor).
  common::Rng rng(1234);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> bad = good;
    size_t at = static_cast<size_t>(
        rng.UniformInt(static_cast<int64_t>(bad.size())));
    if (at >= 8 && at < 16) at += 8;
    bad[at] ^= static_cast<uint8_t>(1 + rng.UniformInt(255));
    WriteFileBytes(path, bad);
    const auto result =
        serve::FrozenEncoder::Load(path, *config_, city_, transfer_);
    EXPECT_FALSE(result.ok()) << "byte flip at " << at << " loaded";
  }

  // Pure garbage of various sizes.
  for (const size_t n : {0u, 1u, 7u, 64u, 4096u}) {
    std::vector<uint8_t> garbage(n);
    for (auto& b : garbage) {
      b = static_cast<uint8_t>(rng.UniformInt(256));
    }
    WriteFileBytes(path, garbage);
    const auto result =
        serve::FrozenEncoder::Load(path, *config_, city_, transfer_);
    EXPECT_FALSE(result.ok()) << "garbage of " << n << " bytes loaded";
  }
}

TEST_F(ServeTest, ServiceMatchesDirectEncodes) {
  const auto frozen = LoadFrozen();
  serve::ServiceConfig sc;
  sc.num_workers = 2;
  sc.batch_deadline_us = 100;
  serve::EmbeddingService service(frozen.get(), sc);

  const size_t n = std::min<size_t>(corpus_->size(), 16);
  std::vector<std::future<serve::EmbeddingRow>> futures;
  for (size_t i = 0; i < n; ++i) {
    auto result = service.Encode((*corpus_)[i]);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    futures.push_back(std::move(result).value());
  }
  for (size_t i = 0; i < n; ++i) {
    const serve::EmbeddingRow row = futures[i].get();
    const tensor::Tensor direct =
        frozen->EncodeBatch({&(*corpus_)[i]}, eval::EncodeMode::kFull);
    ASSERT_EQ(row.dim(), frozen->dim());
    EXPECT_EQ(std::memcmp(row.data(), direct.data(),
                          static_cast<size_t>(row.dim()) * sizeof(float)),
              0)
        << "request " << i;
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.requests, static_cast<int64_t>(n));
  EXPECT_GE(stats.batches, 1);
  EXPECT_LE(stats.batches, stats.requests);
  EXPECT_GT(stats.padding_efficiency(), 0.0);
}

TEST_F(ServeTest, ServiceRejectsInvalidRequestsSynchronously) {
  const auto frozen = LoadFrozen();
  serve::EmbeddingService service(frozen.get());
  traj::Trajectory empty;
  EXPECT_FALSE(service.Encode(empty).ok());
  const auto sync = service.EncodeSync((*corpus_)[0]);
  ASSERT_TRUE(sync.ok());
  EXPECT_EQ(static_cast<int64_t>(sync.value().size()), frozen->dim());
}

TEST_F(ServeTest, EmbeddingRowsShareBatchStorageZeroCopy) {
  const auto frozen = LoadFrozen();
  serve::ServiceConfig sc;
  sc.batch_deadline_us = 20000;  // generous window: coalesce all four
  sc.bucket_width = 1 << 20;     // single bucket: one batch
  serve::EmbeddingService service(frozen.get(), sc);
  std::vector<std::future<serve::EmbeddingRow>> futures;
  for (size_t i = 0; i < 4; ++i) {
    auto result = service.Encode((*corpus_)[i]);
    ASSERT_TRUE(result.ok());
    futures.push_back(std::move(result).value());
  }
  std::vector<serve::EmbeddingRow> rows;
  for (auto& f : futures) rows.push_back(f.get());
  if (service.stats().batches == 1) {
    // All rows alias one dense [4, d] buffer: consecutive row pointers.
    for (size_t i = 1; i < rows.size(); ++i) {
      EXPECT_EQ(rows[i].data(), rows[0].data() + i * rows[0].dim());
    }
  }
}

TEST_F(ServeTest, LinearProbeLeavesEncoderFrozen) {
  // The finetune_encoder=false task path embeds the split once through the
  // no-grad inference surface and trains only the head: encoder parameters
  // must come out bitwise untouched and the probe must still fit.
  core::StartEncoder encoder(model_);
  std::vector<std::vector<float>> before;
  for (const auto& p : model_->Parameters()) {
    const tensor::Tensor dense = p.is_contiguous() ? p : p.Detach();
    before.emplace_back(dense.data(), dense.data() + dense.numel());
  }
  const size_t split = corpus_->size() / 2;
  const std::vector<traj::Trajectory> train(corpus_->begin(),
                                            corpus_->begin() + split);
  const std::vector<traj::Trajectory> test(corpus_->begin() + split,
                                           corpus_->end());
  eval::TaskConfig task;
  task.epochs = 2;
  task.batch_size = 8;
  task.finetune_encoder = false;
  const auto result = eval::FinetuneEta(&encoder, train, test, task);
  EXPECT_TRUE(std::isfinite(result.metrics.mae));
  EXPECT_EQ(result.pred_minutes.size(), test.size());
  const auto params = model_->Parameters();
  ASSERT_EQ(params.size(), before.size());
  for (size_t i = 0; i < params.size(); ++i) {
    const tensor::Tensor dense =
        params[i].is_contiguous() ? params[i] : params[i].Detach();
    EXPECT_EQ(std::memcmp(dense.data(), before[i].data(),
                          before[i].size() * sizeof(float)),
              0)
        << "parameter " << i << " mutated by the linear probe";
  }
}

// ---------------------------------------------------------------------------
// Int8 quantized serving: error budget, determinism, snapshot artifacts.
// ---------------------------------------------------------------------------

TEST_F(ServeTest, QuantizedEncoderStaysWithinCosineBudget) {
  const auto f32 = LoadFrozen();
  const auto q = LoadFrozenInt8();
  EXPECT_EQ(q->precision(), serve::Precision::kInt8);
  // Every stage-2 projection Linear quantizes: wq/wk/wv/wo + fc1/fc2 per
  // encoder layer, and nothing else (GAT, heads, norms stay f32).
  EXPECT_EQ(q->quantized_layer_count(), 6 * config_->encoder_layers);
  EXPECT_EQ(f32->quantized_layer_count(), 0);

  const auto ref = f32->EmbedAll(*corpus_, eval::EncodeMode::kFull);
  const auto got = q->EmbedAll(*corpus_, eval::EncodeMode::kFull);
  const auto cosines = RowCosines(ref, got, f32->dim());
  ASSERT_EQ(cosines.size(), corpus_->size());
  for (size_t i = 0; i < cosines.size(); ++i) {
    // The serving error budget (documented in ARCHITECTURE.md): per-
    // embedding cosine vs the f32 reference stays >= 0.999.
    EXPECT_GE(cosines[i], 0.999) << "trajectory " << i;
  }
}

TEST_F(ServeTest, QuantizedKnnPrecisionAgainstExactF32Index) {
  const auto f32 = LoadFrozen();
  const auto q = LoadFrozenInt8();
  const auto ref = f32->EmbedAll(*corpus_, eval::EncodeMode::kFull);
  const auto got = q->EmbedAll(*corpus_, eval::EncodeMode::kFull);
  const int64_t n = static_cast<int64_t>(corpus_->size());
  ASSERT_GE(n, 10);
  serve::EmbeddingIndex index(f32->dim());
  std::vector<int64_t> ids(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) ids[static_cast<size_t>(i)] = i;
  ASSERT_TRUE(index.AddBatch(ids, ref).ok());
  const auto precision = serve::KnnPrecision(index, ref, got, n, /*k=*/10);
  ASSERT_TRUE(precision.ok()) << precision.status().ToString();
  // Downstream error budget: quantized queries recover >= 90% of the f32
  // exact top-10.
  EXPECT_GE(*precision, 0.9);
}

TEST_F(ServeTest, QuantizationIsBitwiseDeterministic) {
  // Two independent quantizations of the same checkpoint embed bitwise
  // identically, and two snapshot saves produce byte-identical artifacts.
  const auto q1 = LoadFrozenInt8();
  const auto q2 = LoadFrozenInt8();
  const auto e1 = q1->EmbedAll(*corpus_, eval::EncodeMode::kFull);
  const auto e2 = q2->EmbedAll(*corpus_, eval::EncodeMode::kFull);
  ASSERT_EQ(e1.size(), e2.size());
  EXPECT_EQ(std::memcmp(e1.data(), e2.data(), e1.size() * sizeof(float)), 0);

  const std::string snap1 = TempPath("snap_det1.sttn");
  const std::string snap2 = TempPath("snap_det2.sttn");
  ASSERT_TRUE(q1->SaveSnapshot(snap1).ok());
  ASSERT_TRUE(q2->SaveSnapshot(snap2).ok());
  EXPECT_EQ(ReadFileBytes(snap1), ReadFileBytes(snap2));
}

TEST_F(ServeTest, SnapshotRoundTripServesWithinBudget) {
  const auto f32 = LoadFrozen();
  const auto q = LoadFrozenInt8();
  const std::string snap = TempPath("snap_roundtrip.sttn");
  ASSERT_TRUE(q->SaveSnapshot(snap).ok());
  // The serving artifact is substantially smaller than the training
  // checkpoint (int8 weights, f16 table, no GAT / MLM head).
  EXPECT_LT(ReadFileBytes(snap).size(),
            ReadFileBytes(*checkpoint_path_).size() / 2);

  auto loaded =
      serve::FrozenEncoder::LoadSnapshot(snap, *config_, city_, transfer_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->precision(), serve::Precision::kInt8);
  EXPECT_EQ((*loaded)->quantized_layer_count(), q->quantized_layer_count());

  // quantize -> save -> load -> embed is bitwise reproducible across runs.
  auto loaded2 =
      serve::FrozenEncoder::LoadSnapshot(snap, *config_, city_, transfer_);
  ASSERT_TRUE(loaded2.ok());
  const auto a = (*loaded)->EmbedAll(*corpus_, eval::EncodeMode::kFull);
  const auto b = (*loaded2)->EmbedAll(*corpus_, eval::EncodeMode::kFull);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0);

  // The f16 ext_table adds error on top of int8, but the end-to-end budget
  // still holds against the f32 reference.
  const auto ref = f32->EmbedAll(*corpus_, eval::EncodeMode::kFull);
  for (const double c : RowCosines(ref, a, f32->dim())) {
    EXPECT_GE(c, 0.999);
  }
}

TEST_F(ServeTest, LoadSnapshotRejectsPlainCheckpointAndWrongArch) {
  // A plain model checkpoint is not a snapshot: clean error, no crash.
  const auto as_snapshot = serve::FrozenEncoder::LoadSnapshot(
      *checkpoint_path_, *config_, city_, transfer_);
  EXPECT_FALSE(as_snapshot.ok());

  const auto q = LoadFrozenInt8();
  const std::string snap = TempPath("snap_arch.sttn");
  ASSERT_TRUE(q->SaveSnapshot(snap).ok());
  core::StartConfig wider = *config_;
  wider.d = 32;
  const auto wrong =
      serve::FrozenEncoder::LoadSnapshot(snap, wider, city_, transfer_);
  EXPECT_FALSE(wrong.ok());  // config-hash mismatch
  // And the snapshot cannot be loaded through the checkpoint path either.
  const auto as_checkpoint =
      serve::FrozenEncoder::Load(snap, *config_, city_, transfer_);
  EXPECT_FALSE(as_checkpoint.ok());
}

TEST_F(ServeTest, LoadSnapshotSurvivesTruncatedAndCorruptFiles) {
  // The load-path fuzz sweep of LoadSurvivesTruncatedAndCorruptFiles,
  // repeated against the new int8/f16 record types. No exemption window
  // here: the snapshot's meta tag is checked strictly, so every single-byte
  // flip must be rejected (by magic/version/shape checks, the config hash,
  // or a record CRC) — never crash, never load silently.
  const auto q = LoadFrozenInt8();
  const std::string good_path = TempPath("snap_fuzz_good.sttn");
  ASSERT_TRUE(q->SaveSnapshot(good_path).ok());
  const std::vector<uint8_t> good = ReadFileBytes(good_path);
  ASSERT_GT(good.size(), 64u);
  const std::string path = TempPath("snap_fuzz.sttn");

  std::vector<size_t> cuts;
  for (size_t i = 0; i < 64; ++i) cuts.push_back(i);
  for (size_t i = 64; i < good.size(); i += good.size() / 97 + 1) {
    cuts.push_back(i);
  }
  for (const size_t cut : cuts) {
    WriteFileBytes(path,
                   std::vector<uint8_t>(good.begin(), good.begin() + cut));
    const auto result =
        serve::FrozenEncoder::LoadSnapshot(path, *config_, city_, transfer_);
    EXPECT_FALSE(result.ok()) << "truncation at " << cut << " loaded";
  }

  common::Rng rng(4321);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> bad = good;
    const size_t at = static_cast<size_t>(
        rng.UniformInt(static_cast<int64_t>(bad.size())));
    bad[at] ^= static_cast<uint8_t>(1 + rng.UniformInt(255));
    WriteFileBytes(path, bad);
    const auto result =
        serve::FrozenEncoder::LoadSnapshot(path, *config_, city_, transfer_);
    EXPECT_FALSE(result.ok()) << "byte flip at " << at << " loaded";
  }
}

TEST_F(ServeTest, LoadSnapshotRejectsCraftedQuantizedRecords) {
  // Structurally valid containers (correct CRCs) whose quantized records are
  // semantically poisoned: NaN/inf scales, truncated scale arrays, shape
  // mismatches. The reader or LoadSnapshot must reject each with a clean
  // Status.
  const auto q = LoadFrozenInt8();
  const std::string good_path = TempPath("snap_craft_good.sttn");
  ASSERT_TRUE(q->SaveSnapshot(good_path).ok());
  auto loaded = tensor::LoadBundle(good_path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_FALSE(loaded->records.qtensors.empty());
  const std::string first_q = loaded->records.qtensors.begin()->first;
  const std::string path = TempPath("snap_craft.sttn");

  const auto expect_rejected = [&](const char* what,
                                   const tensor::LoadedBundle& bundle) {
    SCOPED_TRACE(what);
    ASSERT_TRUE(
        tensor::SaveBundle(path, bundle.meta_tag, bundle.records).ok());
    const auto result =
        serve::FrozenEncoder::LoadSnapshot(path, *config_, city_, transfer_);
    EXPECT_FALSE(result.ok()) << what << " loaded";
  };

  {
    tensor::LoadedBundle bad = *loaded;
    bad.records.qtensors[first_q].scales[0] =
        std::numeric_limits<float>::quiet_NaN();
    expect_rejected("NaN scale", bad);
  }
  {
    tensor::LoadedBundle bad = *loaded;
    bad.records.qtensors[first_q].scales.back() =
        std::numeric_limits<float>::infinity();
    expect_rejected("inf scale", bad);
  }
  {
    tensor::LoadedBundle bad = *loaded;
    bad.records.qtensors[first_q].scales[0] = -0.25f;
    expect_rejected("negative scale", bad);
  }
  {
    // Shape mismatch: a tiny 1x1 record under a real layer path.
    tensor::LoadedBundle bad = *loaded;
    tensor::QuantizedTensor tiny;
    tiny.rows = 1;
    tiny.cols = 1;
    tiny.scales = {0.5f};
    tiny.data = {7};
    bad.records.qtensors[first_q] = tiny;
    expect_rejected("shape mismatch", bad);
  }
  {
    // Truncated scale array: drop the last scale and the last row of codes
    // so the record stays self-consistent (rows-1) but no longer matches
    // the layer.
    tensor::LoadedBundle bad = *loaded;
    tensor::QuantizedTensor& t = bad.records.qtensors[first_q];
    t.rows -= 1;
    t.scales.pop_back();
    t.data.resize(static_cast<size_t>(t.rows * t.cols));
    expect_rejected("truncated scale array", bad);
  }
  {
    // A quantized record under a path that is not a Linear.
    tensor::LoadedBundle bad = *loaded;
    bad.records.qtensors["minute_embedding"] =
        loaded->records.qtensors.at(first_q);
    expect_rejected("non-Linear target", bad);
  }
  {
    // Missing ext_table.
    tensor::LoadedBundle bad = *loaded;
    bad.records.halfs.erase("ext_table");
    expect_rejected("missing ext_table", bad);
  }
}

// ---------------------------------------------------------------------------
// EmbeddingIndex
// ---------------------------------------------------------------------------

TEST(EmbeddingIndexTest, QueryRanksByCosineSimilarity) {
  serve::EmbeddingIndex index(2);
  ASSERT_TRUE(index.Add(10, {1.0f, 0.0f}).ok());
  ASSERT_TRUE(index.Add(20, {0.0f, 1.0f}).ok());
  ASSERT_TRUE(index.Add(30, {1.0f, 1.0f}).ok());
  EXPECT_EQ(index.size(), 3);

  const auto result = index.Query({2.0f, 0.1f}, 2);  // closest to +x
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ((*result)[0].id, 10);
  EXPECT_EQ((*result)[1].id, 30);
  EXPECT_GT((*result)[0].score, (*result)[1].score);
  // Normalization: magnitude does not matter.
  const auto scaled = index.Query({200.0f, 10.0f}, 2);
  ASSERT_TRUE(scaled.ok());
  EXPECT_EQ((*scaled)[0].id, 10);
  EXPECT_FLOAT_EQ((*scaled)[0].score, (*result)[0].score);
}

TEST(EmbeddingIndexTest, ExactTiesBreakTowardEarlierInsertion) {
  serve::EmbeddingIndex index(2);
  // Two identical embeddings under different ids: a perfect tie.
  ASSERT_TRUE(index.Add(7, {3.0f, 4.0f}).ok());
  ASSERT_TRUE(index.Add(5, {3.0f, 4.0f}).ok());
  ASSERT_TRUE(index.Add(1, {-4.0f, 3.0f}).ok());
  const auto result = index.Query({3.0f, 4.0f}, 3);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 3u);
  EXPECT_EQ((*result)[0].id, 7);  // inserted before id 5
  EXPECT_EQ((*result)[1].id, 5);
  EXPECT_EQ((*result)[2].id, 1);
}

TEST(EmbeddingIndexTest, AddRemoveContainsLifecycle) {
  serve::EmbeddingIndex index(3);
  ASSERT_TRUE(index.Add(1, {1, 0, 0}).ok());
  ASSERT_TRUE(index.Add(2, {0, 1, 0}).ok());
  ASSERT_TRUE(index.Add(3, {0, 0, 1}).ok());
  EXPECT_TRUE(index.Add(2, {1, 1, 1}).code() ==
              common::StatusCode::kAlreadyExists);
  EXPECT_TRUE(index.Contains(2));
  ASSERT_TRUE(index.Remove(2).ok());
  EXPECT_FALSE(index.Contains(2));
  EXPECT_EQ(index.size(), 2);
  EXPECT_TRUE(index.Remove(2).code() == common::StatusCode::kNotFound);
  // Removed entries stop matching; survivors still do (swap-with-last).
  const auto result = index.Query({0, 0, 1}, 3);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ((*result)[0].id, 3);
}

TEST(EmbeddingIndexTest, RejectsMalformedInput) {
  serve::EmbeddingIndex index(4);
  EXPECT_FALSE(index.Add(1, {1.0f, 2.0f}).ok());        // wrong dim
  EXPECT_FALSE(index.Add(1, {0, 0, 0, 0}).ok());        // zero norm
  ASSERT_TRUE(index.Add(1, {1, 2, 3, 4}).ok());
  EXPECT_FALSE(index.Query({1.0f, 2.0f}, 1).ok());      // wrong dim
  EXPECT_FALSE(index.Query({0, 0, 0, 0}, 1).ok());      // zero norm
  EXPECT_FALSE(index.Query({1, 2, 3, 4}, 0).ok());      // bad k
  const auto result = index.Query({1, 2, 3, 4}, 10);    // k > size: clamped
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);
}

TEST(EmbeddingIndexTest, AddBatchIsAtomic) {
  serve::EmbeddingIndex index(2);
  ASSERT_TRUE(index.Add(5, {1, 0}).ok());
  // Second row collides with id 5: nothing from the batch may land.
  EXPECT_FALSE(index.AddBatch({9, 5}, {1, 0, 0, 1}).ok());
  EXPECT_FALSE(index.Contains(9));
  EXPECT_EQ(index.size(), 1);
  // Zero row mid-batch: same story.
  EXPECT_FALSE(index.AddBatch({11, 12}, {1, 0, 0, 0}).ok());
  EXPECT_FALSE(index.Contains(11));
  // Duplicate ids inside one batch would desynchronise the slot/id maps.
  EXPECT_FALSE(index.AddBatch({13, 13}, {1, 0, 0, 1}).ok());
  EXPECT_FALSE(index.Contains(13));
  EXPECT_EQ(index.size(), 1);
}

TEST(EmbeddingIndexTest, EvaluateMostSimilarSelfRetrieval) {
  common::Rng rng(9);
  const int64_t n = 20, d = 8;
  serve::EmbeddingIndex index(d);
  std::vector<float> rows(static_cast<size_t>(n * d));
  for (auto& v : rows) v = static_cast<float>(rng.Normal());
  std::vector<int64_t> ids;
  for (int64_t i = 0; i < n; ++i) ids.push_back(100 + i);
  ASSERT_TRUE(index.AddBatch(ids, rows).ok());
  // Querying with the database rows themselves: every query's ground truth
  // is its own id, so MR = 1 and HR@1 = 1.
  const auto metrics = index.EvaluateMostSimilar(rows, n, ids);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_DOUBLE_EQ(metrics->mean_rank, 1.0);
  EXPECT_DOUBLE_EQ(metrics->hr_at_1, 1.0);
  const auto missing = index.EvaluateMostSimilar(rows, n, {});
  EXPECT_FALSE(missing.ok());
}

}  // namespace
}  // namespace start
