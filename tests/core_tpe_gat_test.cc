#include "core/tpe_gat.h"

#include <cmath>
#include <gtest/gtest.h>

#include "roadnet/synthetic_city.h"
#include "tensor/ops.h"
#include "testing.h"

namespace start::core {
namespace {

using tensor::Shape;
using tensor::Tensor;

roadnet::RoadNetwork SmallCity() {
  return roadnet::BuildSyntheticCity({.grid_width = 4, .grid_height = 4});
}

roadnet::TransferProbability UniformTransfer(
    const roadnet::RoadNetwork& net) {
  return testutil::EdgePairTransfer(net);
}

TEST(TpeGatTest, OutputShapeMatches) {
  const auto net = SmallCity();
  const auto tp = UniformTransfer(net);
  common::Rng rng(1);
  TpeGat gat(&net, &tp, roadnet::RoadNetwork::FeatureDim(), 16, {4, 4, 1},
             /*use_transfer_prob=*/true, &rng);
  const Tensor features = Tensor::FromVector(
      Shape({net.num_segments(), roadnet::RoadNetwork::FeatureDim()}),
      net.BuildFeatureMatrix());
  const Tensor reps = gat.Forward(features);
  EXPECT_EQ(reps.shape(), Shape({net.num_segments(), 16}));
  for (int64_t i = 0; i < reps.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(reps.data()[i]));
  }
}

TEST(TpeGatTest, SelfLoopsAddedToEdgeList) {
  const auto net = SmallCity();
  common::Rng rng(2);
  TpeGat gat(&net, nullptr, roadnet::RoadNetwork::FeatureDim(), 8, {2},
             /*use_transfer_prob=*/false, &rng);
  EXPECT_EQ(gat.num_edges(), net.num_edges() + net.num_segments());
}

TEST(TpeGatTest, SingleLayerMatchesDenseReference) {
  // A hand-built 3-node graph; compare the sparse segment-op implementation
  // with an explicit dense softmax computation.
  roadnet::RoadNetwork net;
  for (int i = 0; i < 3; ++i) {
    roadnet::RoadSegment s;
    s.length_m = 100;
    s.maxspeed_mps = 10;
    net.AddSegment(s);
  }
  net.AddEdge(0, 1);
  net.AddEdge(1, 2);
  net.AddEdge(2, 0);
  net.AddEdge(0, 2);
  net.Finalize();
  const auto tp = UniformTransfer(net);

  common::Rng rng(3);
  const int64_t in_dim = roadnet::RoadNetwork::FeatureDim();
  std::vector<int64_t> edge_src, edge_dst;
  std::vector<float> edge_p;
  for (size_t e = 0; e < net.edge_sources().size(); ++e) {
    edge_src.push_back(net.edge_sources()[e]);
    edge_dst.push_back(net.edge_targets()[e]);
    edge_p.push_back(static_cast<float>(
        tp.Prob(net.edge_sources()[e], net.edge_targets()[e])));
  }
  for (int64_t v = 0; v < 3; ++v) {
    edge_src.push_back(v);
    edge_dst.push_back(v);
    edge_p.push_back(1.0f);
  }
  TpeGatLayer layer(in_dim, 4, 1, true, &edge_src, &edge_dst, &edge_p, 3,
                    &rng);
  const Tensor h = Tensor::FromVector(Shape({3, in_dim}),
                                      net.BuildFeatureMatrix());
  const Tensor out = layer.Forward(h);

  // Dense reference using the layer's parameters.
  const auto params = layer.NamedParameters();
  auto find = [&](const std::string& name) {
    for (const auto& [n, t] : params) {
      if (n == name) return t;
    }
    ADD_FAILURE() << "missing param " << name;
    return Tensor();
  };
  const Tensor w1 = find("head0.w1.weight");
  const Tensor w2 = find("head0.w2.weight");
  const Tensor w5 = find("head0.w5.weight");
  const Tensor w3 = find("head0.w3");
  const Tensor w4 = find("head0.w4");
  const Tensor u = tensor::MatMul(tensor::MatMul(h, w1), w4);  // [3,1]
  const Tensor v = tensor::MatMul(tensor::MatMul(h, w2), w4);
  const Tensor wp = tensor::MatMul(w3, w4);  // [1,1]
  const Tensor z = tensor::MatMul(h, w5);    // [3,4]
  for (int64_t node = 0; node < 3; ++node) {
    // Gather incoming edges of `node`.
    std::vector<double> scores;
    std::vector<int64_t> sources;
    for (size_t e = 0; e < edge_src.size(); ++e) {
      if (edge_dst[e] != node) continue;
      double s = u.at({node, 0}) + v.at({edge_src[e], 0}) +
                 edge_p[e] * wp.at({0, 0});
      s = s > 0 ? s : 0.2 * s;  // LeakyReLU(0.2)
      scores.push_back(s);
      sources.push_back(edge_src[e]);
    }
    double mx = scores[0];
    for (const double s : scores) mx = std::max(mx, s);
    double denom = 0.0;
    for (const double s : scores) denom += std::exp(s - mx);
    for (int64_t j = 0; j < 4; ++j) {
      double acc = 0.0;
      for (size_t k = 0; k < sources.size(); ++k) {
        const double alpha = std::exp(scores[k] - mx) / denom;
        acc += alpha * z.at({sources[k], j});
      }
      const double elu = acc > 0 ? acc : std::exp(acc) - 1.0;
      EXPECT_NEAR(out.at({node, j}), elu, 1e-4);
    }
  }
}

TEST(TpeGatTest, TransferProbabilityChangesOutput) {
  const auto net = SmallCity();
  const auto tp = UniformTransfer(net);
  common::Rng rng_a(7);
  common::Rng rng_b(7);
  TpeGat with(&net, &tp, roadnet::RoadNetwork::FeatureDim(), 8, {2},
              /*use_transfer_prob=*/true, &rng_a);
  TpeGat without(&net, &tp, roadnet::RoadNetwork::FeatureDim(), 8, {2},
                 /*use_transfer_prob=*/false, &rng_b);
  const Tensor features = Tensor::FromVector(
      Shape({net.num_segments(), roadnet::RoadNetwork::FeatureDim()}),
      net.BuildFeatureMatrix());
  const Tensor a = with.Forward(features);
  const Tensor b = without.Forward(features);
  double diff = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    diff += std::fabs(a.data()[i] - b.data()[i]);
  }
  EXPECT_GT(diff, 1e-4);
}

TEST(TpeGatTest, ParametersIndependentOfGraphSize) {
  // The transferability property used by Table III.
  const auto small = SmallCity();
  const auto big =
      roadnet::BuildSyntheticCity({.grid_width = 8, .grid_height = 8});
  common::Rng rng_a(9), rng_b(9);
  TpeGat gat_small(&small, nullptr, roadnet::RoadNetwork::FeatureDim(), 16,
                   {4, 1}, false, &rng_a);
  TpeGat gat_big(&big, nullptr, roadnet::RoadNetwork::FeatureDim(), 16,
                 {4, 1}, false, &rng_b);
  EXPECT_EQ(gat_small.ParameterCount(), gat_big.ParameterCount());
}

TEST(TpeGatTest, GradientsReachAllParameters) {
  const auto net = SmallCity();
  const auto tp = UniformTransfer(net);
  common::Rng rng(11);
  TpeGat gat(&net, &tp, roadnet::RoadNetwork::FeatureDim(), 8, {2, 1}, true,
             &rng);
  const Tensor features = Tensor::FromVector(
      Shape({net.num_segments(), roadnet::RoadNetwork::FeatureDim()}),
      net.BuildFeatureMatrix());
  gat.ZeroGrad();
  Tensor loss = tensor::Mean(gat.Forward(features));
  loss.Backward();
  for (const auto& [name, p] : gat.NamedParameters()) {
    double g = 0.0;
    for (int64_t i = 0; i < p.numel(); ++i) g += std::fabs(p.grad()[i]);
    EXPECT_GT(g, 0.0) << "no gradient in " << name;
  }
}

}  // namespace
}  // namespace start::core
