// DriftMonitor unit tests: windowed statistics on synthetic embedding
// streams — a stationary stream never trips the thresholds, a mean-shifted
// stream trips the cosine statistic at a pinned window index, a
// magnitude-shifted stream trips the norm-histogram statistic even though
// the mean direction is unchanged, the whole history is bitwise
// reproducible across runs, and the committed golden fixture pins the
// numbers across refactors (regenerate with START_UPDATE_GOLDEN=1).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "serve/drift_monitor.h"
#include "testing.h"

namespace start {
namespace {

using serve::DriftConfig;
using serve::DriftMonitor;
using serve::DriftWindowStats;

constexpr int64_t kDim = 8;

/// One embedding drawn around `center` with component noise `sigma`, scaled
/// by `scale`. The generator is the deterministic common::Rng stream, so a
/// fixed seed pins the whole stream.
std::vector<float> Draw(common::Rng* rng, const std::vector<float>& center,
                        double sigma, double scale) {
  std::vector<float> e(center.size());
  for (size_t i = 0; i < e.size(); ++i) {
    e[i] = static_cast<float>(
        scale * (static_cast<double>(center[i]) + rng->Normal(0.0, sigma)));
  }
  return e;
}

std::vector<float> BaseCenter() {
  std::vector<float> c(static_cast<size_t>(kDim));
  for (int64_t i = 0; i < kDim; ++i) {
    c[static_cast<size_t>(i)] = static_cast<float>(0.3 + 0.1 * static_cast<double>(i % 3));
  }
  return c;
}

/// An orthogonal-ish shifted center: flips sign of half the components.
std::vector<float> ShiftedCenter() {
  std::vector<float> c = BaseCenter();
  for (size_t i = 0; i < c.size(); i += 2) c[i] = -c[i];
  return c;
}

DriftConfig SmallConfig() {
  DriftConfig config;
  config.window_size = 64;
  config.reference_windows = 2;
  return config;
}

/// Feeds `windows` full windows drawn around `center` into the monitor.
void Feed(DriftMonitor* monitor, common::Rng* rng,
          const std::vector<float>& center, int64_t windows,
          double scale = 1.0) {
  const int64_t n = windows * monitor->config().window_size;
  for (int64_t i = 0; i < n; ++i) {
    const std::vector<float> e = Draw(rng, center, 0.05, scale);
    monitor->Observe(e.data(), kDim);
  }
}

TEST(DriftMonitorTest, StationaryStreamDoesNotDrift) {
  DriftMonitor monitor(kDim, SmallConfig());
  int64_t callbacks = 0;
  monitor.SetOnDrift([&](const DriftWindowStats&) { ++callbacks; });
  common::Rng rng(101);
  Feed(&monitor, &rng, BaseCenter(), 8);
  EXPECT_EQ(monitor.windows_completed(), 8);
  EXPECT_EQ(monitor.drift_events(), 0);
  EXPECT_EQ(callbacks, 0);
  const auto history = monitor.History();
  ASSERT_EQ(history.size(), 8u);
  for (size_t w = 0; w < history.size(); ++w) {
    EXPECT_EQ(history[w].window, static_cast<int64_t>(w));
    EXPECT_EQ(history[w].is_reference, w < 2);
    EXPECT_FALSE(history[w].drifted);
    if (w >= 2) {
      EXPECT_LT(history[w].cosine_shift, 0.01);
      EXPECT_LT(history[w].norm_shift, 0.25);
    }
  }
  EXPECT_EQ(monitor.ReferenceMean().size(), static_cast<size_t>(kDim));
}

TEST(DriftMonitorTest, MeanShiftCrossesCosineThresholdAtPinnedWindow) {
  DriftMonitor monitor(kDim, SmallConfig());
  std::vector<int64_t> drifted_windows;
  monitor.SetOnDrift([&](const DriftWindowStats& s) {
    drifted_windows.push_back(s.window);
  });
  common::Rng rng(202);
  Feed(&monitor, &rng, BaseCenter(), 4);     // windows 0-1 reference, 2-3 calm
  Feed(&monitor, &rng, ShiftedCenter(), 3);  // windows 4-6 shifted
  EXPECT_EQ(monitor.windows_completed(), 7);
  // The shift lands exactly at a window boundary, so window 4 is the first
  // (and then every) drifted window.
  ASSERT_EQ(drifted_windows, (std::vector<int64_t>{4, 5, 6}));
  EXPECT_EQ(monitor.drift_events(), 3);
  const auto history = monitor.History();
  EXPECT_LT(history[3].cosine_shift, 0.01);
  EXPECT_GT(history[4].cosine_shift, monitor.config().cosine_shift_threshold);
}

TEST(DriftMonitorTest, MagnitudeShiftCrossesNormHistogramThreshold) {
  // Doubling every norm leaves the mean DIRECTION untouched — the cosine
  // statistic is blind to it; the norm histogram must catch it.
  DriftMonitor monitor(kDim, SmallConfig());
  common::Rng rng(303);
  Feed(&monitor, &rng, BaseCenter(), 4);
  Feed(&monitor, &rng, BaseCenter(), 2, /*scale=*/2.0);
  const auto history = monitor.History();
  ASSERT_EQ(history.size(), 6u);
  EXPECT_LT(history[4].cosine_shift, 0.01);
  EXPECT_GT(history[4].norm_shift, monitor.config().norm_shift_threshold);
  EXPECT_TRUE(history[4].drifted);
  EXPECT_TRUE(history[5].drifted);
  EXPECT_EQ(monitor.drift_events(), 2);
}

TEST(DriftMonitorTest, HistoryIsBitwiseReproducible) {
  // Same stream, two monitors: every double in the history must be
  // bit-identical (the monitor accumulates sequentially in double, no
  // reduction-order freedom) — the property the pipeline's deterministic
  // replay contract builds on.
  const auto run = [] {
    DriftMonitor monitor(kDim, SmallConfig());
    common::Rng rng(404);
    Feed(&monitor, &rng, BaseCenter(), 4);
    Feed(&monitor, &rng, ShiftedCenter(), 2);
    return monitor.History();
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (size_t w = 0; w < a.size(); ++w) {
    EXPECT_EQ(std::memcmp(&a[w].mean_norm, &b[w].mean_norm, sizeof(double)), 0);
    EXPECT_EQ(
        std::memcmp(&a[w].cosine_shift, &b[w].cosine_shift, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&a[w].norm_shift, &b[w].norm_shift, sizeof(double)),
              0);
    EXPECT_EQ(a[w].drifted, b[w].drifted);
  }
}

TEST(DriftMonitorTest, ExplicitHistogramRangeIsHonored) {
  DriftConfig config = SmallConfig();
  config.norm_hist_max = 10.0;  // all norms land in the lower bins
  DriftMonitor monitor(kDim, config);
  common::Rng rng(505);
  Feed(&monitor, &rng, BaseCenter(), 3);
  EXPECT_EQ(monitor.drift_events(), 0);
  // Norms ~1 against a [0, 10) range: scaling by 3 still stays in range and
  // must shift mass across bins.
  Feed(&monitor, &rng, BaseCenter(), 1, /*scale=*/3.0);
  const auto history = monitor.History();
  EXPECT_GT(history[3].norm_shift, config.norm_shift_threshold);
}

/// Formats one window at reduced precision — stable across compilers (full
/// bitwise stability is only guaranteed within one binary; FP contraction
/// may differ across toolchains).
std::string FormatWindow(const DriftWindowStats& s) {
  char line[160];
  std::snprintf(line, sizeof(line), "%lld %lld %.6g %.6g %.6g %d %d",
                static_cast<long long>(s.window),
                static_cast<long long>(s.count), s.mean_norm, s.cosine_shift,
                s.norm_shift, s.is_reference ? 1 : 0, s.drifted ? 1 : 0);
  return line;
}

TEST(DriftMonitorTest, GoldenFixtureMatches) {
  // Pins the drift numbers across refactors: the committed fixture was
  // produced by this exact test body. Regenerate deliberately with
  //   START_UPDATE_GOLDEN=1 ./drift_monitor_test
  // and commit the diff.
  DriftMonitor monitor(kDim, SmallConfig());
  common::Rng rng(606);
  Feed(&monitor, &rng, BaseCenter(), 4);
  Feed(&monitor, &rng, ShiftedCenter(), 2);
  std::string got;
  for (const DriftWindowStats& s : monitor.History()) {
    got += FormatWindow(s);
    got += '\n';
  }
  const std::string path = testutil::FixtureDir() + "/drift_golden.txt";
  if (std::getenv("START_UPDATE_GOLDEN") != nullptr) {
    testutil::WriteFileBytes(path,
                             std::vector<uint8_t>(got.begin(), got.end()));
    GTEST_SKIP() << "regenerated " << path;
  }
  const std::vector<uint8_t> bytes = testutil::ReadFileBytes(path);
  const std::string want(bytes.begin(), bytes.end());
  EXPECT_EQ(got, want) << "drift statistics changed — if intentional, "
                          "regenerate via START_UPDATE_GOLDEN=1";
}

TEST(DriftMonitorTest, ReentrantObserveFromCallbackDefersInsteadOfRecursing) {
  // The adaptation controller observes matched trajectories from inside the
  // drift callback path, so a callback calling back into Observe() must
  // neither deadlock nor recurse into a nested callback nor mutate window
  // state mid-callback. Deferred embeddings replay after the callback
  // returns and may fire follow-up callbacks — sequentially, never nested.
  DriftConfig config;
  config.window_size = 4;
  config.reference_windows = 1;
  config.cosine_shift_threshold = 0.01;
  DriftMonitor monitor(kDim, config);
  common::Rng rng(303);
  const std::vector<float> base = BaseCenter();
  const std::vector<float> shifted = ShiftedCenter();

  int64_t fires = 0, depth = 0, max_depth = 0;
  monitor.SetOnDrift([&](const DriftWindowStats& stats) {
    ++fires;
    ++depth;
    max_depth = std::max(max_depth, depth);
    // Reads from inside the callback must not deadlock, and must see the
    // state as of the fired window — not the deferred observes below.
    EXPECT_EQ(monitor.windows_completed(), stats.window + 1);
    const int64_t observed_before = monitor.observed();
    if (fires < 3) {  // feed one full drifted window back in, twice
      for (int64_t i = 0; i < config.window_size; ++i) {
        const std::vector<float> e = Draw(&rng, shifted, 0.05, 1.0);
        monitor.Observe(e.data(), kDim);
      }
    }
    EXPECT_EQ(monitor.observed(), observed_before) << "deferral leaked";
    --depth;
  });

  Feed(&monitor, &rng, base, 1);     // reference window
  Feed(&monitor, &rng, shifted, 1);  // drifted window -> callback cascade
  // Cascade: fire 1 defers a window -> replay completes it -> fire 2 defers
  // another -> fire 3 defers nothing. 4 completed windows, 3 drifted.
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(max_depth, 1) << "callback nested inside itself";
  EXPECT_EQ(monitor.windows_completed(), 4);
  EXPECT_EQ(monitor.drift_events(), 3);
  EXPECT_EQ(monitor.observed(), 4 * config.window_size);
  // Window indices in history stay strictly sequential despite reentrancy.
  const auto history = monitor.History();
  for (size_t i = 0; i < history.size(); ++i) {
    EXPECT_EQ(history[i].window, static_cast<int64_t>(i));
  }
}

}  // namespace
}  // namespace start
