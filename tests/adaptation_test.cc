// Adaptation-loop tests: drift-triggered warm-start retraining plus
// zero-downtime engine/index hot-swap (serve::AdaptationController), with
// fault injection walking every failure edge of the round state machine
// (serving -> retraining -> swapping -> serving):
//  - a triggered round retrains off the serving checkpoint, rebuilds the
//    index, hot-swaps at a quiescent boundary, and persists the artifacts;
//  - rounds below the corpus floor are skipped, not failed;
//  - an injected fault in any stage ("retrain", "rebuild", "swap") aborts
//    the round with the OLD engine untouched, and the next round recovers;
//  - a pipeline that never reaches quiescence times the swap out
//    gracefully;
//  - a corrupt persisted index is recovered at boot (never fatal), while an
//    intact one is restored, skipping the rebuild;
//  - Remove() churn past the tombstone threshold folds compaction into the
//    same swap machinery;
//  - drift wired end to end triggers the loop with no manual kick;
//  - the whole loop replays bitwise across pipeline worker counts
//    (checkpoint bytes and persisted index bytes identical).
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/fault_hooks.h"
#include "common/rng.h"
#include "core/checkpoint.h"
#include "core/start_model.h"
#include "serve/adaptation.h"
#include "serve/hnsw_index.h"
#include "serve/stream_pipeline.h"
#include "testing.h"

namespace start {
namespace {

using common::FaultHooks;
using serve::AdaptationConfig;
using serve::AdaptationController;
using serve::AdaptationState;
using serve::AdaptationStats;
using serve::HnswIndex;
using serve::PipelineStats;
using serve::StreamItem;

/// Generous deadline for WaitUntilIdle: a round includes a real (tiny)
/// fine-tune, and CI machines are slow.
constexpr int64_t kIdleTimeoutUs = 120'000'000;

class AdaptationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = testutil::MakeTinyWorld().release();
    config_ = new core::StartConfig(testutil::TinyStartConfig());
  }

  static void TearDownTestSuite() {
    delete config_;
    delete world_;
    config_ = nullptr;
    world_ = nullptr;
  }

  /// Writes the generation-0 model artifact (fresh seed-7 init) to `path`.
  static void WriteBaseCheckpoint(const std::string& path) {
    common::Rng rng(7);
    core::StartModel model(*config_, world_->net.get(),
                           world_->transfer.get(), &rng);
    ASSERT_TRUE(core::SaveModelCheckpoint(path, model,
                                          core::HashStartConfig(*config_))
                    .ok());
  }

  /// Small, deterministic loop configuration. Drift is configured to never
  /// fire on its own — rounds are triggered explicitly, except in the
  /// drift-path test which overrides these knobs.
  static AdaptationConfig MakeConfig(const testutil::TempDir& dir) {
    AdaptationConfig config;
    config.model = *config_;
    config.artifact_dir = dir.path();
    config.base_checkpoint = dir.File("base.sttn");
    config.finetune.epochs = 1;
    config.finetune.batch_size = 4;
    config.finetune.num_workers = 0;
    config.drift.window_size = 1 << 20;  // never completes a window
    config.stream.match_workers = 2;
    config.stream.embed_workers = 2;
    config.stream.service.max_batch_size = 8;
    config.stream.service.batch_deadline_us = 50;
    config.corpus_capacity = 256;
    config.min_retrain_corpus = 4;
    config.swap_timeout_us = 30'000'000;
    return config;
  }

  /// `n` noisy GPS streams with unique ids, cycling the tiny-world trips.
  static std::vector<StreamItem> MakeStream(int64_t n, uint64_t seed = 99) {
    common::Rng rng(seed);
    std::vector<StreamItem> items;
    int64_t id = 0;
    size_t trip = 0;
    while (static_cast<int64_t>(items.size()) < n &&
           trip < static_cast<size_t>(8 * n)) {
      StreamItem item;
      item.id = id++;
      item.gps = traj::SimulateGps(
          *world_->net, world_->corpus[trip++ % world_->corpus.size()],
          /*sample_interval_s=*/30.0, /*noise_m=*/10.0, &rng);
      if (item.gps.points.size() >= 2) items.push_back(std::move(item));
    }
    return items;
  }

  static std::unique_ptr<AdaptationController> MakeController(
      const AdaptationConfig& config, const FaultHooks* hooks = nullptr) {
    auto created = AdaptationController::Create(
        config, world_->net.get(), world_->transfer.get(),
        world_->traffic.get(), hooks);
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    if (!created.ok()) return nullptr;
    return std::move(created.value());
  }

  /// Ids of `stream` present in the currently serving index.
  static std::vector<int64_t> LiveIds(const AdaptationController& controller,
                                      const std::vector<StreamItem>& stream) {
    std::vector<int64_t> live;
    const auto index = controller.engine().index;
    for (const StreamItem& item : stream) {
      if (index->Contains(item.id)) live.push_back(item.id);
    }
    return live;
  }

  static testutil::TinyWorld* world_;
  static core::StartConfig* config_;
};

testutil::TinyWorld* AdaptationTest::world_ = nullptr;
core::StartConfig* AdaptationTest::config_ = nullptr;

TEST_F(AdaptationTest, TriggeredRoundRetrainsRebuildsAndHotSwaps) {
  testutil::TempDir dir;
  const AdaptationConfig config = MakeConfig(dir);
  WriteBaseCheckpoint(config.base_checkpoint);
  auto controller = MakeController(config);
  ASSERT_NE(controller, nullptr);
  const std::vector<StreamItem> stream = MakeStream(16);
  for (const StreamItem& item : stream) {
    ASSERT_TRUE(controller->Push(item).ok());
  }
  controller->Flush();
  const auto old_index = controller->engine().index;
  const std::vector<int64_t> live = LiveIds(*controller, stream);
  ASSERT_GE(static_cast<int64_t>(live.size()), config.min_retrain_corpus);
  EXPECT_EQ(controller->stats().corpus_size,
            static_cast<int64_t>(live.size()));
  EXPECT_EQ(controller->serving_checkpoint(), config.base_checkpoint);

  controller->TriggerRetrain();
  ASSERT_TRUE(controller->WaitUntilIdle(kIdleTimeoutUs));

  const AdaptationStats s = controller->stats();
  EXPECT_EQ(s.state, AdaptationState::kServing);
  EXPECT_EQ(s.rounds_started, 1);
  EXPECT_EQ(s.rounds_completed, 1);
  EXPECT_EQ(s.rounds_failed, 0);
  EXPECT_EQ(s.generation, 1);
  EXPECT_EQ(s.last_error, "");
  // The full corpus was re-embedded into the new generation's index.
  EXPECT_EQ(s.catch_up_items, static_cast<int64_t>(live.size()));

  const PipelineStats p = controller->pipeline()->stats();
  EXPECT_EQ(p.epoch, 1);
  EXPECT_EQ(p.swaps, 1);

  // The serving artifacts moved to generation 1, persisted index included.
  EXPECT_EQ(controller->serving_checkpoint(), dir.File("gen_1.sttn"));
  EXPECT_TRUE(core::CheckpointExists(dir.File("gen_1.sttn")));
  EXPECT_TRUE(core::CheckpointExists(dir.File("gen_1.sttn.index")));

  // Zero loss across the swap: the new index serves every live id.
  const auto new_index = controller->engine().index;
  EXPECT_NE(new_index.get(), old_index.get());
  EXPECT_EQ(new_index->size(), static_cast<int64_t>(live.size()));
  for (const int64_t id : live) {
    EXPECT_TRUE(new_index->Contains(id)) << "id " << id << " lost in swap";
  }

  // And the loop keeps serving: post-swap items land in the new index.
  std::vector<StreamItem> more = MakeStream(4, /*seed=*/123);
  for (StreamItem& item : more) item.id += 1000;
  for (const StreamItem& item : more) {
    ASSERT_TRUE(controller->Push(item).ok());
  }
  controller->Flush();
  EXPECT_GT(static_cast<int64_t>(LiveIds(*controller, more).size()), 0);
}

TEST_F(AdaptationTest, RoundBelowCorpusFloorIsSkippedNotFailed) {
  testutil::TempDir dir;
  AdaptationConfig config = MakeConfig(dir);
  config.min_retrain_corpus = 1000;  // unreachable
  WriteBaseCheckpoint(config.base_checkpoint);
  auto controller = MakeController(config);
  ASSERT_NE(controller, nullptr);
  const std::vector<StreamItem> stream = MakeStream(6);
  for (const StreamItem& item : stream) {
    ASSERT_TRUE(controller->Push(item).ok());
  }
  controller->Flush();
  controller->TriggerRetrain();
  ASSERT_TRUE(controller->WaitUntilIdle(kIdleTimeoutUs));
  const AdaptationStats s = controller->stats();
  EXPECT_EQ(s.rounds_skipped, 1);
  EXPECT_EQ(s.rounds_started, 0);
  EXPECT_EQ(s.rounds_failed, 0);
  EXPECT_EQ(s.generation, 0);
  EXPECT_EQ(s.last_error, "");
  EXPECT_EQ(controller->pipeline()->stats().epoch, 0);
}

TEST_F(AdaptationTest, InjectedFaultInAnyStageLeavesOldEngineServing) {
  for (const char* fault_stage : {"retrain", "rebuild", "swap"}) {
    SCOPED_TRACE(fault_stage);
    testutil::TempDir dir;
    const AdaptationConfig config = MakeConfig(dir);
    WriteBaseCheckpoint(config.base_checkpoint);
    std::atomic<bool> armed{true};
    FaultHooks hooks;
    hooks.before_stage = [&](const char* stage, int64_t) {
      if (armed.load(std::memory_order_acquire) &&
          std::strcmp(stage, fault_stage) == 0) {
        return common::Status::Internal("injected fault");
      }
      return common::Status::OK();
    };
    auto controller = MakeController(config, &hooks);
    ASSERT_NE(controller, nullptr);
    const std::vector<StreamItem> stream = MakeStream(12);
    for (const StreamItem& item : stream) {
      ASSERT_TRUE(controller->Push(item).ok());
    }
    controller->Flush();
    const auto old_index = controller->engine().index;
    const std::vector<int64_t> live = LiveIds(*controller, stream);
    ASSERT_GE(static_cast<int64_t>(live.size()), config.min_retrain_corpus);

    controller->TriggerRetrain();
    ASSERT_TRUE(controller->WaitUntilIdle(kIdleTimeoutUs));

    // The failure edge collapsed back to kServing on the untouched old
    // engine, with the fault recorded.
    const AdaptationStats failed = controller->stats();
    EXPECT_EQ(failed.state, AdaptationState::kServing);
    EXPECT_EQ(failed.rounds_failed, 1);
    EXPECT_EQ(failed.rounds_completed, 0);
    EXPECT_EQ(failed.generation, 0);
    EXPECT_NE(failed.last_error.find("injected fault"), std::string::npos)
        << failed.last_error;
    EXPECT_EQ(controller->pipeline()->stats().epoch, 0);
    EXPECT_EQ(controller->pipeline()->stats().swaps, 0);
    EXPECT_EQ(controller->engine().index.get(), old_index.get());
    EXPECT_EQ(controller->serving_checkpoint(), config.base_checkpoint);
    for (const int64_t id : live) {
      EXPECT_TRUE(old_index->Contains(id));
    }

    // The loop is not wedged: with the fault disarmed the next round lands.
    armed.store(false, std::memory_order_release);
    controller->TriggerRetrain();
    ASSERT_TRUE(controller->WaitUntilIdle(kIdleTimeoutUs));
    const AdaptationStats recovered = controller->stats();
    EXPECT_EQ(recovered.rounds_completed, 1);
    EXPECT_EQ(recovered.generation, 1);
    EXPECT_EQ(recovered.last_error, "");
    EXPECT_EQ(controller->pipeline()->stats().epoch, 1);
  }
}

TEST_F(AdaptationTest, SwapTimeoutDegradesGracefullyToOldEngine) {
  testutil::TempDir dir;
  AdaptationConfig config = MakeConfig(dir);
  config.swap_timeout_us = 200'000;  // the pipeline will never quiesce
  WriteBaseCheckpoint(config.base_checkpoint);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  const std::vector<StreamItem> stream = MakeStream(8);
  const int64_t stall_seq = static_cast<int64_t>(stream.size());
  FaultHooks hooks;
  hooks.before_stage = [&](const char* stage, int64_t seq) {
    if (std::strcmp(stage, "match") == 0 && seq == stall_seq) {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release; });  // held in flight indefinitely
    }
    return common::Status::OK();
  };
  auto controller = MakeController(config, &hooks);
  ASSERT_NE(controller, nullptr);
  for (const StreamItem& item : stream) {
    ASSERT_TRUE(controller->Push(item).ok());
  }
  controller->Flush();
  const std::vector<int64_t> live = LiveIds(*controller, stream);
  ASSERT_GE(static_cast<int64_t>(live.size()), config.min_retrain_corpus);
  // One more item, stalled inside the match stage: the pipeline now has a
  // permanent in-flight resident and can never reach a quiescent boundary.
  StreamItem stalled;
  stalled.id = 999;
  stalled.gps = stream[0].gps;
  ASSERT_TRUE(controller->Push(stalled).ok());

  controller->TriggerRetrain();
  ASSERT_TRUE(controller->WaitUntilIdle(kIdleTimeoutUs));

  const AdaptationStats s = controller->stats();
  EXPECT_EQ(s.swap_timeouts, 1);
  EXPECT_EQ(s.rounds_failed, 1);
  EXPECT_EQ(s.rounds_completed, 0);
  EXPECT_EQ(s.generation, 0);
  EXPECT_NE(s.last_error.find("swap timeout"), std::string::npos)
      << s.last_error;
  EXPECT_EQ(controller->pipeline()->stats().epoch, 0);

  // Release the stall: the resident item finalizes on the OLD engine, which
  // is still serving untouched.
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  controller->Flush();
  EXPECT_TRUE(controller->engine().index->Contains(stalled.id));
}

TEST_F(AdaptationTest, CorruptPersistedIndexIsRecoveredAtBoot) {
  testutil::TempDir dir;
  const AdaptationConfig config = MakeConfig(dir);
  WriteBaseCheckpoint(config.base_checkpoint);
  const std::string garbage = "this is not an index artifact";
  testutil::WriteFileBytes(
      config.base_checkpoint + ".index",
      std::vector<uint8_t>(garbage.begin(), garbage.end()));
  auto controller = MakeController(config);
  ASSERT_NE(controller, nullptr);  // corrupt sidecar is never fatal
  const AdaptationStats s = controller->stats();
  EXPECT_EQ(s.index_recovered, 1);
  EXPECT_EQ(s.index_restored, 0);
  EXPECT_NE(s.last_error.find("persisted index rejected"), std::string::npos)
      << s.last_error;
  // Recovery means an empty index that the stream refills.
  EXPECT_EQ(controller->engine().index->size(), 0);
  const std::vector<StreamItem> stream = MakeStream(8);
  for (const StreamItem& item : stream) {
    ASSERT_TRUE(controller->Push(item).ok());
  }
  controller->Flush();
  EXPECT_GT(static_cast<int64_t>(LiveIds(*controller, stream).size()), 0);
}

TEST_F(AdaptationTest, PersistedIndexIsRestoredAcrossRestart) {
  testutil::TempDir dir;
  const AdaptationConfig config = MakeConfig(dir);
  WriteBaseCheckpoint(config.base_checkpoint);
  const std::vector<StreamItem> stream = MakeStream(16);
  std::vector<int64_t> live;
  {
    auto controller = MakeController(config);
    ASSERT_NE(controller, nullptr);
    EXPECT_EQ(controller->stats().index_restored, 0);
    for (const StreamItem& item : stream) {
      ASSERT_TRUE(controller->Push(item).ok());
    }
    controller->Flush();
    live = LiveIds(*controller, stream);
    ASSERT_GE(static_cast<int64_t>(live.size()), config.min_retrain_corpus);
    controller->TriggerRetrain();
    ASSERT_TRUE(controller->WaitUntilIdle(kIdleTimeoutUs));
    ASSERT_EQ(controller->stats().rounds_completed, 1);
  }  // shutdown

  // Restart from the generation-1 artifacts: the persisted sidecar is
  // loaded instead of re-embedding anything.
  AdaptationConfig restarted = MakeConfig(dir);
  restarted.base_checkpoint = dir.File("gen_1.sttn");
  auto controller = MakeController(restarted);
  ASSERT_NE(controller, nullptr);
  const AdaptationStats s = controller->stats();
  EXPECT_EQ(s.index_restored, 1);
  EXPECT_EQ(s.index_recovered, 0);
  const auto index = controller->engine().index;
  EXPECT_EQ(index->size(), static_cast<int64_t>(live.size()));
  for (const int64_t id : live) {
    EXPECT_TRUE(index->Contains(id)) << "id " << id << " not restored";
  }
}

TEST_F(AdaptationTest, RemoveChurnPastThresholdFoldsInCompactionSwap) {
  testutil::TempDir dir;
  AdaptationConfig config = MakeConfig(dir);
  config.compact_dead_fraction = 0.5;
  WriteBaseCheckpoint(config.base_checkpoint);
  // Hold the compaction round at its rebuild stage until every Remove() has
  // been issued, so exactly one compaction covers them all.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  FaultHooks hooks;
  hooks.before_stage = [&](const char* stage, int64_t) {
    if (std::strcmp(stage, "rebuild") == 0) {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release; });
    }
    return common::Status::OK();
  };
  auto controller = MakeController(config, &hooks);
  ASSERT_NE(controller, nullptr);
  const std::vector<StreamItem> stream = MakeStream(20);
  for (const StreamItem& item : stream) {
    ASSERT_TRUE(controller->Push(item).ok());
  }
  controller->Flush();
  const std::vector<int64_t> live = LiveIds(*controller, stream);
  ASSERT_GE(live.size(), 10u);
  const size_t victims = (live.size() * 3) / 5;  // 60% > threshold
  for (size_t i = 0; i < victims; ++i) {
    ASSERT_TRUE(controller->Remove(live[i]).ok());
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  ASSERT_TRUE(controller->WaitUntilIdle(kIdleTimeoutUs));

  const AdaptationStats s = controller->stats();
  EXPECT_EQ(s.compactions, 1);
  EXPECT_EQ(s.rounds_failed, 0);
  EXPECT_EQ(s.generation, 0);  // compaction serves the same generation
  EXPECT_EQ(s.corpus_size, static_cast<int64_t>(live.size() - victims));
  const PipelineStats p = controller->pipeline()->stats();
  EXPECT_EQ(p.swaps, 1);
  EXPECT_EQ(p.epoch, 1);
  // The compacted index holds exactly the survivors, tombstone-free.
  const auto index =
      std::static_pointer_cast<HnswIndex>(controller->engine().index);
  EXPECT_EQ(index->size(), static_cast<int64_t>(live.size() - victims));
  EXPECT_EQ(index->DeadFraction(), 0.0);
  for (size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(index->Contains(live[i]), i >= victims) << "id " << live[i];
  }
  // The compacted generation was persisted next to its checkpoint.
  EXPECT_TRUE(core::CheckpointExists(config.base_checkpoint + ".index"));
}

TEST_F(AdaptationTest, DriftTriggersTheLoopWithNoManualKick) {
  testutil::TempDir dir;
  AdaptationConfig config = MakeConfig(dir);
  // Real drift wiring: tiny windows and a zero cosine threshold, so the
  // stream itself fires the retrain trigger.
  config.drift.window_size = 8;
  config.drift.reference_windows = 1;
  config.drift.cosine_shift_threshold = 0.0;
  config.drift.norm_shift_threshold = 1e9;
  WriteBaseCheckpoint(config.base_checkpoint);
  auto controller = MakeController(config);
  ASSERT_NE(controller, nullptr);
  const std::vector<StreamItem> stream = MakeStream(32);
  for (const StreamItem& item : stream) {
    ASSERT_TRUE(controller->Push(item).ok());
  }
  controller->Flush();
  ASSERT_TRUE(controller->WaitUntilIdle(kIdleTimeoutUs));
  const AdaptationStats s = controller->stats();
  EXPECT_GE(s.drift_triggers, 1);
  EXPECT_GE(s.rounds_completed, 1);
  EXPECT_GE(s.generation, 1);
  EXPECT_GE(controller->pipeline()->stats().swaps, 1);
  // Every live id survived however many swaps the drift storm caused.
  for (const int64_t id : LiveIds(*controller, stream)) {
    EXPECT_TRUE(controller->engine().index->Contains(id));
  }
}

TEST_F(AdaptationTest, FullLoopReplaysBitwiseAcrossWorkerCounts) {
  const std::vector<StreamItem> stream = MakeStream(16);
  struct Artifacts {
    std::vector<uint8_t> checkpoint;
    std::vector<uint8_t> index;
    int64_t corpus_size = 0;
  };
  const auto run_once = [&](int match_workers, int embed_workers) {
    Artifacts out;
    testutil::TempDir dir;
    AdaptationConfig config = MakeConfig(dir);
    config.stream.match_workers = match_workers;
    config.stream.embed_workers = embed_workers;
    WriteBaseCheckpoint(config.base_checkpoint);
    auto controller = MakeController(config);
    if (controller == nullptr) return out;
    for (const StreamItem& item : stream) {
      EXPECT_TRUE(controller->Push(item).ok());
    }
    controller->Flush();
    controller->TriggerRetrain();
    EXPECT_TRUE(controller->WaitUntilIdle(kIdleTimeoutUs));
    EXPECT_EQ(controller->stats().rounds_completed, 1);
    out.checkpoint = testutil::ReadFileBytes(dir.File("gen_1.sttn"));
    out.index = testutil::ReadFileBytes(dir.File("gen_1.sttn.index"));
    out.corpus_size = controller->stats().corpus_size;
    return out;
  };
  const Artifacts narrow = run_once(1, 1);
  const Artifacts wide = run_once(3, 2);
  ASSERT_GT(narrow.corpus_size, 0);
  EXPECT_EQ(narrow.corpus_size, wide.corpus_size);
  // The retrained checkpoint and the persisted index are byte-identical:
  // the whole adaptation round — corpus snapshot, warm-start fine-tune,
  // rebuild, swap — is deterministic whatever the pipeline parallelism.
  ASSERT_FALSE(narrow.checkpoint.empty());
  EXPECT_EQ(narrow.checkpoint, wide.checkpoint)
      << "retrained checkpoint diverged across worker counts";
  ASSERT_FALSE(narrow.index.empty());
  EXPECT_EQ(narrow.index, wide.index)
      << "persisted index diverged across worker counts";
}

}  // namespace
}  // namespace start
