#include "data/loader.h"

#include <gtest/gtest.h>

#include <chrono>
#include <numeric>
#include <set>
#include <thread>

#include "data/batch.h"
#include "data/dataset.h"
#include "roadnet/synthetic_city.h"
#include "traj/trip_generator.h"

namespace start::data {
namespace {

// common::ThreadPool unit tests live in tests/common_test.cc; this file
// covers the loader stack built on top of it.

// ---------------------------------------------------------------------------
// Length-bucketed batch plans
// ---------------------------------------------------------------------------

TEST(BucketBatchPlanTest, CoversEveryIndexExactlyOnce) {
  const std::vector<int64_t> lengths = {6, 12, 128, 7, 33, 8, 64, 10, 9, 40};
  std::vector<int64_t> order(lengths.size());
  std::iota(order.begin(), order.end(), 0);
  const auto plan = BucketBatchPlan(lengths, order, /*batch_size=*/3,
                                    /*bucket_width=*/8);
  std::multiset<int64_t> seen;
  for (const auto& batch : plan) {
    EXPECT_LE(batch.size(), 3u);
    EXPECT_GE(batch.size(), 1u);
    seen.insert(batch.begin(), batch.end());
  }
  ASSERT_EQ(seen.size(), lengths.size());
  for (int64_t i = 0; i < static_cast<int64_t>(lengths.size()); ++i) {
    EXPECT_EQ(seen.count(i), 1u) << "index " << i;
  }
}

TEST(BucketBatchPlanTest, FullBatchesShareALengthBucket) {
  // 8 lengths in bucket 0 (1..8), 8 in bucket 15 (121..128).
  std::vector<int64_t> lengths;
  for (int i = 0; i < 8; ++i) lengths.push_back(6 + (i % 3));
  for (int i = 0; i < 8; ++i) lengths.push_back(125 + (i % 3));
  std::vector<int64_t> order(lengths.size());
  std::iota(order.begin(), order.end(), 0);
  // Interleave short/long so bucketing has to do real work.
  std::vector<int64_t> interleaved;
  for (int i = 0; i < 8; ++i) {
    interleaved.push_back(order[static_cast<size_t>(i)]);
    interleaved.push_back(order[static_cast<size_t>(8 + i)]);
  }
  const auto plan =
      BucketBatchPlan(lengths, interleaved, /*batch_size=*/4, /*bucket_width=*/8);
  ASSERT_EQ(plan.size(), 4u);
  for (const auto& batch : plan) {
    ASSERT_EQ(batch.size(), 4u);
    const int64_t bucket =
        (lengths[static_cast<size_t>(batch[0])] - 1) / 8;
    for (const int64_t idx : batch) {
      EXPECT_EQ((lengths[static_cast<size_t>(idx)] - 1) / 8, bucket);
    }
  }
}

TEST(BucketBatchPlanTest, ImprovesPaddingEfficiencyOnSkewedLengths) {
  // Skewed corpus: mostly short trips, one long cohort near the cap. Group
  // sizes are multiples of the batch size so the buckets can pack perfectly.
  std::vector<int64_t> lengths;
  for (int i = 0; i < 32; ++i) lengths.push_back(8);
  for (int i = 0; i < 16; ++i) lengths.push_back(12);
  for (int i = 0; i < 16; ++i) lengths.push_back(124);
  // Shuffled arrival order, so long trajectories land in most naive chunks.
  std::vector<int64_t> order(lengths.size());
  std::iota(order.begin(), order.end(), 0);
  common::Rng rng(3);
  rng.Shuffle(&order);

  auto plan_efficiency = [&](const std::vector<std::vector<int64_t>>& plan) {
    int64_t tokens = 0, slots = 0;
    for (const auto& batch : plan) {
      int64_t max_len = 0;
      for (const int64_t idx : batch) {
        tokens += lengths[static_cast<size_t>(idx)];
        max_len = std::max(max_len, lengths[static_cast<size_t>(idx)]);
      }
      slots += max_len * static_cast<int64_t>(batch.size());
    }
    return static_cast<double>(tokens) / static_cast<double>(slots);
  };

  std::vector<std::vector<int64_t>> naive;
  for (size_t begin = 0; begin < order.size(); begin += 16) {
    naive.emplace_back(order.begin() + static_cast<int64_t>(begin),
                       order.begin() + static_cast<int64_t>(begin + 16));
  }
  const auto bucketed = BucketBatchPlan(lengths, order, 16, 8);
  // Buckets separate the cohorts exactly: zero padding. The naive chunks pay
  // 124 slots for mostly-8-token rows.
  EXPECT_DOUBLE_EQ(plan_efficiency(bucketed), 1.0);
  EXPECT_LT(plan_efficiency(naive), 0.5);
}

TEST(PaddingEfficiencyTest, ExactOnKnownLengths) {
  EXPECT_DOUBLE_EQ(PaddingEfficiency({4, 4, 4}), 1.0);
  EXPECT_DOUBLE_EQ(PaddingEfficiency({2, 4}), 6.0 / 8.0);
}

TEST(MakeShuffledPlanTest, CoversCorpusEachEpochWithoutSingletons) {
  std::vector<int64_t> lengths;
  for (int i = 0; i < 33; ++i) lengths.push_back(6 + i % 40);
  PlanConfig config;
  config.batch_size = 8;
  config.epochs = 3;
  config.seed = 11;
  const PretrainPlan plan = MakeShuffledPlan(lengths, config);
  ASSERT_EQ(plan.steps.size(), plan.epoch_of_step.size());
  std::vector<std::multiset<int64_t>> per_epoch(3);
  for (size_t s = 0; s < plan.steps.size(); ++s) {
    EXPECT_GE(plan.steps[s].size(), 2u);  // NT-Xent needs >= 2 trajectories
    per_epoch[static_cast<size_t>(plan.epoch_of_step[s])].insert(
        plan.steps[s].begin(), plan.steps[s].end());
  }
  for (const auto& seen : per_epoch) {
    EXPECT_EQ(seen.size(), lengths.size());
    for (int64_t i = 0; i < 33; ++i) EXPECT_EQ(seen.count(i), 1u);
  }
  // Same config -> same plan; different seed -> different step order.
  const PretrainPlan again = MakeShuffledPlan(lengths, config);
  EXPECT_EQ(plan.steps, again.steps);
  config.seed = 12;
  EXPECT_NE(plan.steps, MakeShuffledPlan(lengths, config).steps);
}

// ---------------------------------------------------------------------------
// BatchLoader
// ---------------------------------------------------------------------------

class LoaderTest : public ::testing::Test {
 protected:
  LoaderTest()
      : net_(roadnet::BuildSyntheticCity({.grid_width = 7, .grid_height = 7})),
        traffic_(&net_, {}) {
    traj::TripGenerator::Config config;
    config.num_drivers = 6;
    config.num_days = 6;
    config.trips_per_driver_day = 3.0;
    config.seed = 99;
    traj::TripGenerator gen(&traffic_, config);
    auto raw = gen.Generate();
    DatasetConfig ds;
    ds.min_length = 5;
    ds.min_user_trajectories = 2;
    corpus_ = TrajDataset::FromCorpus(net_, std::move(raw), ds).All();
  }

  PretrainPlan MakePlan(int64_t epochs = 2) const {
    PlanConfig config;
    config.batch_size = 8;
    config.epochs = epochs;
    config.seed = 5;
    return MakeShuffledPlan(Lengths(corpus_), config);
  }

  BatchLoader::Builder MakeBuilder() const {
    return MakePretrainBuilder(&corpus_, &traffic_, PretrainBatchOptions{});
  }

  std::vector<TrainingBatch> Drain(int num_workers, uint64_t seed = 5) const {
    LoaderConfig config;
    config.num_workers = num_workers;
    config.prefetch_depth = 3;
    config.seed = seed;
    BatchLoader loader(MakePlan().steps, MakeBuilder(), config);
    std::vector<TrainingBatch> got;
    TrainingBatch tb;
    while (loader.Next(&tb)) got.push_back(std::move(tb));
    return got;
  }

  roadnet::RoadNetwork net_;
  traj::TrafficModel traffic_;
  std::vector<traj::Trajectory> corpus_;
};

void ExpectBitwiseEqual(const TrainingBatch& a, const TrainingBatch& b) {
  EXPECT_EQ(a.step, b.step);
  ASSERT_EQ(a.has_masked, b.has_masked);
  ASSERT_EQ(a.has_contrastive, b.has_contrastive);
  EXPECT_EQ(a.masked.roads, b.masked.roads);
  EXPECT_EQ(a.masked.minute_idx, b.masked.minute_idx);
  EXPECT_EQ(a.masked.dow_idx, b.masked.dow_idx);
  EXPECT_EQ(a.masked.times, b.masked.times);  // bitwise: no FP ops reorder
  EXPECT_EQ(a.masked.lengths, b.masked.lengths);
  EXPECT_EQ(a.mask_positions, b.mask_positions);
  EXPECT_EQ(a.mask_targets, b.mask_targets);
  EXPECT_EQ(a.contrastive.roads, b.contrastive.roads);
  EXPECT_EQ(a.contrastive.times, b.contrastive.times);
  EXPECT_EQ(a.contrastive.lengths, b.contrastive.lengths);
}

TEST_F(LoaderTest, DeterministicForFixedSeedAndWorkerCount) {
  ASSERT_GT(corpus_.size(), 16u);
  const auto run1 = Drain(/*num_workers=*/3);
  const auto run2 = Drain(/*num_workers=*/3);
  ASSERT_EQ(run1.size(), run2.size());
  ASSERT_FALSE(run1.empty());
  for (size_t i = 0; i < run1.size(); ++i) {
    ExpectBitwiseEqual(run1[i], run2[i]);
  }
}

TEST_F(LoaderTest, OutputIndependentOfWorkerCount) {
  // Stronger than the contract requires: per-step seeding makes the stream
  // identical across ANY worker count, including the synchronous path.
  const auto sync = Drain(/*num_workers=*/0);
  const auto two = Drain(/*num_workers=*/2);
  const auto four = Drain(/*num_workers=*/4);
  ASSERT_EQ(sync.size(), two.size());
  ASSERT_EQ(sync.size(), four.size());
  for (size_t i = 0; i < sync.size(); ++i) {
    ExpectBitwiseEqual(sync[i], two[i]);
    ExpectBitwiseEqual(sync[i], four[i]);
  }
}

TEST_F(LoaderTest, StartStepResumesTheExactTailOfTheStream) {
  // The resume cursor: a loader starting at step k must deliver the
  // bitwise-identical suffix of a full run — the contract core::Pretrain's
  // checkpoint resume is built on. Checked for both worker modes, and the
  // skipped prefix must never be built (no wasted augmentation work).
  const auto full = Drain(/*num_workers=*/2);
  ASSERT_GT(full.size(), 4u);
  const int64_t start = static_cast<int64_t>(full.size()) / 2;
  for (const int workers : {0, 2}) {
    LoaderConfig config;
    config.num_workers = workers;
    config.prefetch_depth = 3;
    config.seed = 5;
    config.start_step = start;
    BatchLoader loader(MakePlan().steps, MakeBuilder(), config);
    std::vector<TrainingBatch> tail;
    TrainingBatch tb;
    while (loader.Next(&tb)) tail.push_back(std::move(tb));
    ASSERT_EQ(tail.size(), full.size() - static_cast<size_t>(start))
        << "workers=" << workers;
    for (size_t i = 0; i < tail.size(); ++i) {
      ExpectBitwiseEqual(tail[i], full[static_cast<size_t>(start) + i]);
    }
    EXPECT_EQ(loader.batches_built(), static_cast<int64_t>(tail.size()));
  }
}

TEST_F(LoaderTest, DifferentSeedsGiveDifferentBatches) {
  const auto a = Drain(/*num_workers=*/2, /*seed=*/5);
  const auto b = Drain(/*num_workers=*/2, /*seed=*/6);
  ASSERT_EQ(a.size(), b.size());
  bool any_diff = false;
  for (size_t i = 0; i < a.size() && !any_diff; ++i) {
    any_diff = a[i].masked.roads != b[i].masked.roads;
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(LoaderTest, BatchesArriveInStepOrderCoveringThePlan) {
  const auto plan = MakePlan();
  const auto got = Drain(/*num_workers=*/4);
  ASSERT_EQ(got.size(), plan.steps.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].step, static_cast<int64_t>(i));
    EXPECT_EQ(got[i].masked.batch_size,
              static_cast<int64_t>(plan.steps[i].size()));
    EXPECT_EQ(got[i].contrastive.batch_size,
              static_cast<int64_t>(2 * plan.steps[i].size()));
  }
}

TEST_F(LoaderTest, SlowConsumerHitsQueueBoundBackpressure) {
  LoaderConfig config;
  config.num_workers = 2;
  config.prefetch_depth = 2;
  BatchLoader loader(MakePlan(/*epochs=*/4).steps, MakeBuilder(), config);
  ASSERT_GT(loader.total_steps(), config.prefetch_depth + 4);
  // Give the workers ample time to run ahead as far as they are allowed.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  const int64_t bound = config.prefetch_depth + config.num_workers;
  EXPECT_LE(loader.batches_built(), bound);
  // Draining one batch frees exactly one slot of headroom.
  TrainingBatch tb;
  ASSERT_TRUE(loader.Next(&tb));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_LE(loader.batches_built(), bound + 1);
  // The rest of the stream still arrives intact.
  int64_t remaining = 0;
  while (loader.Next(&tb)) ++remaining;
  EXPECT_EQ(remaining, loader.total_steps() - 1);
}

TEST_F(LoaderTest, DestructorShutsDownCleanlyMidStream) {
  for (int trial = 0; trial < 3; ++trial) {
    LoaderConfig config;
    config.num_workers = 3;
    config.prefetch_depth = 2;
    BatchLoader loader(MakePlan(/*epochs=*/4).steps, MakeBuilder(), config);
    TrainingBatch tb;
    ASSERT_TRUE(loader.Next(&tb));
    // Leave many batches unbuilt and several workers blocked on the full
    // queue; the destructor must stop and join them without deadlock.
  }
}

TEST_F(LoaderTest, StopUnblocksConsumerAndEndsStream) {
  LoaderConfig config;
  config.num_workers = 2;
  BatchLoader loader(MakePlan(/*epochs=*/4).steps, MakeBuilder(), config);
  TrainingBatch tb;
  ASSERT_TRUE(loader.Next(&tb));
  loader.Stop();
  EXPECT_FALSE(loader.Next(&tb));
  EXPECT_FALSE(loader.Next(&tb));  // idempotent after stop
}

TEST_F(LoaderTest, MakeBatchIntoReusesBuffersAcrossCalls) {
  ASSERT_GE(corpus_.size(), 8u);
  std::vector<View> big, small;
  for (size_t i = 0; i < 8; ++i) big.push_back(MakeView(corpus_[i]));
  for (size_t i = 0; i < 4; ++i) small.push_back(MakeView(corpus_[i]));
  Batch batch;
  MakeBatchInto(big, &batch);
  const Batch reference = MakeBatch(small);
  const int64_t* roads_buffer = batch.roads.data();
  const double* times_buffer = batch.times.data();
  // Refilling with a smaller extent must not reallocate...
  MakeBatchInto(small, &batch);
  EXPECT_EQ(batch.roads.data(), roads_buffer);
  EXPECT_EQ(batch.times.data(), times_buffer);
  // ...and must produce exactly what a fresh MakeBatch would.
  EXPECT_EQ(batch.batch_size, reference.batch_size);
  EXPECT_EQ(batch.max_len, reference.max_len);
  EXPECT_EQ(batch.roads, reference.roads);
  EXPECT_EQ(batch.minute_idx, reference.minute_idx);
  EXPECT_EQ(batch.dow_idx, reference.dow_idx);
  EXPECT_EQ(batch.times, reference.times);
  EXPECT_EQ(batch.lengths, reference.lengths);
}

TEST_F(LoaderTest, RecycledBatchesDoNotChangeTheStream) {
  // Recycling feeds consumed buffers back to the workers; the produced
  // stream must be byte-identical to a run that never recycles.
  const auto no_recycle = Drain(/*num_workers=*/2);
  LoaderConfig config;
  config.num_workers = 2;
  config.prefetch_depth = 3;
  config.seed = 5;
  BatchLoader loader(MakePlan().steps, MakeBuilder(), config);
  size_t i = 0;
  TrainingBatch tb;
  while (loader.Next(&tb)) {
    ASSERT_LT(i, no_recycle.size());
    ExpectBitwiseEqual(tb, no_recycle[i++]);
    loader.Recycle(std::move(tb));
  }
  EXPECT_EQ(i, no_recycle.size());
}

}  // namespace
}  // namespace start::data
