#include "nn/losses.h"

#include <cmath>
#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace start::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(NtXentTest, PerfectPairsGiveLowLoss) {
  // Pairs identical, non-pairs orthogonal: loss should be near its floor.
  std::vector<float> reps = {
      1, 0, 0, 0,  //
      1, 0, 0, 0,  //
      0, 1, 0, 0,  //
      0, 1, 0, 0,  //
      0, 0, 1, 0,  //
      0, 0, 1, 0,  //
  };
  const Tensor t = Tensor::FromVector(Shape({6, 4}), std::move(reps));
  const float low = NtXentLoss(t, 0.05f).item();
  // Shuffled pairing (partner orthogonal) must be much worse.
  std::vector<float> bad = {
      1, 0, 0, 0,  //
      0, 1, 0, 0,  //
      1, 0, 0, 0,  //
      0, 0, 1, 0,  //
      0, 1, 0, 0,  //
      0, 0, 1, 0,  //
  };
  const Tensor tb = Tensor::FromVector(Shape({6, 4}), std::move(bad));
  const float high = NtXentLoss(tb, 0.05f).item();
  EXPECT_LT(low, 0.01f);
  EXPECT_GT(high, 1.0f);
}

TEST(NtXentTest, TemperatureSharpens) {
  common::Rng rng(1);
  Tensor reps = Tensor::Rand(Shape({8, 16}), &rng, -1, 1);
  // Make pairs moderately aligned.
  for (int64_t i = 0; i < 8; i += 2) {
    for (int64_t j = 0; j < 16; ++j) {
      reps.data()[(i + 1) * 16 + j] =
          reps.data()[i * 16 + j] + 0.1f * reps.data()[(i + 1) * 16 + j];
    }
  }
  const float sharp = NtXentLoss(reps, 0.05f).item();
  const float smooth = NtXentLoss(reps, 1.0f).item();
  EXPECT_LT(sharp, smooth);  // aligned pairs benefit from low temperature
}

TEST(NtXentTest, TrainingAlignsPairs) {
  // Optimising NT-Xent over free embeddings should pull pairs together.
  common::Rng rng(2);
  Tensor reps = Tensor::Rand(Shape({8, 8}), &rng, -1, 1);
  reps.set_requires_grad(true);
  AdamW opt({reps}, 0.05);
  const float before = NtXentLoss(reps, 0.1f).item();
  for (int step = 0; step < 100; ++step) {
    opt.ZeroGrad();
    Tensor loss = NtXentLoss(reps, 0.1f);
    loss.Backward();
    opt.Step();
  }
  const float after = NtXentLoss(reps, 0.1f).item();
  EXPECT_LT(after, before * 0.5f);
  // Check pair cosine similarity is now high.
  const Tensor n = tensor::L2NormalizeRows(reps);
  for (int64_t i = 0; i < 8; i += 2) {
    double cos = 0.0;
    for (int64_t j = 0; j < 8; ++j) {
      cos += n.at({i, j}) * n.at({i + 1, j});
    }
    EXPECT_GT(cos, 0.8);
  }
}

TEST(InfoNceTest, MatchedGlobalsScoreLowerLoss) {
  // Globals aligned with their own locals -> lower loss than mismatched.
  const int64_t b = 3, l = 2, d = 4;
  std::vector<float> locals(static_cast<size_t>(b * l * d), 0.0f);
  std::vector<float> globals(static_cast<size_t>(b * d), 0.0f);
  for (int64_t s = 0; s < b; ++s) {
    for (int64_t t = 0; t < l; ++t) {
      locals[static_cast<size_t>((s * l + t) * d + s)] = 3.0f;
    }
    globals[static_cast<size_t>(s * d + s)] = 3.0f;
  }
  const Tensor loc = Tensor::FromVector(Shape({b, l, d}), locals);
  const Tensor glob_good = Tensor::FromVector(Shape({b, d}), globals);
  // Mismatched: rotate global rows by one.
  std::vector<float> rotated(static_cast<size_t>(b * d), 0.0f);
  for (int64_t s = 0; s < b; ++s) {
    rotated[static_cast<size_t>(s * d + (s + 1) % b)] = 3.0f;
  }
  const Tensor glob_bad = Tensor::FromVector(Shape({b, d}), rotated);
  const float good = InfoNceLoss(glob_good, loc, {2, 2, 2}).item();
  const float bad = InfoNceLoss(glob_bad, loc, {2, 2, 2}).item();
  EXPECT_LT(good, bad);
}

TEST(InfoNceTest, RespectsLengthsMask) {
  common::Rng rng(3);
  const Tensor glob = Tensor::Rand(Shape({2, 4}), &rng, -1, 1);
  Tensor loc = Tensor::Rand(Shape({2, 3, 4}), &rng, -1, 1);
  const float full = InfoNceLoss(glob, loc, {3, 3}).item();
  // Perturb only the padded tail of sequence 0 under lengths {1, 3}.
  Tensor loc2 = loc.Detach();
  for (int64_t j = 0; j < 4; ++j) {
    loc2.data()[1 * 4 + j] += 10.0f;
    loc2.data()[2 * 4 + j] -= 10.0f;
  }
  const float masked_a = InfoNceLoss(glob, loc, {1, 3}).item();
  const float masked_b = InfoNceLoss(glob, loc2, {1, 3}).item();
  EXPECT_FLOAT_EQ(masked_a, masked_b);  // padded steps never scored
  (void)full;
}

}  // namespace
}  // namespace start::nn
