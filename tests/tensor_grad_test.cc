// Property tests: every differentiable op's analytic gradient is checked
// against central finite differences across a sweep of shapes.
#include "tensor/grad_check.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/ops.h"

namespace start::tensor {
namespace {

Tensor RandT(const Shape& s, uint64_t seed, float lo = -1.0f,
             float hi = 1.0f) {
  common::Rng rng(seed);
  return Tensor::Rand(s, &rng, lo, hi);
}

void ExpectGradOk(const std::function<Tensor(const std::vector<Tensor>&)>& fn,
                  std::vector<Tensor> inputs) {
  const GradCheckResult result = CheckGradients(fn, std::move(inputs));
  EXPECT_TRUE(result.passed) << result.detail
                             << " max_rel=" << result.max_rel_error;
}

// ---- Parameterised elementwise binary ops over broadcast shapes ----------

struct BinaryCase {
  const char* name;
  Tensor (*op)(const Tensor&, const Tensor&);
  Shape a, b;
};

class BinaryGradTest : public ::testing::TestWithParam<BinaryCase> {};

TEST_P(BinaryGradTest, MatchesFiniteDifferences) {
  const auto& c = GetParam();
  // Offset away from zero so Div stays well-conditioned.
  Tensor a = RandT(c.a, 100, 0.5f, 1.5f);
  Tensor b = RandT(c.b, 101, 0.5f, 1.5f);
  ExpectGradOk(
      [&](const std::vector<Tensor>& in) {
        return Mean(GetParam().op(in[0], in[1]));
      },
      {a, b});
}

INSTANTIATE_TEST_SUITE_P(
    Broadcasts, BinaryGradTest,
    ::testing::Values(
        BinaryCase{"add_same", &Add, Shape({3, 4}), Shape({3, 4})},
        BinaryCase{"add_row", &Add, Shape({3, 4}), Shape({4})},
        BinaryCase{"add_col", &Add, Shape({3, 4}), Shape({3, 1})},
        BinaryCase{"add_scalar", &Add, Shape({3, 4}), Shape({1})},
        BinaryCase{"sub_same", &Sub, Shape({2, 5}), Shape({2, 5})},
        BinaryCase{"mul_same", &Mul, Shape({3, 4}), Shape({3, 4})},
        BinaryCase{"mul_row", &Mul, Shape({3, 4}), Shape({4})},
        BinaryCase{"mul_3d_col", &Mul, Shape({2, 3, 4}), Shape({2, 3, 1})},
        BinaryCase{"div_same", &Div, Shape({3, 4}), Shape({3, 4})},
        BinaryCase{"div_col", &Div, Shape({3, 4}), Shape({3, 1})}),
    [](const ::testing::TestParamInfo<BinaryCase>& info) {
      return info.param.name;
    });

// ---- Parameterised unary ops ----------------------------------------------

struct UnaryCase {
  const char* name;
  std::function<Tensor(const Tensor&)> op;
  float lo, hi;
};

class UnaryGradTest : public ::testing::TestWithParam<UnaryCase> {};

TEST_P(UnaryGradTest, MatchesFiniteDifferences) {
  Tensor x = RandT(Shape({4, 5}), 200, GetParam().lo, GetParam().hi);
  ExpectGradOk(
      [&](const std::vector<Tensor>& in) {
        return Mean(GetParam().op(in[0]));
      },
      {x});
}

INSTANTIATE_TEST_SUITE_P(
    Activations, UnaryGradTest,
    ::testing::Values(
        UnaryCase{"relu", [](const Tensor& t) { return Relu(t); }, 0.2f, 2.0f},
        UnaryCase{"leaky",
                  [](const Tensor& t) { return LeakyRelu(t, 0.2f); }, 0.2f,
                  2.0f},
        UnaryCase{"elu", [](const Tensor& t) { return Elu(t); }, -2.0f,
                  -0.2f},
        UnaryCase{"gelu", [](const Tensor& t) { return Gelu(t); }, -2.0f,
                  2.0f},
        UnaryCase{"tanh", [](const Tensor& t) { return Tanh(t); }, -2.0f,
                  2.0f},
        UnaryCase{"sigmoid", [](const Tensor& t) { return Sigmoid(t); },
                  -2.0f, 2.0f},
        UnaryCase{"exp", [](const Tensor& t) { return Exp(t); }, -1.0f, 1.0f},
        UnaryCase{"log", [](const Tensor& t) { return Log(t); }, 0.5f, 2.0f},
        UnaryCase{"sqrt", [](const Tensor& t) { return Sqrt(t); }, 0.5f,
                  2.0f},
        UnaryCase{"neg", [](const Tensor& t) { return Neg(t); }, -1.0f, 1.0f},
        UnaryCase{"scale", [](const Tensor& t) { return Scale(t, -1.7f); },
                  -1.0f, 1.0f}),
    [](const ::testing::TestParamInfo<UnaryCase>& info) {
      return info.param.name;
    });

// ---- Linear algebra --------------------------------------------------------

TEST(MatMulGradTest, TwoDee) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        return Mean(MatMul(in[0], in[1]));
      },
      {RandT(Shape({3, 4}), 300), RandT(Shape({4, 2}), 301)});
}

TEST(MatMulGradTest, Batched) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        return Mean(BatchMatMul(in[0], in[1]));
      },
      {RandT(Shape({2, 3, 4}), 302), RandT(Shape({2, 4, 2}), 303)});
}

TEST(MatMulGradTest, BatchedTransposeB) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        return Mean(BatchMatMul(in[0], in[1], /*transpose_b=*/true));
      },
      {RandT(Shape({2, 3, 4}), 304), RandT(Shape({2, 5, 4}), 305)});
}

TEST(ShapeOpsGradTest, TransposeReshapeConcatSlice) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        const Tensor t = Transpose(in[0]);                     // [4,3]
        const Tensor r = Reshape(t, Shape({2, 6}));
        const Tensor c = Concat({r, in[1]}, 0);                // [4,6]
        return Mean(Slice(c, 1, 1, 3));
      },
      {RandT(Shape({3, 4}), 306), RandT(Shape({2, 6}), 307)});
}

TEST(ShapeOpsGradTest, GatherRowsWithRepeats) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        return Mean(GatherRows(in[0], {0, 2, 2, 1, 0}));
      },
      {RandT(Shape({3, 4}), 308)});
}

// ---- Reductions / normalisation -------------------------------------------

TEST(ReduceGradTest, SumMean) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) { return Sum(in[0]); },
      {RandT(Shape({3, 3}), 400)});
  ExpectGradOk(
      [](const std::vector<Tensor>& in) { return Mean(in[0]); },
      {RandT(Shape({3, 3}), 401)});
}

TEST(ReduceGradTest, SoftmaxWeighted) {
  const Tensor w = RandT(Shape({3, 5}), 402);
  ExpectGradOk(
      [&](const std::vector<Tensor>& in) {
        return Mean(Mul(SoftmaxLastDim(in[0]), w));
      },
      {RandT(Shape({3, 5}), 403)});
}

TEST(ReduceGradTest, LogSoftmaxWeighted) {
  const Tensor w = RandT(Shape({2, 6}), 404);
  ExpectGradOk(
      [&](const std::vector<Tensor>& in) {
        return Mean(Mul(LogSoftmaxLastDim(in[0]), w));
      },
      {RandT(Shape({2, 6}), 405)});
}

TEST(ReduceGradTest, LayerNormAllInputs) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        return Mean(LayerNorm(in[0], in[1], in[2]));
      },
      {RandT(Shape({4, 8}), 406), RandT(Shape({8}), 407, 0.5f, 1.5f),
       RandT(Shape({8}), 408)});
}

TEST(ReduceGradTest, L2Normalize) {
  const Tensor w = RandT(Shape({3, 6}), 409);
  ExpectGradOk(
      [&](const std::vector<Tensor>& in) {
        return Mean(Mul(L2NormalizeRows(in[0]), w));
      },
      {RandT(Shape({3, 6}), 410, 0.5f, 1.5f)});
}

// ---- Losses ----------------------------------------------------------------

TEST(LossGradTest, CrossEntropy) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        return CrossEntropyWithLogits(in[0], {1, 0, 2});
      },
      {RandT(Shape({3, 3}), 500)});
}

TEST(LossGradTest, CrossEntropyWithIgnored) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        return CrossEntropyWithLogits(in[0], {1, -1, 2}, -1);
      },
      {RandT(Shape({3, 3}), 501)});
}

TEST(LossGradTest, Mse) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        return MseLoss(in[0], {0.5f, -0.5f, 1.0f, 0.0f});
      },
      {RandT(Shape({4}), 502)});
}

TEST(LossGradTest, Bce) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        return BceWithLogits(in[0], {1.0f, 0.0f, 1.0f});
      },
      {RandT(Shape({3}), 503)});
}

// ---- Segment ops (GAT substrate) ------------------------------------------

TEST(SegmentGradTest, SegmentSoftmax) {
  const std::vector<int64_t> seg = {0, 0, 1, 1, 1, 2};
  const Tensor w = RandT(Shape({6}), 600);
  ExpectGradOk(
      [&](const std::vector<Tensor>& in) {
        return Mean(Mul(SegmentSoftmax(in[0], seg, 3), w));
      },
      {RandT(Shape({6}), 601)});
}

TEST(SegmentGradTest, SegmentWeightedSumBothInputs) {
  const std::vector<int64_t> seg = {0, 1, 1, 2};
  ExpectGradOk(
      [&](const std::vector<Tensor>& in) {
        return Mean(SegmentWeightedSum(in[0], in[1], seg, 3));
      },
      {RandT(Shape({4, 3}), 602), RandT(Shape({4}), 603, 0.2f, 1.0f)});
}

TEST(SegmentGradTest, GatComposite) {
  // The exact composition used by TpeGatLayer: gather + segment softmax +
  // weighted aggregation.
  const std::vector<int64_t> src = {0, 1, 2, 0, 2};
  const std::vector<int64_t> dst = {1, 2, 0, 2, 1};
  ExpectGradOk(
      [&](const std::vector<Tensor>& in) {
        const Tensor u = GatherRows(in[0], dst);
        const Tensor v = GatherRows(in[0], src);
        const Tensor scores = Reshape(
            LeakyRelu(Add(MatMul(u, in[1]), MatMul(v, in[1])), 0.2f),
            Shape({5}));
        const Tensor alpha = SegmentSoftmax(scores, dst, 3);
        const Tensor values = GatherRows(MatMul(in[0], in[2]), src);
        return Mean(SegmentWeightedSum(values, alpha, dst, 3));
      },
      {RandT(Shape({3, 4}), 604), RandT(Shape({4, 1}), 605),
       RandT(Shape({4, 4}), 606)});
}

// ---- Zero-copy view chains -------------------------------------------------

TEST(ViewGradTest, ChainedReshapeSliceTranspose) {
  // Gradients must flow through a chain of pure views (no materialisation
  // happens anywhere on this path except the final reduction).
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        const Tensor r = Reshape(in[0], Shape({4, 6}));   // view
        const Tensor s = Slice(r, 1, 1, 3);               // strided view
        const Tensor t = Transpose(s);                    // [3,4] view of view
        return Mean(Mul(t, t));
      },
      {RandT(Shape({2, 2, 6}), 700)});
}

TEST(ViewGradTest, SliceOfSliceAndSelect) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        const Tensor s1 = Slice(in[0], 2, 1, 4);   // [2,3,4] strided view
        const Tensor s2 = Slice(s1, 1, 0, 2);      // view of a view
        const Tensor s3 = Select(s2, 0, 1);        // [2,4]
        return Mean(Mul(s3, s3));
      },
      {RandT(Shape({2, 3, 6}), 701)});
}

TEST(ViewGradTest, MatMulOnTransposeView) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        return Mean(MatMul(in[0], Transpose(in[1])));  // NT without copy
      },
      {RandT(Shape({3, 4}), 702), RandT(Shape({5, 4}), 703)});
}

TEST(ViewGradTest, MatMulOnTransposedLhs) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        return Mean(MatMul(Transpose(in[0]), in[1]));  // TN without copy
      },
      {RandT(Shape({4, 3}), 704), RandT(Shape({4, 5}), 705)});
}

TEST(ViewGradTest, BatchMatMulOnHeadSlices) {
  // The attention pattern: per-head slices of [B,L,D] flow into BMM as
  // row-strided views on both sides.
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        const Tensor qh = Slice(in[0], 2, 2, 2);
        const Tensor kh = Slice(in[1], 2, 0, 2);
        return Mean(BatchMatMul(qh, kh, /*transpose_b=*/true));
      },
      {RandT(Shape({2, 3, 4}), 706), RandT(Shape({2, 3, 4}), 707)});
}

TEST(ViewGradTest, ElementwiseOnStridedViews) {
  ExpectGradOk(
      [](const std::vector<Tensor>& in) {
        const Tensor t = Transpose(in[0]);       // [4,3] strided view
        const Tensor s = Slice(in[1], 1, 1, 3);  // [4,3] strided view
        return Mean(Mul(Add(t, s), Sigmoid(t)));
      },
      {RandT(Shape({3, 4}), 708), RandT(Shape({4, 5}), 709)});
}

TEST(ViewGradTest, WeightedSumThroughReshapeView) {
  // Backward through a reshape view accumulates into the base exactly once.
  Tensor a = RandT(Shape({2, 3}), 710);
  a.set_requires_grad(true);
  a.ZeroGrad();
  Tensor loss = Sum(Mul(Reshape(a, Shape({6})), Reshape(a, Shape({6}))));
  loss.Backward();
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(a.grad()[i * 3 + j], 2.0f * a.at({i, j}), 1e-5);
    }
  }
}

}  // namespace
}  // namespace start::tensor
