// Property tests for the versioned checkpoint subsystem: typed-record
// round-trips (including non-contiguous views exported dense), corruption /
// truncation / version-mismatch rejection via per-record CRCs, config-hash
// behaviour, and full model + optimizer state round-trips.
#include "core/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "core/start_model.h"
#include "nn/optimizer.h"
#include "roadnet/synthetic_city.h"
#include "tensor/ops.h"
#include "tensor/serialize.h"
#include "testing.h"

namespace start {
namespace {

using core::LoadModelCheckpoint;
using core::LoadTrainingCheckpoint;
using core::SaveModelCheckpoint;
using core::SaveTrainingCheckpoint;
using tensor::LoadBundle;
using tensor::RecordBundle;
using tensor::SaveBundle;
using tensor::Shape;
using tensor::Tensor;
using testutil::ReadFileBytes;
using testutil::WriteFileBytes;

/// One scratch directory per test binary, removed at exit.
std::string TempPath(const char* name) {
  static testutil::TempDir dir;
  return dir.File(name);
}

void ExpectTensorsBitwiseEqual(const Tensor& a, const Tensor& b) {
  testutil::ExpectTensorBitwiseEqual(a, b);
}

TEST(CheckpointBundleTest, TypedRecordsRoundTripBitwise) {
  common::Rng rng(7);
  RecordBundle bundle;
  bundle.tensors.emplace("w", Tensor::Rand(Shape({3, 5}), &rng, -1, 1));
  bundle.tensors.emplace("b", Tensor::Rand(Shape({5}), &rng, -1, 1));
  bundle.doubles["loss"] = {0.1, -2.5, 3.14159265358979};
  bundle.ints["steps"] = {-7, 0, 1LL << 40};
  bundle.uints["rng"] = {0xdeadbeefULL, ~0ULL};
  const std::string path = TempPath("bundle_roundtrip.sttn");
  ASSERT_TRUE(SaveBundle(path, 0x1234abcdULL, bundle).ok());

  auto loaded = LoadBundle(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->meta_tag, 0x1234abcdULL);
  ASSERT_EQ(loaded->records.tensors.size(), 2u);
  for (const auto& [name, t] : bundle.tensors) {
    ExpectTensorsBitwiseEqual(t, loaded->records.tensors.at(name));
  }
  EXPECT_EQ(loaded->records.doubles.at("loss"), bundle.doubles.at("loss"));
  EXPECT_EQ(loaded->records.ints.at("steps"), bundle.ints.at("steps"));
  EXPECT_EQ(loaded->records.uints.at("rng"), bundle.uints.at("rng"));
}

TEST(CheckpointBundleTest, NonContiguousViewIsExportedDense) {
  common::Rng rng(11);
  const Tensor base = Tensor::Rand(Shape({4, 6}), &rng, -1, 1);
  const Tensor view = tensor::Transpose(base);  // [6, 4], strided
  ASSERT_FALSE(view.is_contiguous());
  RecordBundle bundle;
  bundle.tensors.emplace("t", view);
  const std::string path = TempPath("bundle_view.sttn");
  ASSERT_TRUE(SaveBundle(path, 0, bundle).ok());

  auto loaded = LoadBundle(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Tensor& t = loaded->records.tensors.at("t");
  EXPECT_TRUE(t.is_contiguous());
  ASSERT_EQ(t.shape(), view.shape());
  for (int64_t i = 0; i < view.dim(0); ++i) {
    for (int64_t j = 0; j < view.dim(1); ++j) {
      EXPECT_EQ(t.at({i, j}), view.at({i, j}));
    }
  }
}

TEST(CheckpointBundleTest, CorruptedPayloadIsRejectedByCrc) {
  common::Rng rng(13);
  RecordBundle bundle;
  bundle.tensors.emplace("w", Tensor::Rand(Shape({8, 8}), &rng, -1, 1));
  const std::string path = TempPath("bundle_corrupt.sttn");
  ASSERT_TRUE(SaveBundle(path, 0, bundle).ok());

  auto bytes = ReadFileBytes(path);
  // Flip one bit in the tensor payload (well past the 24-byte header and the
  // record's name/dims, well before the trailing CRC).
  bytes[bytes.size() - 40] ^= 0x01;
  WriteFileBytes(path, bytes);

  const auto result = LoadBundle(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("CRC"), std::string::npos)
      << result.status().ToString();
}

TEST(CheckpointBundleTest, TruncatedFileIsRejected) {
  common::Rng rng(17);
  RecordBundle bundle;
  bundle.tensors.emplace("w", Tensor::Rand(Shape({16, 16}), &rng, -1, 1));
  bundle.doubles["d"] = {1.0, 2.0};
  const std::string path = TempPath("bundle_trunc.sttn");
  ASSERT_TRUE(SaveBundle(path, 0, bundle).ok());

  const auto bytes = ReadFileBytes(path);
  // Every truncation point must fail cleanly: mid-header, mid-record,
  // mid-CRC. (An empty file trips the magic check.)
  for (const size_t keep :
       {size_t{2}, size_t{10}, size_t{30}, bytes.size() / 2,
        bytes.size() - 2}) {
    std::vector<uint8_t> cut(bytes.begin(),
                             bytes.begin() + static_cast<long>(keep));
    WriteFileBytes(path, cut);
    const auto result = LoadBundle(path);
    EXPECT_FALSE(result.ok()) << "truncation at " << keep << " was accepted";
  }
}

TEST(CheckpointBundleTest, FutureVersionIsRejected) {
  common::Rng rng(19);
  RecordBundle bundle;
  bundle.tensors.emplace("w", Tensor::Rand(Shape({2, 2}), &rng, -1, 1));
  const std::string path = TempPath("bundle_version.sttn");
  ASSERT_TRUE(SaveBundle(path, 0, bundle).ok());

  auto bytes = ReadFileBytes(path);
  const uint32_t future = 99;
  std::memcpy(bytes.data() + 4, &future, sizeof(future));  // version field
  WriteFileBytes(path, bytes);

  const auto result = LoadBundle(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("version"), std::string::npos);
}

TEST(CheckpointBundleTest, LegacyV1FileStillLoads) {
  // Hand-written v1 layout: magic, version=1, count, then
  // name_len/name/ndim/dims/f32 data — no meta tag, no CRC.
  const std::string path = TempPath("legacy_v1.sttn");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const uint32_t version = 1;
  const uint64_t count = 1;
  const uint32_t name_len = 3;
  const uint32_t ndim = 2;
  const int64_t dims[2] = {2, 2};
  const float data[4] = {1.0f, 2.0f, 3.0f, 4.0f};
  std::fwrite("STTN", 1, 4, f);
  std::fwrite(&version, sizeof(version), 1, f);
  std::fwrite(&count, sizeof(count), 1, f);
  std::fwrite(&name_len, sizeof(name_len), 1, f);
  std::fwrite("old", 1, 3, f);
  std::fwrite(&ndim, sizeof(ndim), 1, f);
  std::fwrite(dims, sizeof(int64_t), 2, f);
  std::fwrite(data, sizeof(float), 4, f);
  std::fclose(f);

  auto loaded = tensor::LoadTensors(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Tensor& t = loaded->at("old");
  ASSERT_EQ(t.shape(), Shape({2, 2}));
  EXPECT_EQ(t.at({1, 1}), 4.0f);
}

// ---- Model / optimizer round-trips over a real StartModel -----------------

class ModelCheckpointTest : public ::testing::Test {
 protected:
  ModelCheckpointTest()
      : net_(roadnet::BuildSyntheticCity(
            {.grid_width = 3, .grid_height = 3})) {}

  core::StartConfig TinyConfig() const {
    core::StartConfig config;
    config.d = 8;
    config.gat_layers = 1;
    config.gat_heads = {2};
    config.encoder_layers = 1;
    config.encoder_heads = 2;
    config.max_len = 32;
    return config;
  }

  core::StartModel MakeModel(uint64_t seed) const {
    common::Rng rng(seed);
    return core::StartModel(TinyConfig(), &net_, nullptr, &rng);
  }

  roadnet::RoadNetwork net_;
};

TEST_F(ModelCheckpointTest, EveryParameterRoundTripsBitwise) {
  const auto a = MakeModel(1);
  const std::string path = TempPath("model_roundtrip.sttn");
  const uint64_t hash = core::HashStartConfig(TinyConfig());
  ASSERT_TRUE(SaveModelCheckpoint(path, a, hash).ok());

  auto b = MakeModel(2);  // different init; every value must be overwritten
  ASSERT_TRUE(LoadModelCheckpoint(path, &b, hash).ok());
  const auto named_a = a.NamedParameters();
  const auto named_b = b.NamedParameters();
  ASSERT_EQ(named_a.size(), named_b.size());
  ASSERT_GT(named_a.size(), 10u);  // a real model, not a stub
  for (size_t i = 0; i < named_a.size(); ++i) {
    EXPECT_EQ(named_a[i].first, named_b[i].first);
    ExpectTensorsBitwiseEqual(named_a[i].second, named_b[i].second);
  }
}

TEST_F(ModelCheckpointTest, ConfigHashMismatchStillLoadsWithWarning) {
  const auto a = MakeModel(3);
  const std::string path = TempPath("model_hash_mismatch.sttn");
  ASSERT_TRUE(SaveModelCheckpoint(path, a, /*config_hash=*/111).ok());

  // A different expected hash logs a warning but must not fail the load:
  // shapes are validated per tensor, and cross-config warm-starts (e.g. an
  // ablation variant) are legitimate as long as shapes line up.
  auto b = MakeModel(4);
  ASSERT_TRUE(LoadModelCheckpoint(path, &b, /*expected=*/222).ok());
  ExpectTensorsBitwiseEqual(a.NamedParameters()[0].second,
                            b.NamedParameters()[0].second);
}

TEST_F(ModelCheckpointTest, TrainingCheckpointRestoresOptimizerSlots) {
  auto model = MakeModel(5);
  nn::AdamW opt(model.Parameters(), 1e-3);
  // Drive a couple of updates so the moment buffers are non-trivial.
  for (int iter = 0; iter < 3; ++iter) {
    model.ZeroGrad();
    tensor::Sum(model.ComputeRoadReps()).Backward();
    opt.Step();
  }
  core::TrainerState state;
  state.next_step = 17;
  state.adam_step = opt.step_count();
  state.plan_hash = 42;
  state.loss_sum = {1.5, 0.0};
  state.mask_sum = {0.5, 0.0};
  state.con_sum = {1.0, 0.0};
  state.batch_count = {9, 0};
  common::Rng stream(77);
  stream.Next();
  state.rng_state = stream.GetState();
  const std::string path = TempPath("training_roundtrip.sttn");
  ASSERT_TRUE(SaveTrainingCheckpoint(path, model, opt, state, 1).ok());

  auto restored_model = MakeModel(6);
  nn::AdamW restored_opt(restored_model.Parameters(), 1e-3);
  auto loaded = LoadTrainingCheckpoint(path, &restored_model, &restored_opt,
                                       1, /*expected_plan_hash=*/42);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->next_step, 17);
  EXPECT_EQ(loaded->adam_step, 3);
  EXPECT_EQ(restored_opt.step_count(), 3);
  EXPECT_EQ(loaded->loss_sum, state.loss_sum);
  EXPECT_EQ(loaded->batch_count, state.batch_count);
  EXPECT_EQ(loaded->rng_state, state.rng_state);
  ASSERT_EQ(restored_opt.moment1().size(), opt.moment1().size());
  for (size_t i = 0; i < opt.moment1().size(); ++i) {
    EXPECT_EQ(restored_opt.moment1()[i], opt.moment1()[i]) << "m slot " << i;
    EXPECT_EQ(restored_opt.moment2()[i], opt.moment2()[i]) << "v slot " << i;
  }
  // The restored RNG continues the exact stream of the captured one.
  common::Rng resumed(1);
  resumed.SetState(loaded->rng_state);
  EXPECT_EQ(resumed.Next(), stream.Next());
}

TEST_F(ModelCheckpointTest, PlanMismatchRefusesResumeBeforeMutating) {
  auto model = MakeModel(7);
  nn::AdamW opt(model.Parameters(), 1e-3);
  core::TrainerState state;
  state.plan_hash = 42;
  state.loss_sum = {0.0};
  state.mask_sum = {0.0};
  state.con_sum = {0.0};
  state.batch_count = {0};
  const std::string path = TempPath("training_plan_mismatch.sttn");
  ASSERT_TRUE(SaveTrainingCheckpoint(path, model, opt, state, 1).ok());

  auto fresh = MakeModel(8);
  const std::vector<float> before(
      fresh.NamedParameters()[0].second.data(),
      fresh.NamedParameters()[0].second.data() +
          fresh.NamedParameters()[0].second.numel());
  nn::AdamW fresh_opt(fresh.Parameters(), 1e-3);
  auto loaded =
      LoadTrainingCheckpoint(path, &fresh, &fresh_opt, 1, /*plan=*/99);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(),
            common::StatusCode::kFailedPrecondition);
  // The refused resume must leave the caller's fresh state untouched.
  // (Tensor handles share storage, so copying the handle out of the
  // temporary NamedParameters() vector is safe.)
  const Tensor p = fresh.NamedParameters()[0].second;
  EXPECT_EQ(std::memcmp(before.data(), p.data(),
                        before.size() * sizeof(float)),
            0);
}

TEST_F(ModelCheckpointTest, ModelOnlyCheckpointCannotResumeTraining) {
  auto model = MakeModel(9);
  const std::string path = TempPath("model_only.sttn");
  ASSERT_TRUE(SaveModelCheckpoint(path, model, 1).ok());
  nn::AdamW opt(model.Parameters(), 1e-3);
  const auto loaded = LoadTrainingCheckpoint(path, &model, &opt, 1);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(),
            common::StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace start
