#include "traj/map_matching.h"

#include <gtest/gtest.h>

#include "roadnet/synthetic_city.h"
#include "traj/traffic_model.h"
#include "traj/trip_generator.h"

namespace start::traj {
namespace {

class MapMatchingTest : public ::testing::Test {
 protected:
  MapMatchingTest()
      : net_(roadnet::BuildSyntheticCity(
            {.grid_width = 6, .grid_height = 6, .coord_jitter = 0.05})),
        traffic_(&net_, {}) {}

  Trajectory MakeTrip() {
    TripGenerator::Config config;
    config.num_drivers = 1;
    TripGenerator gen(&traffic_, config);
    return gen.GenerateTrip(0, 2, net_.num_segments() - 4, 10 * 3600);
  }

  roadnet::RoadNetwork net_;
  TrafficModel traffic_;
};

TEST_F(MapMatchingTest, PointToSegmentDistance) {
  roadnet::RoadSegment seg;
  seg.x0 = 0;
  seg.y0 = 0;
  seg.x1 = 10;
  seg.y1 = 0;
  EXPECT_DOUBLE_EQ(HmmMapMatcher::PointToSegmentDistance(seg, 5, 3), 3.0);
  EXPECT_DOUBLE_EQ(HmmMapMatcher::PointToSegmentDistance(seg, -4, 0), 4.0);
  EXPECT_DOUBLE_EQ(HmmMapMatcher::PointToSegmentDistance(seg, 13, 4), 5.0);
}

TEST_F(MapMatchingTest, GpsSimulationFollowsTrajectory) {
  const Trajectory trip = MakeTrip();
  ASSERT_GT(trip.size(), 3);
  common::Rng rng(1);
  const GpsTrajectory gps = SimulateGps(net_, trip, 15.0, 0.0, &rng);
  ASSERT_GT(gps.points.size(), 3u);
  // Noise-free samples lie on (or very near) some trajectory segment.
  for (const auto& p : gps.points) {
    double best = 1e18;
    for (const int64_t r : trip.roads) {
      best = std::min(best, HmmMapMatcher::PointToSegmentDistance(
                                net_.segment(r), p.x, p.y));
    }
    EXPECT_LT(best, 1.0);
  }
  // Timestamps are increasing and within the trip window.
  for (size_t i = 0; i + 1 < gps.points.size(); ++i) {
    EXPECT_LT(gps.points[i].timestamp, gps.points[i + 1].timestamp);
  }
}

TEST_F(MapMatchingTest, RecoversRouteFromLowNoiseGps) {
  const Trajectory trip = MakeTrip();
  ASSERT_GT(trip.size(), 3);
  common::Rng rng(2);
  const GpsTrajectory gps = SimulateGps(net_, trip, 10.0, 4.0, &rng);
  HmmMapMatcher matcher(&net_, {});
  const auto matched = matcher.Match(gps);
  ASSERT_FALSE(matched.empty());
  // Most matched roads should belong to the true route (midpoint sampling
  // can skip very short segments).
  int64_t on_route = 0;
  for (const int64_t r : matched) {
    if (std::find(trip.roads.begin(), trip.roads.end(), r) !=
        trip.roads.end()) {
      ++on_route;
    }
  }
  EXPECT_GT(static_cast<double>(on_route) /
                static_cast<double>(matched.size()),
            0.7);
}

TEST_F(MapMatchingTest, MatchedSequenceHasNoImmediateRepeats) {
  const Trajectory trip = MakeTrip();
  common::Rng rng(3);
  const GpsTrajectory gps = SimulateGps(net_, trip, 10.0, 6.0, &rng);
  HmmMapMatcher matcher(&net_, {});
  const auto matched = matcher.Match(gps);
  for (size_t i = 0; i + 1 < matched.size(); ++i) {
    EXPECT_NE(matched[i], matched[i + 1]);
  }
}

TEST_F(MapMatchingTest, EmptyGpsGivesEmptyMatch) {
  HmmMapMatcher matcher(&net_, {});
  EXPECT_TRUE(matcher.Match(GpsTrajectory{}).empty());
}

TEST_F(MapMatchingTest, FarAwayPointFailsGracefully) {
  HmmMapMatcher matcher(&net_, {});
  GpsTrajectory gps;
  gps.points.push_back({1e7, 1e7, 0});
  EXPECT_TRUE(matcher.Match(gps).empty());
}

}  // namespace
}  // namespace start::traj
