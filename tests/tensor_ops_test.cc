#include "tensor/ops.h"

#include <cmath>
#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace start::tensor {
namespace {

TEST(TensorFactoryTest, ZerosOnesFull) {
  const Tensor z = Tensor::Zeros(Shape({2, 3}));
  const Tensor o = Tensor::Ones(Shape({2, 3}));
  const Tensor f = Tensor::Full(Shape({2, 3}), 2.5f);
  for (int64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(z.data()[i], 0.0f);
    EXPECT_EQ(o.data()[i], 1.0f);
    EXPECT_EQ(f.data()[i], 2.5f);
  }
}

TEST(TensorFactoryTest, FromVectorAndAt) {
  const Tensor t = Tensor::FromVector(Shape({2, 2}), {1, 2, 3, 4});
  EXPECT_EQ(t.at({0, 0}), 1.0f);
  EXPECT_EQ(t.at({0, 1}), 2.0f);
  EXPECT_EQ(t.at({1, 0}), 3.0f);
  EXPECT_EQ(t.at({1, 1}), 4.0f);
}

TEST(TensorFactoryTest, RandRespectsBounds) {
  common::Rng rng(1);
  const Tensor t = Tensor::Rand(Shape({100}), &rng, -0.5f, 0.5f);
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_GE(t.data()[i], -0.5f);
    EXPECT_LT(t.data()[i], 0.5f);
  }
}

TEST(ElementwiseTest, AddSameShape) {
  const Tensor a = Tensor::FromVector(Shape({3}), {1, 2, 3});
  const Tensor b = Tensor::FromVector(Shape({3}), {10, 20, 30});
  const Tensor c = Add(a, b);
  EXPECT_EQ(c.data()[0], 11.0f);
  EXPECT_EQ(c.data()[2], 33.0f);
}

TEST(ElementwiseTest, AddBroadcastRow) {
  const Tensor a = Tensor::FromVector(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  const Tensor b = Tensor::FromVector(Shape({3}), {10, 20, 30});
  const Tensor c = Add(a, b);
  EXPECT_EQ(c.at({0, 0}), 11.0f);
  EXPECT_EQ(c.at({1, 2}), 36.0f);
}

TEST(ElementwiseTest, MulBroadcastColumn) {
  const Tensor a = Tensor::FromVector(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  const Tensor b = Tensor::FromVector(Shape({2, 1}), {2, 10});
  const Tensor c = Mul(a, b);
  EXPECT_EQ(c.at({0, 1}), 4.0f);
  EXPECT_EQ(c.at({1, 0}), 40.0f);
}

TEST(ElementwiseTest, SubDivNegScale) {
  const Tensor a = Tensor::FromVector(Shape({2}), {6, 9});
  const Tensor b = Tensor::FromVector(Shape({2}), {2, 3});
  EXPECT_EQ(Sub(a, b).data()[1], 6.0f);
  EXPECT_EQ(Div(a, b).data()[0], 3.0f);
  EXPECT_EQ(Neg(a).data()[0], -6.0f);
  EXPECT_EQ(Scale(a, 0.5f).data()[1], 4.5f);
  EXPECT_EQ(AddScalar(a, 1.0f).data()[0], 7.0f);
}

TEST(ActivationTest, ReluFamilies) {
  const Tensor x = Tensor::FromVector(Shape({4}), {-2, -0.5, 0.5, 2});
  const Tensor r = Relu(x);
  EXPECT_EQ(r.data()[0], 0.0f);
  EXPECT_EQ(r.data()[3], 2.0f);
  const Tensor lr = LeakyRelu(x, 0.2f);
  EXPECT_FLOAT_EQ(lr.data()[0], -0.4f);
  EXPECT_FLOAT_EQ(lr.data()[2], 0.5f);
  const Tensor e = Elu(x);
  EXPECT_NEAR(e.data()[0], std::exp(-2.0f) - 1.0f, 1e-6);
  EXPECT_EQ(e.data()[3], 2.0f);
}

TEST(ActivationTest, SigmoidTanhBounds) {
  const Tensor x = Tensor::FromVector(Shape({3}), {-10, 0, 10});
  const Tensor s = Sigmoid(x);
  EXPECT_NEAR(s.data()[0], 0.0, 1e-4);
  EXPECT_NEAR(s.data()[1], 0.5, 1e-6);
  EXPECT_NEAR(s.data()[2], 1.0, 1e-4);
  const Tensor t = Tanh(x);
  EXPECT_NEAR(t.data()[1], 0.0, 1e-6);
  EXPECT_NEAR(t.data()[2], 1.0, 1e-4);
}

TEST(MatMulTest, Known2x2) {
  const Tensor a = Tensor::FromVector(Shape({2, 2}), {1, 2, 3, 4});
  const Tensor b = Tensor::FromVector(Shape({2, 2}), {5, 6, 7, 8});
  const Tensor c = MatMul(a, b);
  EXPECT_EQ(c.at({0, 0}), 19.0f);
  EXPECT_EQ(c.at({0, 1}), 22.0f);
  EXPECT_EQ(c.at({1, 0}), 43.0f);
  EXPECT_EQ(c.at({1, 1}), 50.0f);
}

TEST(MatMulTest, RectangularShapes) {
  common::Rng rng(2);
  const Tensor a = Tensor::Rand(Shape({3, 5}), &rng, -1, 1);
  const Tensor b = Tensor::Rand(Shape({5, 7}), &rng, -1, 1);
  const Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), Shape({3, 7}));
  // Spot-check one entry against a manual dot product.
  double acc = 0.0;
  for (int64_t k = 0; k < 5; ++k) acc += a.at({1, k}) * b.at({k, 3});
  EXPECT_NEAR(c.at({1, 3}), acc, 1e-5);
}

TEST(MatMulTest, BatchMatMulMatchesPerBatch) {
  common::Rng rng(3);
  const Tensor a = Tensor::Rand(Shape({2, 3, 4}), &rng, -1, 1);
  const Tensor b = Tensor::Rand(Shape({2, 4, 5}), &rng, -1, 1);
  const Tensor c = BatchMatMul(a, b);
  EXPECT_EQ(c.shape(), Shape({2, 3, 5}));
  for (int64_t batch = 0; batch < 2; ++batch) {
    const Tensor a2 = Reshape(Slice(a, 0, batch, 1), Shape({3, 4}));
    const Tensor b2 = Reshape(Slice(b, 0, batch, 1), Shape({4, 5}));
    const Tensor c2 = MatMul(a2, b2);
    for (int64_t i = 0; i < 3; ++i) {
      for (int64_t j = 0; j < 5; ++j) {
        EXPECT_NEAR(c.at({batch, i, j}), c2.at({i, j}), 1e-5);
      }
    }
  }
}

TEST(MatMulTest, BatchMatMulTransposeB) {
  common::Rng rng(4);
  const Tensor a = Tensor::Rand(Shape({2, 3, 4}), &rng, -1, 1);
  const Tensor b = Tensor::Rand(Shape({2, 5, 4}), &rng, -1, 1);
  const Tensor c = BatchMatMul(a, b, /*transpose_b=*/true);
  EXPECT_EQ(c.shape(), Shape({2, 3, 5}));
  double acc = 0.0;
  for (int64_t k = 0; k < 4; ++k) acc += a.at({1, 2, k}) * b.at({1, 3, k});
  EXPECT_NEAR(c.at({1, 2, 3}), acc, 1e-5);
}

TEST(ShapeOpsTest, TransposeRoundTrip) {
  const Tensor a = Tensor::FromVector(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  const Tensor t = Transpose(a);
  EXPECT_EQ(t.shape(), Shape({3, 2}));
  EXPECT_EQ(t.at({0, 1}), 4.0f);
  const Tensor tt = Transpose(t);
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(tt.data()[i], a.data()[i]);
}

TEST(ShapeOpsTest, ConcatDim0AndDim1) {
  const Tensor a = Tensor::FromVector(Shape({1, 2}), {1, 2});
  const Tensor b = Tensor::FromVector(Shape({1, 2}), {3, 4});
  const Tensor c0 = Concat({a, b}, 0);
  EXPECT_EQ(c0.shape(), Shape({2, 2}));
  EXPECT_EQ(c0.at({1, 0}), 3.0f);
  const Tensor c1 = Concat({a, b}, 1);
  EXPECT_EQ(c1.shape(), Shape({1, 4}));
  EXPECT_EQ(c1.at({0, 3}), 4.0f);
}

TEST(ShapeOpsTest, SliceMiddle) {
  const Tensor a = Tensor::FromVector(Shape({4, 2}),
                                      {0, 1, 2, 3, 4, 5, 6, 7});
  const Tensor s = Slice(a, 0, 1, 2);
  EXPECT_EQ(s.shape(), Shape({2, 2}));
  EXPECT_EQ(s.at({0, 0}), 2.0f);
  EXPECT_EQ(s.at({1, 1}), 5.0f);
}

TEST(ShapeOpsTest, SliceLastDimOf3d) {
  common::Rng rng(5);
  const Tensor a = Tensor::Rand(Shape({2, 3, 6}), &rng, -1, 1);
  const Tensor s = Slice(a, 2, 2, 2);
  EXPECT_EQ(s.shape(), Shape({2, 3, 2}));
  EXPECT_EQ(s.at({1, 2, 0}), a.at({1, 2, 2}));
}

TEST(ShapeOpsTest, GatherRows) {
  const Tensor a = Tensor::FromVector(Shape({3, 2}), {0, 1, 10, 11, 20, 21});
  const Tensor g = GatherRows(a, {2, 0, 2});
  EXPECT_EQ(g.shape(), Shape({3, 2}));
  EXPECT_EQ(g.at({0, 0}), 20.0f);
  EXPECT_EQ(g.at({1, 1}), 1.0f);
  EXPECT_EQ(g.at({2, 0}), 20.0f);
}

TEST(ReduceTest, SumAndMean) {
  const Tensor a = Tensor::FromVector(Shape({2, 2}), {1, 2, 3, 4});
  EXPECT_EQ(Sum(a).item(), 10.0f);
  EXPECT_EQ(Mean(a).item(), 2.5f);
}

TEST(ReduceTest, SoftmaxRowsSumToOne) {
  common::Rng rng(6);
  const Tensor a = Tensor::Rand(Shape({4, 7}), &rng, -3, 3);
  const Tensor s = SoftmaxLastDim(a);
  for (int64_t r = 0; r < 4; ++r) {
    float total = 0.0f;
    for (int64_t c = 0; c < 7; ++c) total += s.at({r, c});
    EXPECT_NEAR(total, 1.0f, 1e-5);
  }
}

TEST(ReduceTest, SoftmaxHandlesLargeLogits) {
  const Tensor a = Tensor::FromVector(Shape({1, 3}), {1000, 1000, -1000});
  const Tensor s = SoftmaxLastDim(a);
  EXPECT_NEAR(s.data()[0], 0.5f, 1e-5);
  EXPECT_NEAR(s.data()[2], 0.0f, 1e-6);
}

TEST(ReduceTest, LogSoftmaxMatchesLogOfSoftmax) {
  common::Rng rng(7);
  const Tensor a = Tensor::Rand(Shape({2, 5}), &rng, -2, 2);
  const Tensor ls = LogSoftmaxLastDim(a);
  const Tensor s = SoftmaxLastDim(a);
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(ls.data()[i], std::log(s.data()[i]), 1e-5);
  }
}

TEST(ReduceTest, LayerNormNormalises) {
  common::Rng rng(8);
  const Tensor x = Tensor::Rand(Shape({3, 16}), &rng, -5, 5);
  const Tensor gamma = Tensor::Ones(Shape({16}));
  const Tensor beta = Tensor::Zeros(Shape({16}));
  const Tensor y = LayerNorm(x, gamma, beta);
  for (int64_t r = 0; r < 3; ++r) {
    double mean = 0.0, var = 0.0;
    for (int64_t c = 0; c < 16; ++c) mean += y.at({r, c});
    mean /= 16.0;
    for (int64_t c = 0; c < 16; ++c) {
      var += (y.at({r, c}) - mean) * (y.at({r, c}) - mean);
    }
    var /= 16.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(ReduceTest, L2NormalizeRowsUnitNorm) {
  common::Rng rng(9);
  const Tensor x = Tensor::Rand(Shape({5, 8}), &rng, -2, 2);
  const Tensor y = L2NormalizeRows(x);
  for (int64_t r = 0; r < 5; ++r) {
    double norm = 0.0;
    for (int64_t c = 0; c < 8; ++c) norm += y.at({r, c}) * y.at({r, c});
    EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-4);
  }
}

TEST(LossTest, CrossEntropyUniformLogits) {
  const Tensor logits = Tensor::Zeros(Shape({2, 4}));
  const Tensor loss = CrossEntropyWithLogits(logits, {1, 3});
  EXPECT_NEAR(loss.item(), std::log(4.0f), 1e-5);
}

TEST(LossTest, CrossEntropyIgnoreIndex) {
  const Tensor logits = Tensor::FromVector(Shape({2, 2}), {10, -10, 0, 0});
  // Second row ignored; first row is confidently correct.
  const Tensor loss = CrossEntropyWithLogits(logits, {0, -1}, -1);
  EXPECT_LT(loss.item(), 1e-3);
}

TEST(LossTest, MseKnownValue) {
  const Tensor pred = Tensor::FromVector(Shape({2}), {1, 3});
  const Tensor loss = MseLoss(pred, {0, 0});
  EXPECT_NEAR(loss.item(), (1.0f + 9.0f) / 2.0f, 1e-6);
}

TEST(LossTest, BceMatchesManual) {
  const Tensor logits = Tensor::FromVector(Shape({2}), {0, 0});
  const Tensor loss = BceWithLogits(logits, {1.0f, 0.0f});
  EXPECT_NEAR(loss.item(), std::log(2.0f), 1e-5);
}

TEST(SegmentTest, SegmentSoftmaxPerSegmentSumsToOne) {
  const Tensor scores =
      Tensor::FromVector(Shape({5}), {1, 2, 3, -1, 0.5});
  const std::vector<int64_t> seg = {0, 0, 1, 1, 1};
  const Tensor a = SegmentSoftmax(scores, seg, 2);
  EXPECT_NEAR(a.data()[0] + a.data()[1], 1.0f, 1e-5);
  EXPECT_NEAR(a.data()[2] + a.data()[3] + a.data()[4], 1.0f, 1e-5);
  EXPECT_GT(a.data()[1], a.data()[0]);  // larger score -> larger weight
}

TEST(SegmentTest, SegmentWeightedSumAggregates) {
  const Tensor values =
      Tensor::FromVector(Shape({3, 2}), {1, 0, 0, 1, 2, 2});
  const Tensor weights = Tensor::FromVector(Shape({3}), {0.5, 0.5, 2.0});
  const std::vector<int64_t> seg = {0, 0, 1};
  const Tensor out = SegmentWeightedSum(values, weights, seg, 2);
  EXPECT_EQ(out.shape(), Shape({2, 2}));
  EXPECT_FLOAT_EQ(out.at({0, 0}), 0.5f);
  EXPECT_FLOAT_EQ(out.at({0, 1}), 0.5f);
  EXPECT_FLOAT_EQ(out.at({1, 0}), 4.0f);
}

TEST(DropoutTest, EvalModeIsIdentity) {
  common::Rng rng(10);
  const Tensor x = Tensor::Rand(Shape({50}), &rng, -1, 1);
  const Tensor y = Dropout(x, 0.5f, /*training=*/false);
  for (int64_t i = 0; i < 50; ++i) EXPECT_EQ(y.data()[i], x.data()[i]);
}

TEST(DropoutTest, TrainingDropsAndRescales) {
  common::SeedGlobalRng(42);
  const Tensor x = Tensor::Ones(Shape({10000}));
  const Tensor y = Dropout(x, 0.3f, /*training=*/true);
  int64_t zeros = 0;
  double sum = 0.0;
  for (int64_t i = 0; i < 10000; ++i) {
    if (y.data()[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(y.data()[i], 1.0f / 0.7f, 1e-5);
    }
    sum += y.data()[i];
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.3, 0.03);
  EXPECT_NEAR(sum / 10000.0, 1.0, 0.05);  // inverted dropout keeps the mean
}

TEST(AutogradTest, NoGradGuardSuppressesGraph) {
  Tensor a = Tensor::Ones(Shape({2}));
  a.set_requires_grad(true);
  NoGradGuard guard;
  const Tensor b = Scale(a, 2.0f);
  EXPECT_FALSE(b.requires_grad());
}

TEST(AutogradTest, DetachBreaksGraph) {
  Tensor a = Tensor::Ones(Shape({2}));
  a.set_requires_grad(true);
  const Tensor b = Scale(a, 2.0f).Detach();
  EXPECT_FALSE(b.requires_grad());
  EXPECT_EQ(b.data()[0], 2.0f);
}

TEST(AutogradTest, GradAccumulatesOverTwoBackwards) {
  Tensor a = Tensor::Ones(Shape({1}));
  a.set_requires_grad(true);
  Tensor loss = Scale(a, 3.0f);
  loss.Backward();
  loss.Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 6.0f);
}

TEST(AutogradTest, DiamondGraphSumsPaths) {
  // y = a*a + a  => dy/da = 2a + 1 = 5 at a = 2.
  Tensor a = Tensor::FromVector(Shape({1}), {2.0f});
  a.set_requires_grad(true);
  Tensor y = Add(Mul(a, a), a);
  y.Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 5.0f);
}

// ---- View semantics & aliasing --------------------------------------------

TEST(ViewTest, ReshapeAliasesStorage) {
  Tensor a = Tensor::FromVector(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  Tensor r = Reshape(a, Shape({3, 2}));
  EXPECT_EQ(r.impl()->storage, a.impl()->storage);
  EXPECT_EQ(r.data(), a.data());  // same buffer, no copy
  EXPECT_TRUE(r.is_contiguous());
}

TEST(ViewTest, SliceAnyDimIsZeroCopy) {
  common::Rng rng(77);
  const Tensor a = Tensor::Rand(Shape({4, 5, 6}), &rng, -1, 1);
  for (int64_t dim = 0; dim < 3; ++dim) {
    const Tensor s = Slice(a, dim, 1, 2);
    EXPECT_EQ(s.impl()->storage, a.impl()->storage) << "dim " << dim;
    EXPECT_EQ(s.offset(), a.strides()[static_cast<size_t>(dim)]);
    EXPECT_EQ(s.strides(), a.strides());
    EXPECT_EQ(s.at({1, 1, 1}),
              a.at({dim == 0 ? 2 : 1, dim == 1 ? 2 : 1, dim == 2 ? 2 : 1}));
  }
  // Only the leading-dim slice stays dense; inner-dim slices are strided.
  EXPECT_TRUE(Slice(a, 0, 1, 2).is_contiguous());
  EXPECT_FALSE(Slice(a, 1, 1, 2).is_contiguous());
  EXPECT_FALSE(Slice(a, 2, 1, 2).is_contiguous());
}

TEST(ViewTest, TransposeIsZeroCopyStrideSwap) {
  const Tensor a = Tensor::FromVector(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  const Tensor t = Transpose(a);
  EXPECT_EQ(t.impl()->storage, a.impl()->storage);
  EXPECT_FALSE(t.is_contiguous());
  EXPECT_EQ(t.strides(), (std::vector<int64_t>{1, 3}));
  EXPECT_EQ(t.at({2, 1}), 6.0f);
  const Tensor dense = t.Contiguous();
  EXPECT_NE(dense.impl()->storage, a.impl()->storage);
  EXPECT_TRUE(dense.is_contiguous());
  EXPECT_EQ(dense.data()[1], 4.0f);  // row-major [3,2]
}

TEST(ViewTest, SelectDropsDimZeroCopy) {
  common::Rng rng(78);
  const Tensor a = Tensor::Rand(Shape({3, 4, 5}), &rng, -1, 1);
  const Tensor s = Select(a, 1, 2);
  EXPECT_EQ(s.shape(), Shape({3, 5}));
  EXPECT_EQ(s.impl()->storage, a.impl()->storage);
  EXPECT_EQ(s.at({1, 3}), a.at({1, 2, 3}));
}

TEST(ViewTest, GatherRowsConsecutiveRunIsView) {
  const Tensor a = Tensor::FromVector(Shape({4, 2}),
                                      {0, 1, 10, 11, 20, 21, 30, 31});
  const Tensor g = GatherRows(a, {1, 2, 3});
  EXPECT_EQ(g.impl()->storage, a.impl()->storage);  // zero-copy row view
  EXPECT_EQ(g.at({0, 1}), 11.0f);
  // Non-consecutive indices still copy.
  const Tensor g2 = GatherRows(a, {2, 0});
  EXPECT_NE(g2.impl()->storage, a.impl()->storage);
}

TEST(ViewTest, WritesThroughViewVisibleInBase) {
  Tensor a = Tensor::Zeros(Shape({4, 3}));
  Tensor row = Slice(a, 0, 2, 1);  // contiguous [1,3] view of row 2
  ASSERT_TRUE(row.is_contiguous());
  row.data()[1] = 42.0f;
  EXPECT_EQ(a.at({2, 1}), 42.0f);
  // And base writes are visible through the view.
  a.data()[2 * 3 + 2] = 7.0f;
  EXPECT_EQ(row.at({0, 2}), 7.0f);
}

TEST(ViewTest, ReshapeOfInnerSliceStaysZeroCopy) {
  // The rnn time-step pattern: Slice dim 1 to length 1, then drop the dim.
  common::Rng rng(79);
  const Tensor x = Tensor::Rand(Shape({2, 5, 3}), &rng, -1, 1);
  const Tensor xt = Reshape(Slice(x, 1, 3, 1), Shape({2, 3}));
  EXPECT_EQ(xt.impl()->storage, x.impl()->storage);
  EXPECT_EQ(xt.at({1, 2}), x.at({1, 3, 2}));
}

TEST(ViewTest, DetachCopiesOnlyViewedExtent) {
  common::Rng rng(80);
  const Tensor a = Tensor::Rand(Shape({50, 40}), &rng, -1, 1);
  const Tensor d = Slice(a, 1, 4, 2).Detach();
  EXPECT_EQ(d.shape(), Shape({50, 2}));
  EXPECT_EQ(static_cast<int64_t>(d.impl()->storage->size()), d.numel());
  EXPECT_NE(d.impl()->storage, a.impl()->storage);
  EXPECT_TRUE(d.is_contiguous());
  EXPECT_FALSE(d.requires_grad());
  EXPECT_EQ(d.at({10, 1}), a.at({10, 5}));
}

TEST(ViewTest, ElementwiseOnStridedViewsMatchesDense) {
  common::Rng rng(81);
  const Tensor a = Tensor::Rand(Shape({3, 4}), &rng, -1, 1);
  const Tensor b = Tensor::Rand(Shape({4, 3}), &rng, -1, 1);
  // Strided (transpose view) operand vs explicitly materialised operand.
  const Tensor via_view = Mul(Transpose(a), b);
  const Tensor via_dense = Mul(Transpose(a).Contiguous(), b);
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      EXPECT_FLOAT_EQ(via_view.at({i, j}), via_dense.at({i, j}));
    }
  }
}

TEST(ViewTest, MatMulOnTransposeViewMatchesMaterialised) {
  common::Rng rng(82);
  const Tensor a = Tensor::Rand(Shape({3, 4}), &rng, -1, 1);
  const Tensor b = Tensor::Rand(Shape({5, 4}), &rng, -1, 1);
  const Tensor via_view = MatMul(a, Transpose(b));       // NT fast path
  const Tensor via_dense = MatMul(a, Transpose(b).Contiguous());
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 5; ++j) {
      EXPECT_FLOAT_EQ(via_view.at({i, j}), via_dense.at({i, j}));
    }
  }
}

TEST(BufferPoolTest, RecyclesBuffers) {
  auto& pool = BufferPool::Global();
  pool.Trim();
  const auto before = pool.stats();
  {
    auto buf = pool.Acquire(1024);
    buf->at(0) = 1.0f;
  }  // released back to the free list
  auto buf2 = pool.Acquire(1000);  // same power-of-two bucket: must be a hit
  const auto after = pool.stats();
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_EQ(after.recycled, before.recycled + 1);
}

TEST(DropoutTest, ExplicitRngIsReproducible) {
  common::Rng rng_a(123), rng_b(123);
  const Tensor x = Tensor::Ones(Shape({256}));
  const Tensor y1 = Dropout(x, 0.5f, /*training=*/true, &rng_a);
  const Tensor y2 = Dropout(x, 0.5f, /*training=*/true, &rng_b);
  for (int64_t i = 0; i < 256; ++i) EXPECT_EQ(y1.data()[i], y2.data()[i]);
}

}  // namespace
}  // namespace start::tensor
