// Back-compat test over the COMMITTED golden checkpoint fixtures
// (tests/fixtures/golden_v{1,2}.sttn, generated once by
// tools/make_golden_fixtures.cc): today's loader must read yesterday's
// artifacts bitwise. Unlike the round-trip tests in tensor_serialize_test /
// checkpoint_test — which stay green when the writer and reader change
// *together* — these fixtures pin the on-disk bytes, so any serializer
// change that silently breaks old checkpoints fails here.
#include <gtest/gtest.h>

#include <vector>

#include "tensor/serialize.h"
#include "testing.h"

namespace start::tensor {
namespace {

// The fixture payload formulas — keep in sync with
// tools/make_golden_fixtures.cc.
std::vector<float> GoldenAlpha() {
  std::vector<float> v(12);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<float>(i) * 0.25f - 1.5f;
  }
  return v;
}

std::vector<float> GoldenLegacyTable() {
  std::vector<float> v(12);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = 2.0f - static_cast<float>(i) * 0.5f;
  }
  return v;
}

std::vector<int8_t> GoldenQ8Codes() {
  std::vector<int8_t> v(3 * 5);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<int8_t>(static_cast<int>(i * 37 % 255) - 127);
  }
  return v;
}

std::vector<float> GoldenQ8Scales() {
  return {0.0078125f, 0.015625f, 0.0234375f};  // (r+1) / 128
}

std::vector<float> GoldenHalfTable() {
  std::vector<float> v(8);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<float>(i) * 0.25f - 2.0f;
  }
  return v;
}

constexpr uint64_t kGoldenMetaTag = 0x60a1d2c3b4a59687ULL;
constexpr uint64_t kGoldenQ8MetaTag = 0x51e8f00dc0ffee42ULL;

std::vector<float> Flatten(const Tensor& t) {
  const Tensor dense = t.is_contiguous() ? t : t.Detach();
  return std::vector<float>(dense.data(), dense.data() + dense.numel());
}

TEST(GoldenCheckpointTest, V1ContainerReadsBitwise) {
  const auto loaded =
      LoadBundle(testutil::FixtureDir() + "/golden_v1.sttn");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString()
                           << " — if the fixture is missing, regenerate via "
                              "tools/make_golden_fixtures.cc (deliberate "
                              "format breaks only)";
  // v1 carries no meta tag; the loader must default it, not misparse bytes.
  EXPECT_EQ(loaded->meta_tag, 0u);
  ASSERT_EQ(loaded->records.tensors.size(), 1u);
  const Tensor& t = loaded->records.tensors.at("legacy.table");
  ASSERT_EQ(t.shape(), Shape({4, 3}));
  testutil::ExpectFloatsBitwiseEqual(Flatten(t), GoldenLegacyTable(),
                                     "legacy.table");
}

TEST(GoldenCheckpointTest, V2ContainerReadsBitwise) {
  const auto loaded =
      LoadBundle(testutil::FixtureDir() + "/golden_v2.sttn");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->meta_tag, kGoldenMetaTag);

  ASSERT_EQ(loaded->records.tensors.size(), 2u);
  const Tensor& alpha = loaded->records.tensors.at("weights.alpha");
  ASSERT_EQ(alpha.shape(), Shape({3, 4}));
  testutil::ExpectFloatsBitwiseEqual(Flatten(alpha), GoldenAlpha(),
                                     "weights.alpha");
  const Tensor& beta = loaded->records.tensors.at("weights.beta");
  ASSERT_EQ(beta.shape(), Shape({2, 2, 2}));
  testutil::ExpectFloatsBitwiseEqual(
      Flatten(beta),
      {8.0f, -4.0f, 2.0f, -1.0f, 0.5f, -0.25f, 0.125f, -0.0625f},
      "weights.beta");

  const std::vector<double> loss = {0.5, -1.25, 3.75};
  EXPECT_EQ(loaded->records.doubles.at("trainer.loss_sum"), loss);
  const std::vector<int64_t> cursor = {-3, 0, 1LL << 40};
  EXPECT_EQ(loaded->records.ints.at("trainer.cursor"), cursor);
  const std::vector<uint64_t> rng = {0x0123456789abcdefULL, ~0ULL};
  EXPECT_EQ(loaded->records.uints.at("trainer.rng_state"), rng);
}

// The quantized-serving record kinds (int8 tensor + per-row scales, f16
// tensor) read back bitwise from the committed fixture — pins the
// serving-snapshot payload layout the same way v2 pins the f32 kinds.
TEST(GoldenCheckpointTest, Q8ContainerReadsBitwise) {
  const auto loaded =
      LoadBundle(testutil::FixtureDir() + "/golden_q8.sttn");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString()
                           << " — if the fixture is missing, regenerate via "
                              "tools/make_golden_fixtures.cc (deliberate "
                              "format breaks only)";
  EXPECT_EQ(loaded->meta_tag, kGoldenQ8MetaTag);

  ASSERT_EQ(loaded->records.qtensors.size(), 1u);
  const QuantizedTensor& q = loaded->records.qtensors.at("encoder0.attn.wq");
  EXPECT_EQ(q.rows, 3);
  EXPECT_EQ(q.cols, 5);
  EXPECT_EQ(q.data, GoldenQ8Codes());
  testutil::ExpectFloatsBitwiseEqual(q.scales, GoldenQ8Scales(),
                                     "q8 scales");

  ASSERT_EQ(loaded->records.halfs.size(), 1u);
  const Tensor& half = loaded->records.halfs.at("ext_table");
  ASSERT_EQ(half.shape(), Shape({2, 4}));
  testutil::ExpectFloatsBitwiseEqual(Flatten(half), GoldenHalfTable(),
                                     "ext_table");

  const std::vector<uint64_t> fmt = {1};
  EXPECT_EQ(loaded->records.uints.at("snapshot.format"), fmt);
}

// A corrupted quantized fixture must be REJECTED — the CRC covers the int8
// code payload too, not just the f32 kinds.
TEST(GoldenCheckpointTest, CorruptedGoldenQ8IsRejected) {
  auto bytes =
      testutil::ReadFileBytes(testutil::FixtureDir() + "/golden_q8.sttn");
  ASSERT_GT(bytes.size(), 64u);
  bytes[bytes.size() / 2] ^= 0x10;  // flip one payload bit
  testutil::TempDir dir;
  const std::string path = dir.File("golden_q8_corrupt.sttn");
  testutil::WriteFileBytes(path, bytes);
  const auto result = LoadBundle(path);
  ASSERT_FALSE(result.ok());
}

// A corrupted copy of the golden v2 fixture must still be REJECTED — the
// committed bytes also pin that the CRC actually covers the payload.
TEST(GoldenCheckpointTest, CorruptedGoldenV2IsRejected) {
  auto bytes =
      testutil::ReadFileBytes(testutil::FixtureDir() + "/golden_v2.sttn");
  ASSERT_GT(bytes.size(), 64u);
  bytes[bytes.size() / 2] ^= 0x10;  // flip one payload bit
  testutil::TempDir dir;
  const std::string path = dir.File("golden_v2_corrupt.sttn");
  testutil::WriteFileBytes(path, bytes);
  const auto result = LoadBundle(path);
  ASSERT_FALSE(result.ok());
}

}  // namespace
}  // namespace start::tensor
