// Multi-city serving integration: a GraphRegistry with two synthetic cities
// wired through serve::CityRouter — per-city streaming ingestion stays
// isolated (each lane map-matches against its own network and upserts into
// its own index), travel-time estimates come from each city's contraction
// hierarchy and agree with a direct Dijkstra over the same metric, and the
// error paths (unknown city, double open, null deps) return typed statuses.
#include "serve/city_router.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/checkpoint.h"
#include "core/start_model.h"
#include "roadnet/graph_registry.h"
#include "roadnet/shortest_path.h"
#include "serve/embedding_index.h"
#include "serve/frozen_encoder.h"
#include "testing.h"
#include "traj/map_matching.h"

namespace start {
namespace {

using serve::StreamItem;

std::string TempPath(const char* name) {
  static testutil::TempDir dir;
  return dir.File(name);
}

/// One self-contained serving city: world + frozen encoder + exact index.
struct ServingCity {
  std::unique_ptr<testutil::TinyWorld> world;
  std::shared_ptr<const roadnet::RoadNetwork> net;  ///< Owns world->net.
  std::unique_ptr<serve::FrozenEncoder> encoder;
  std::unique_ptr<serve::EmbeddingIndex> index;
};

class CityRouterTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = new core::StartConfig(testutil::TinyStartConfig());
    porto_ = MakeServingCity(5, "porto").release();
    beijing_ = MakeServingCity(4, "beijing").release();
    registry_ = new roadnet::GraphRegistry();
    ASSERT_TRUE(registry_->Register("porto", porto_->net).ok());
    ASSERT_TRUE(registry_->Register("beijing", beijing_->net).ok());
  }

  static void TearDownTestSuite() {
    delete registry_;
    delete beijing_;
    delete porto_;
    delete config_;
    registry_ = nullptr;
    beijing_ = nullptr;
    porto_ = nullptr;
    config_ = nullptr;
  }

  static std::unique_ptr<ServingCity> MakeServingCity(int64_t grid,
                                                      const char* name) {
    auto city = std::make_unique<ServingCity>();
    testutil::TinyWorldOptions options;
    options.grid_width = grid;
    options.grid_height = grid;
    city->world = testutil::MakeTinyWorld(options);
    city->net = std::shared_ptr<const roadnet::RoadNetwork>(
        std::move(city->world->net));
    common::Rng rng(7);
    core::StartModel model(*config_, city->net.get(),
                           city->world->transfer.get(), &rng);
    const std::string path =
        TempPath((std::string(name) + "_model.sttn").c_str());
    EXPECT_TRUE(core::SaveModelCheckpoint(path, model,
                                          core::HashStartConfig(*config_))
                    .ok());
    auto loaded = serve::FrozenEncoder::Load(path, *config_, city->net.get(),
                                             city->world->transfer.get());
    EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
    city->encoder = std::move(loaded).value();
    city->index = std::make_unique<serve::EmbeddingIndex>(config_->d);
    return city;
  }

  /// GPS streams simulated from a city's corpus, ids offset by `id_base` so
  /// the two cities' ids are disjoint.
  static std::vector<StreamItem> MakeStream(const ServingCity& city,
                                            int64_t n, int64_t id_base) {
    common::Rng rng(99);
    std::vector<StreamItem> items;
    for (size_t i = 0; i < city.world->corpus.size() &&
                       items.size() < static_cast<size_t>(n);
         ++i) {
      StreamItem item;
      item.id = id_base + static_cast<int64_t>(i);
      item.gps = traj::SimulateGps(*city.net, city.world->corpus[i],
                                   /*sample_interval_s=*/30.0,
                                   /*noise_m=*/10.0, &rng);
      if (item.gps.points.size() >= 2) items.push_back(std::move(item));
    }
    return items;
  }

  static serve::CityRouter::CityConfig ConfigFor(const ServingCity& city) {
    serve::CityRouter::CityConfig config;
    config.encoder = city.encoder.get();
    config.index = city.index.get();
    config.stream.match_workers = 2;
    config.stream.embed_workers = 2;
    return config;
  }

  static core::StartConfig* config_;
  static ServingCity* porto_;
  static ServingCity* beijing_;
  static roadnet::GraphRegistry* registry_;
};

core::StartConfig* CityRouterTest::config_ = nullptr;
ServingCity* CityRouterTest::porto_ = nullptr;
ServingCity* CityRouterTest::beijing_ = nullptr;
roadnet::GraphRegistry* CityRouterTest::registry_ = nullptr;

TEST_F(CityRouterTest, TwoCitiesIngestAndQueryInIsolation) {
  serve::CityRouter router(registry_);
  ASSERT_TRUE(router.OpenCity("porto", ConfigFor(*porto_)).ok());
  ASSERT_TRUE(router.OpenCity("beijing", ConfigFor(*beijing_)).ok());
  EXPECT_EQ(router.Cities(),
            (std::vector<std::string>{"beijing", "porto"}));

  const auto porto_stream = MakeStream(*porto_, 8, /*id_base=*/0);
  const auto beijing_stream = MakeStream(*beijing_, 8, /*id_base=*/1000);
  ASSERT_GE(porto_stream.size(), 4u);
  ASSERT_GE(beijing_stream.size(), 4u);
  for (const auto& item : porto_stream) {
    ASSERT_TRUE(router.Push("porto", item).ok());
  }
  for (const auto& item : beijing_stream) {
    ASSERT_TRUE(router.Push("beijing", item).ok());
  }
  ASSERT_TRUE(router.Flush("porto").ok());
  ASSERT_TRUE(router.Flush("beijing").ok());

  const auto porto_stats = router.Stats("porto");
  ASSERT_TRUE(porto_stats.ok());
  EXPECT_GT(porto_stats.value().ingested(), 0);

  // Each lane upserted into its own index: id ranges stay disjoint.
  EXPECT_GT(porto_->index->size(), 0);
  EXPECT_GT(beijing_->index->size(), 0);
  for (const auto& item : porto_stream) {
    EXPECT_FALSE(beijing_->index->Contains(item.id));
  }
  std::vector<float> probe(static_cast<size_t>(config_->d), 0.0f);
  probe[0] = 1.0f;
  const auto porto_hits = router.Query("porto", probe, 4);
  ASSERT_TRUE(porto_hits.ok());
  ASSERT_FALSE(porto_hits.value().empty());
  for (const auto& hit : porto_hits.value()) EXPECT_LT(hit.id, 1000);
  const auto beijing_hits = router.Query("beijing", probe, 4);
  ASSERT_TRUE(beijing_hits.ok());
  ASSERT_FALSE(beijing_hits.value().empty());
  for (const auto& hit : beijing_hits.value()) EXPECT_GE(hit.id, 1000);
}

TEST_F(CityRouterTest, TravelTimeMatchesDirectDijkstraPerCity) {
  serve::CityRouter router(registry_);
  ASSERT_TRUE(router.OpenCity("porto", ConfigFor(*porto_)).ok());
  ASSERT_TRUE(router.OpenCity("beijing", ConfigFor(*beijing_)).ok());
  for (const auto* city : {porto_, beijing_}) {
    const std::string name =
        city == porto_ ? "porto" : "beijing";
    const auto& net = *city->net;
    auto weight = [&](int64_t v) { return net.FreeFlowTravelTime(v); };
    const int64_t n = net.num_segments();
    for (const auto [src, dst] : {std::pair<int64_t, int64_t>{0, n - 1},
                                  {n / 2, n / 3}, {1, n - 2}}) {
      const auto got = router.TravelTimeSeconds(name, src, dst);
      const auto want = roadnet::ShortestPath(net, src, dst, weight);
      ASSERT_EQ(got.ok(), want.has_value()) << name << " " << src << "->"
                                            << dst;
      if (!want.has_value()) continue;
      // CH costs are quantized to cost_scale (1 ms): agreement is exact up
      // to one quantum per path hop.
      EXPECT_NEAR(got.value(), want->cost,
                  1e-3 * static_cast<double>(want->path.size()) + 1e-9);
    }
  }
}

TEST_F(CityRouterTest, ErrorPathsReturnTypedStatuses) {
  serve::CityRouter router(registry_);
  // Unknown registry city.
  EXPECT_EQ(router.OpenCity("atlantis", ConfigFor(*porto_)).code(),
            common::StatusCode::kNotFound);
  // Null deps.
  serve::CityRouter::CityConfig null_config;
  EXPECT_EQ(router.OpenCity("porto", null_config).code(),
            common::StatusCode::kInvalidArgument);
  // Routing to a city with no open lane.
  EXPECT_EQ(router.Push("porto", {}).code(), common::StatusCode::kNotFound);
  EXPECT_EQ(router.Flush("porto").code(), common::StatusCode::kNotFound);
  EXPECT_EQ(router.TravelTimeSeconds("porto", 0, 1).status().code(),
            common::StatusCode::kNotFound);
  // Double open.
  ASSERT_TRUE(router.OpenCity("porto", ConfigFor(*porto_)).ok());
  EXPECT_EQ(router.OpenCity("porto", ConfigFor(*porto_)).code(),
            common::StatusCode::kAlreadyExists);
  // Bad segment ids on an open lane.
  EXPECT_EQ(router.TravelTimeSeconds("porto", -1, 0).status().code(),
            common::StatusCode::kOutOfRange);
  EXPECT_EQ(router
                .TravelTimeSeconds("porto",
                                   porto_->net->num_segments() + 5, 0)
                .status()
                .code(),
            common::StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace start
