// Thread-safety contract of the serving plane, run under ThreadSanitizer in
// CI: N client threads hammering one EmbeddingService must (a) be race-free,
// (b) produce embeddings bitwise identical to serial FrozenEncoder encodes
// regardless of how requests were coalesced into micro-batches, and (c)
// drain cleanly through backpressure and shutdown.
#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/checkpoint.h"
#include "core/start_model.h"
#include "data/dataset.h"
#include "roadnet/synthetic_city.h"
#include "serve/embedding_index.h"
#include "serve/embedding_service.h"
#include "serve/frozen_encoder.h"
#include "traj/trip_generator.h"

namespace start {
namespace {

class ServeConcurrencyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    city_ = new roadnet::RoadNetwork(roadnet::BuildSyntheticCity(
        {.grid_width = 5, .grid_height = 5, .seed = 8}));
    traffic_ = new traj::TrafficModel(city_, {});
    traj::TripGenerator::Config config;
    config.num_drivers = 5;
    config.num_days = 5;
    config.trips_per_driver_day = 3.0;
    config.seed = 21;
    traj::TripGenerator gen(traffic_, config);
    data::DatasetConfig ds;
    ds.min_length = 5;
    ds.min_user_trajectories = 2;
    corpus_ = new std::vector<traj::Trajectory>(
        data::TrajDataset::FromCorpus(*city_, gen.Generate(), ds).All());
    ASSERT_GE(corpus_->size(), 8u);
    transfer_ = new roadnet::TransferProbability(
        roadnet::TransferProbability::FromTrajectories(*city_, [] {
          std::vector<std::vector<int64_t>> seqs;
          for (const auto& t : *corpus_) seqs.push_back(t.roads);
          return seqs;
        }()));
    core::StartConfig model_config;
    model_config.d = 16;
    model_config.gat_layers = 2;
    model_config.gat_heads = {4, 1};
    model_config.encoder_layers = 1;
    model_config.encoder_heads = 2;
    model_config.max_len = 96;
    common::Rng rng(13);
    core::StartModel model(model_config, city_, transfer_, &rng);
    const std::string path =
        std::string(::testing::TempDir()) + "/serve_conc_model.sttn";
    ASSERT_TRUE(core::SaveModelCheckpoint(
                    path, model, core::HashStartConfig(model_config))
                    .ok());
    auto loaded =
        serve::FrozenEncoder::Load(path, model_config, city_, transfer_);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    frozen_ = std::move(loaded).value().release();
  }

  static void TearDownTestSuite() {
    delete frozen_;
    delete transfer_;
    delete corpus_;
    delete traffic_;
    delete city_;
    frozen_ = nullptr;
    transfer_ = nullptr;
    corpus_ = nullptr;
    traffic_ = nullptr;
    city_ = nullptr;
  }

  static roadnet::RoadNetwork* city_;
  static traj::TrafficModel* traffic_;
  static std::vector<traj::Trajectory>* corpus_;
  static roadnet::TransferProbability* transfer_;
  static serve::FrozenEncoder* frozen_;
};

roadnet::RoadNetwork* ServeConcurrencyTest::city_ = nullptr;
traj::TrafficModel* ServeConcurrencyTest::traffic_ = nullptr;
std::vector<traj::Trajectory>* ServeConcurrencyTest::corpus_ = nullptr;
roadnet::TransferProbability* ServeConcurrencyTest::transfer_ = nullptr;
serve::FrozenEncoder* ServeConcurrencyTest::frozen_ = nullptr;

TEST_F(ServeConcurrencyTest, ConcurrentFrozenEncodesAreRaceFree) {
  // The engine itself, with no service in front: concurrent const encodes
  // from raw threads must be race-free and deterministic.
  const std::vector<const traj::Trajectory*> batch = {&(*corpus_)[0],
                                                      &(*corpus_)[1]};
  const tensor::Tensor expected =
      frozen_->EncodeBatch(batch, eval::EncodeMode::kFull);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 8; ++i) {
        const tensor::Tensor got =
            frozen_->EncodeBatch(batch, eval::EncodeMode::kFull);
        ASSERT_EQ(std::memcmp(got.data(), expected.data(),
                              static_cast<size_t>(got.numel()) *
                                  sizeof(float)),
                  0);
      }
    });
  }
  for (auto& t : threads) t.join();
}

TEST_F(ServeConcurrencyTest, ClientsTimesRequestsBitwiseMatchSerial) {
  const int kClients = 4;
  const int kRequestsPerClient = 24;
  // Serial reference: every trajectory encoded alone, no coalescing.
  std::vector<std::vector<float>> serial(corpus_->size());
  for (size_t i = 0; i < corpus_->size(); ++i) {
    const tensor::Tensor row =
        frozen_->EncodeBatch({&(*corpus_)[i]}, eval::EncodeMode::kFull);
    serial[i].assign(row.data(), row.data() + row.numel());
  }

  serve::ServiceConfig sc;
  sc.num_workers = 2;
  sc.max_batch_size = 8;
  // Generous window so coalescing reliably happens even under TSan's
  // slowdown — the coalescing assertion below depends on it.
  sc.batch_deadline_us = 2000;
  serve::EmbeddingService service(frozen_, sc);
  std::vector<std::thread> clients;
  std::vector<std::string> failures[kClients];
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      // Each client walks the corpus from its own offset, so concurrent
      // batches mix different trajectories and lengths.
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const size_t idx =
            (static_cast<size_t>(c) * 7 + static_cast<size_t>(r)) %
            corpus_->size();
        auto result = service.Encode((*corpus_)[idx]);
        if (!result.ok()) {
          failures[c].push_back(result.status().ToString());
          continue;
        }
        const serve::EmbeddingRow row = result.value().get();
        if (std::memcmp(row.data(), serial[idx].data(),
                        serial[idx].size() * sizeof(float)) != 0) {
          failures[c].push_back("bitwise mismatch for trajectory " +
                                std::to_string(idx));
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    for (const auto& f : failures[c]) {
      ADD_FAILURE() << "client " << c << ": " << f;
    }
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.requests,
            static_cast<int64_t>(kClients) * kRequestsPerClient);
  // Concurrency must actually coalesce *some* requests: with 4 clients in
  // flight and a 2 ms coalescing window, at least one of the 96 batches
  // must have carried more than one request (batches < requests). A mean of
  // exactly 1.0 would mean the micro-batcher degenerated to
  // one-request-per-batch.
  EXPECT_GT(stats.coalescing(), 1.0);
}

TEST_F(ServeConcurrencyTest, BackpressureBoundsQueueAndCompletes) {
  serve::ServiceConfig sc;
  sc.num_workers = 1;
  sc.max_batch_size = 4;
  sc.max_queue_depth = 4;  // tiny: producers must block and resume
  sc.batch_deadline_us = 0;
  serve::EmbeddingService service(frozen_, sc);
  std::vector<std::thread> producers;
  std::atomic<int> ok_count{0};
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&, p] {
      for (int r = 0; r < 40; ++r) {
        const size_t idx = static_cast<size_t>(p * 11 + r) % corpus_->size();
        auto result = service.Encode((*corpus_)[idx]);
        ASSERT_TRUE(result.ok());
        result.value().get();
        ok_count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(ok_count.load(), 3 * 40);
}

TEST_F(ServeConcurrencyTest, ShutdownDrainsPendingRequests) {
  std::vector<std::future<serve::EmbeddingRow>> futures;
  {
    serve::ServiceConfig sc;
    sc.num_workers = 1;
    sc.batch_deadline_us = 50000;  // long window: requests queue up
    serve::EmbeddingService service(frozen_, sc);
    for (int i = 0; i < 12; ++i) {
      auto result =
          service.Encode((*corpus_)[static_cast<size_t>(i) % corpus_->size()]);
      ASSERT_TRUE(result.ok());
      futures.push_back(std::move(result).value());
    }
    // Destructor runs here with most requests still queued.
  }
  for (auto& f : futures) {
    const serve::EmbeddingRow row = f.get();  // must be fulfilled, not broken
    EXPECT_TRUE(row.defined());
  }
}

TEST_F(ServeConcurrencyTest, MixedModesNeverShareABatch) {
  serve::ServiceConfig sc;
  sc.num_workers = 2;
  sc.batch_deadline_us = 300;
  serve::EmbeddingService service(frozen_, sc);
  const traj::Trajectory& t = (*corpus_)[0];
  const tensor::Tensor full =
      frozen_->EncodeBatch({&t}, eval::EncodeMode::kFull);
  const tensor::Tensor eta =
      frozen_->EncodeBatch({&t}, eval::EncodeMode::kDepartureOnly);
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      const eval::EncodeMode mode = c == 0
                                        ? eval::EncodeMode::kFull
                                        : eval::EncodeMode::kDepartureOnly;
      const tensor::Tensor& expected = c == 0 ? full : eta;
      for (int r = 0; r < 16; ++r) {
        auto result = service.Encode(t, mode);
        ASSERT_TRUE(result.ok());
        const serve::EmbeddingRow row = result.value().get();
        ASSERT_EQ(std::memcmp(row.data(), expected.data(),
                              static_cast<size_t>(row.dim()) * sizeof(float)),
                  0);
      }
    });
  }
  for (auto& t2 : clients) t2.join();
}

TEST_F(ServeConcurrencyTest, IndexReadersAndWritersCoexist) {
  const int64_t d = 8;
  serve::EmbeddingIndex index(d);
  common::Rng seed_rng(5);
  std::vector<float> base(static_cast<size_t>(64 * d));
  for (auto& v : base) v = static_cast<float>(seed_rng.Normal());
  std::vector<int64_t> ids;
  for (int64_t i = 0; i < 64; ++i) ids.push_back(i);
  ASSERT_TRUE(index.AddBatch(ids, base).ok());

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    // Churn ids [1000, 1020) while readers query: exercises the
    // shared_mutex writer path against concurrent readers.
    common::Rng rng(17);
    for (int round = 0; round < 50; ++round) {
      for (int64_t id = 1000; id < 1020; ++id) {
        std::vector<float> row(static_cast<size_t>(d));
        for (auto& v : row) v = static_cast<float>(rng.Normal());
        ASSERT_TRUE(index.Add(id, row).ok());
      }
      for (int64_t id = 1000; id < 1020; ++id) {
        ASSERT_TRUE(index.Remove(id).ok());
      }
    }
    stop.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int rdr = 0; rdr < 3; ++rdr) {
    readers.emplace_back([&, rdr] {
      common::Rng rng(100 + rdr);
      while (!stop.load(std::memory_order_acquire)) {
        std::vector<float> q(static_cast<size_t>(d));
        for (auto& v : q) v = static_cast<float>(rng.Normal());
        const auto result = index.Query(q, 5);
        ASSERT_TRUE(result.ok());
        ASSERT_EQ(result->size(), 5u);
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(index.size(), 64);
}

}  // namespace
}  // namespace start
