#include "tensor/shape.h"

#include <gtest/gtest.h>

namespace start::tensor {
namespace {

TEST(ShapeTest, BasicProperties) {
  const Shape s({2, 3, 4});
  EXPECT_EQ(s.ndim(), 3);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.dim(2), 4);
  EXPECT_EQ(s.ToString(), "[2, 3, 4]");
}

TEST(ShapeTest, NegativeIndexing) {
  const Shape s({2, 3, 4});
  EXPECT_EQ(s.dim(-1), 4);
  EXPECT_EQ(s.dim(-2), 3);
  EXPECT_EQ(s.dim(-3), 2);
}

TEST(ShapeTest, EmptyShapeIsScalarLike) {
  const Shape s;
  EXPECT_EQ(s.ndim(), 0);
  EXPECT_EQ(s.numel(), 1);
}

TEST(ShapeTest, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
}

TEST(ShapeTest, BroadcastSameShape) {
  EXPECT_EQ(BroadcastShapes(Shape({4, 5}), Shape({4, 5})), Shape({4, 5}));
}

TEST(ShapeTest, BroadcastTrailingVector) {
  EXPECT_EQ(BroadcastShapes(Shape({4, 5}), Shape({5})), Shape({4, 5}));
}

TEST(ShapeTest, BroadcastColumn) {
  EXPECT_EQ(BroadcastShapes(Shape({4, 1}), Shape({1, 5})), Shape({4, 5}));
}

TEST(ShapeTest, BroadcastScalar) {
  EXPECT_EQ(BroadcastShapes(Shape({3, 2, 4}), Shape({1})),
            Shape({3, 2, 4}));
}

TEST(ShapeTest, Broadcast3dWith2d) {
  EXPECT_EQ(BroadcastShapes(Shape({7, 4, 5}), Shape({4, 5})),
            Shape({7, 4, 5}));
}

using ShapeDeath = ShapeTest_BasicProperties_Test;

TEST(ShapeDeathTest, IncompatibleBroadcastAborts) {
  EXPECT_DEATH(BroadcastShapes(Shape({3, 4}), Shape({3, 5})),
               "not broadcastable");
}

TEST(ShapeDeathTest, OutOfRangeDimAborts) {
  const Shape s({2, 3});
  EXPECT_DEATH(s.dim(2), "out of range");
}

}  // namespace
}  // namespace start::tensor
