#include "core/start_model.h"

#include <cmath>
#include <gtest/gtest.h>

#include "core/start_encoder.h"
#include "data/span_mask.h"
#include "tensor/ops.h"
#include "testing.h"
#include "traj/trip_generator.h"

namespace start::core {
namespace {

using tensor::Shape;
using tensor::Tensor;

class StartModelTest : public ::testing::Test {
 protected:
  StartModelTest()
      : world_([] {
          // No corpus needed here — trips are generated per test.
          testutil::TinyWorldOptions options;
          options.num_drivers = 2;
          options.num_days = 1;
          options.trips_per_driver_day = 2.0;
          options.min_user_trajectories = 1;
          return testutil::MakeTinyWorld(options);
        }()),
        net_(*world_->net),
        traffic_(*world_->traffic) {
    gen_config_.num_drivers = 3;
    gen_config_.seed = 555;
  }

  StartConfig SmallConfig() const {
    StartConfig config = testutil::TinyStartConfig();
    config.gat_layers = 2;
    config.gat_heads = {4, 1};
    config.encoder_layers = 2;
    config.dropout = 0.0f;
    return config;
  }

  roadnet::TransferProbability MakeTransfer() const {
    return testutil::EdgePairTransfer(net_);
  }

  traj::Trajectory MakeTrip(int64_t src, int64_t dst, int64_t depart) {
    traj::TripGenerator gen(&traffic_, gen_config_);
    return gen.GenerateTrip(0, src, dst, depart);
  }

  std::unique_ptr<testutil::TinyWorld> world_;
  roadnet::RoadNetwork& net_;
  traj::TrafficModel& traffic_;
  traj::TripGenerator::Config gen_config_;
};

TEST_F(StartModelTest, EncodeShapes) {
  const auto tp = MakeTransfer();
  common::Rng rng(1);
  StartModel model(SmallConfig(), &net_, &tp, &rng);
  model.SetTraining(false);
  const auto t1 = MakeTrip(0, net_.num_segments() - 1, 8 * 3600);
  const auto t2 = MakeTrip(3, net_.num_segments() / 2, 10 * 3600);
  ASSERT_GT(t1.size(), 2);
  ASSERT_GT(t2.size(), 2);
  const data::Batch batch =
      data::MakeBatch({data::MakeView(t1), data::MakeView(t2)});
  const EncoderOutput out = model.Encode(batch);
  EXPECT_EQ(out.sequence.shape(), Shape({2, batch.max_len + 1, 16}));
  EXPECT_EQ(out.cls.shape(), Shape({2, 16}));
}

TEST_F(StartModelTest, PaddingContentDoesNotAffectShorterSequence) {
  const auto tp = MakeTransfer();
  common::Rng rng(2);
  StartModel model(SmallConfig(), &net_, &tp, &rng);
  model.SetTraining(false);
  const auto short_trip = MakeTrip(0, 8, 9 * 3600);
  const auto long_trip = MakeTrip(1, net_.num_segments() - 1, 9 * 3600);
  ASSERT_GT(long_trip.size(), short_trip.size());
  // Encode the short trip alone, then padded next to the long one.
  tensor::NoGradGuard no_grad;
  const auto alone =
      model.Encode(data::MakeBatch({data::MakeView(short_trip)}));
  const auto padded = model.Encode(data::MakeBatch(
      {data::MakeView(short_trip), data::MakeView(long_trip)}));
  for (int64_t j = 0; j < 16; ++j) {
    EXPECT_NEAR(alone.cls.at({0, j}), padded.cls.at({0, j}), 1e-4);
  }
}

TEST_F(StartModelTest, MaskTokenChangesEncoding) {
  const auto tp = MakeTransfer();
  common::Rng rng(3);
  StartModel model(SmallConfig(), &net_, &tp, &rng);
  model.SetTraining(false);
  const auto trip = MakeTrip(0, net_.num_segments() - 1, 9 * 3600);
  data::View clean = data::MakeView(trip);
  data::View masked = clean;
  common::Rng mask_rng(4);
  data::ApplySpanMask(&masked, 2, 0.2, &mask_rng);
  const auto a = model.Encode(data::MakeBatch({clean}));
  const auto b = model.Encode(data::MakeBatch({masked}));
  double diff = 0.0;
  for (int64_t j = 0; j < 16; ++j) {
    diff += std::fabs(a.cls.at({0, j}) - b.cls.at({0, j}));
  }
  EXPECT_GT(diff, 1e-4);
}

TEST_F(StartModelTest, TimeEmbeddingAblationRemovesTimeSensitivity) {
  StartConfig config = SmallConfig();
  config.use_time_embedding = false;
  config.use_time_interval = false;
  const auto tp = MakeTransfer();
  common::Rng rng(5);
  StartModel model(config, &net_, &tp, &rng);
  model.SetTraining(false);
  traj::Trajectory trip = MakeTrip(0, net_.num_segments() - 1, 9 * 3600);
  traj::Trajectory shifted = trip;
  for (auto& ts : shifted.timestamps) ts += 6 * 3600;  // depart 6 hours later
  shifted.end_time += 6 * 3600;
  const auto a = model.Encode(data::MakeBatch({data::MakeView(trip)}));
  const auto b = model.Encode(data::MakeBatch({data::MakeView(shifted)}));
  for (int64_t j = 0; j < 16; ++j) {
    EXPECT_NEAR(a.cls.at({0, j}), b.cls.at({0, j}), 1e-5);
  }
}

TEST_F(StartModelTest, FullModelIsTimeSensitive) {
  const auto tp = MakeTransfer();
  common::Rng rng(6);
  StartModel model(SmallConfig(), &net_, &tp, &rng);
  model.SetTraining(false);
  traj::Trajectory trip = MakeTrip(0, net_.num_segments() - 1, 9 * 3600);
  traj::Trajectory shifted = trip;
  for (auto& ts : shifted.timestamps) ts += 6 * 3600;
  shifted.end_time += 6 * 3600;
  const auto a = model.Encode(data::MakeBatch({data::MakeView(trip)}));
  const auto b = model.Encode(data::MakeBatch({data::MakeView(shifted)}));
  double diff = 0.0;
  for (int64_t j = 0; j < 16; ++j) {
    diff += std::fabs(a.cls.at({0, j}) - b.cls.at({0, j}));
  }
  EXPECT_GT(diff, 1e-4);
}

TEST_F(StartModelTest, MaskedLogitsShape) {
  const auto tp = MakeTransfer();
  common::Rng rng(7);
  StartModel model(SmallConfig(), &net_, &tp, &rng);
  model.SetTraining(false);
  const auto trip = MakeTrip(0, net_.num_segments() - 1, 9 * 3600);
  data::View v = data::MakeView(trip);
  common::Rng mask_rng(8);
  const auto info = data::ApplySpanMask(&v, 2, 0.15, &mask_rng);
  ASSERT_FALSE(info.positions.empty());
  const data::Batch batch = data::MakeBatch({v});
  const auto out = model.Encode(batch);
  std::vector<int64_t> flat;
  for (const int64_t p : info.positions) flat.push_back(p);
  const Tensor logits = model.MaskedLogits(out, flat, batch.max_len);
  EXPECT_EQ(logits.shape(),
            Shape({static_cast<int64_t>(flat.size()), net_.num_segments()}));
}

TEST_F(StartModelTest, AblationFlagsChangeParameterCount) {
  const auto tp = MakeTransfer();
  StartConfig with_gat = SmallConfig();
  StartConfig without_gat = SmallConfig();
  without_gat.use_tpe_gat = false;
  common::Rng rng_a(9), rng_b(9);
  StartModel a(with_gat, &net_, &tp, &rng_a);
  StartModel b(without_gat, &net_, &tp, &rng_b);
  // The GAT variant registers TPE-GAT parameters, the ablation registers a
  // per-road table instead.
  auto has_param = [](const StartModel& m, const std::string& prefix) {
    for (const auto& [name, t] : m.NamedParameters()) {
      if (name.rfind(prefix, 0) == 0) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_param(a, "tpe_gat"));
  EXPECT_FALSE(has_param(a, "road_table"));
  EXPECT_TRUE(has_param(b, "road_table"));
  EXPECT_FALSE(has_param(b, "tpe_gat"));
}

TEST_F(StartModelTest, SaveLoadRestoresEncoding) {
  const auto tp = MakeTransfer();
  common::Rng rng_a(10), rng_b(11);
  StartModel a(SmallConfig(), &net_, &tp, &rng_a);
  StartModel b(SmallConfig(), &net_, &tp, &rng_b);
  a.SetTraining(false);
  b.SetTraining(false);
  const auto trip = MakeTrip(0, net_.num_segments() - 1, 9 * 3600);
  const data::Batch batch = data::MakeBatch({data::MakeView(trip)});
  testutil::TempDir dir;
  const std::string path = dir.File("start_model.sttn");
  ASSERT_TRUE(a.Save(path).ok());
  ASSERT_TRUE(b.Load(path).ok());
  const auto ea = a.Encode(batch);
  const auto eb = b.Encode(batch);
  for (int64_t j = 0; j < 16; ++j) {
    EXPECT_NEAR(ea.cls.at({0, j}), eb.cls.at({0, j}), 1e-5);
  }
}

TEST_F(StartModelTest, EncoderAdapterEtaModeHidesArrivalTimes) {
  const auto tp = MakeTransfer();
  common::Rng rng(12);
  StartModel model(SmallConfig(), &net_, &tp, &rng);
  StartEncoder encoder(&model);
  encoder.SetTraining(false);
  // Two trips with the same roads and departure but different realised
  // speeds must encode identically in kDepartureOnly mode.
  traj::Trajectory a = MakeTrip(0, net_.num_segments() - 1, 9 * 3600);
  traj::Trajectory b = a;
  for (size_t i = 1; i < b.timestamps.size(); ++i) {
    b.timestamps[i] += static_cast<int64_t>(20 * i);
  }
  b.end_time += 600;
  const Tensor ea = encoder.EncodeBatch({&a}, eval::EncodeMode::kDepartureOnly);
  const Tensor eb = encoder.EncodeBatch({&b}, eval::EncodeMode::kDepartureOnly);
  for (int64_t j = 0; j < 16; ++j) {
    EXPECT_NEAR(ea.at({0, j}), eb.at({0, j}), 1e-5);
  }
  // In full mode they must differ (time-interval matrix sees the change).
  const Tensor fa = encoder.EncodeBatch({&a}, eval::EncodeMode::kFull);
  const Tensor fb = encoder.EncodeBatch({&b}, eval::EncodeMode::kFull);
  double diff = 0.0;
  for (int64_t j = 0; j < 16; ++j) diff += std::fabs(fa.at({0, j}) - fb.at({0, j}));
  EXPECT_GT(diff, 1e-5);
}

}  // namespace
}  // namespace start::core
