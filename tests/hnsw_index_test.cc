// HNSW index contract, property-tested against the exact EmbeddingIndex as
// the ground-truth oracle: recall@k on random corpora, tie/duplicate-row
// ordering, tombstoned Removes, bitwise build reproducibility for a fixed
// seed, and (under the `concurrency` ctest label, so TSan covers it in CI)
// queries running concurrently with incremental inserts and removes.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "serve/embedding_index.h"
#include "serve/hnsw_index.h"
#include "serve/index_interface.h"
#include "testing.h"

namespace start {
namespace {

using serve::EmbeddingIndex;
using serve::HnswConfig;
using serve::HnswIndex;
using serve::IndexInterface;
using serve::Neighbor;

/// Random rows with a few planted near-duplicate clusters — harder for a
/// graph index than pure noise, closer to embedding corpora.
std::vector<float> RandomRows(common::Rng* rng, int64_t n, int64_t dim) {
  std::vector<float> rows(static_cast<size_t>(n * dim));
  for (auto& v : rows) v = static_cast<float>(rng->Normal());
  for (int64_t i = 1; i < n; i += 17) {  // clusters: jitter an earlier row
    const int64_t base = rng->UniformInt(i);
    for (int64_t d = 0; d < dim; ++d) {
      rows[static_cast<size_t>(i * dim + d)] =
          rows[static_cast<size_t>(base * dim + d)] +
          static_cast<float>(rng->Normal(0.0, 0.05));
    }
  }
  return rows;
}

std::vector<int64_t> SequentialIds(int64_t n) {
  std::vector<int64_t> ids(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) ids[static_cast<size_t>(i)] = i;
  return ids;
}

double RecallAtK(const IndexInterface& approx, const IndexInterface& oracle,
                 const std::vector<float>& queries, int64_t nq, int64_t dim,
                 int64_t k) {
  double total = 0.0;
  for (int64_t q = 0; q < nq; ++q) {
    const auto truth = oracle.Query(queries.data() + q * dim, dim, k);
    const auto got = approx.Query(queries.data() + q * dim, dim, k);
    EXPECT_TRUE(truth.ok()) << truth.status().ToString();
    EXPECT_TRUE(got.ok()) << got.status().ToString();
    std::set<int64_t> truth_ids;
    for (const Neighbor& nb : *truth) truth_ids.insert(nb.id);
    int64_t overlap = 0;
    for (const Neighbor& nb : *got) overlap += truth_ids.count(nb.id);
    total += static_cast<double>(overlap) /
             static_cast<double>(truth->size());
  }
  return total / static_cast<double>(nq);
}

TEST(HnswIndexTest, RecallMeetsGateOnRandomCorpora) {
  // The recall gate of the bench, property-tested: random (n, dim, seed)
  // corpora must reach recall@10 >= 0.95 against the exact oracle.
  common::Rng rng = testutil::TestRng();
  for (int trial = 0; trial < 5; ++trial) {
    const int64_t n = rng.UniformInt(300, 700);
    const int64_t dim = std::vector<int64_t>{8, 16, 32}[static_cast<size_t>(
        rng.UniformInt(3))];
    const std::vector<float> rows = RandomRows(&rng, n, dim);
    EmbeddingIndex exact(dim);
    HnswConfig hc;
    hc.seed = rng.Next();
    HnswIndex hnsw(dim, hc);
    ASSERT_TRUE(exact.AddBatch(SequentialIds(n), rows).ok());
    ASSERT_TRUE(hnsw.AddBatch(SequentialIds(n), rows).ok());
    const int64_t nq = 20;
    std::vector<float> queries(static_cast<size_t>(nq * dim));
    for (auto& v : queries) v = static_cast<float>(rng.Normal());
    const double recall = RecallAtK(hnsw, exact, queries, nq, dim, 10);
    EXPECT_GE(recall, 0.95) << "trial " << trial << " n=" << n
                            << " dim=" << dim;
  }
}

TEST(HnswIndexTest, TiesAndDuplicateRowsRankConsistently) {
  // Duplicate-score rows must come out earliest-inserted-first — the same
  // tie rule as the exact index — and parallel scaled rows (identical after
  // normalization) must tie exactly.
  const int64_t dim = 8;
  common::Rng rng = testutil::TestRng();
  std::vector<float> target(static_cast<size_t>(dim));
  for (auto& v : target) v = static_cast<float>(rng.Normal());
  std::vector<float> doubled(target);
  for (auto& v : doubled) v *= 2.0f;  // same direction => same cosine

  EmbeddingIndex exact(dim);
  HnswIndex hnsw(dim);
  for (IndexInterface* index :
       std::vector<IndexInterface*>{&exact, &hnsw}) {
    ASSERT_TRUE(index->Add(3, target).ok());
    ASSERT_TRUE(index->Add(7, doubled).ok());
    for (int64_t i = 0; i < 40; ++i) {
      std::vector<float> noise(static_cast<size_t>(dim));
      for (auto& v : noise) v = static_cast<float>(rng.Normal());
      ASSERT_TRUE(index->Add(100 + i, noise).ok());
    }
    const auto top = index->Query(target, 2);
    ASSERT_TRUE(top.ok());
    ASSERT_EQ(top->size(), 2u);
    // Both copies score identically; id 3 was inserted first.
    EXPECT_EQ((*top)[0].id, 3);
    EXPECT_EQ((*top)[1].id, 7);
    EXPECT_EQ((*top)[0].score, (*top)[1].score);
  }
}

TEST(HnswIndexTest, RemoveExcludesTombstonedIds) {
  const int64_t n = 200, dim = 16;
  common::Rng rng = testutil::TestRng();
  const std::vector<float> rows = RandomRows(&rng, n, dim);
  HnswIndex hnsw(dim);
  ASSERT_TRUE(hnsw.AddBatch(SequentialIds(n), rows).ok());
  for (int64_t id = 0; id < n; id += 3) {
    ASSERT_TRUE(hnsw.Remove(id).ok());
    EXPECT_FALSE(hnsw.Contains(id));
  }
  EXPECT_FALSE(hnsw.Remove(0).ok());  // already gone
  EXPECT_EQ(hnsw.size(), n - (n + 2) / 3);
  for (int64_t q = 0; q < 10; ++q) {
    std::vector<float> query(static_cast<size_t>(dim));
    for (auto& v : query) v = static_cast<float>(rng.Normal());
    const auto top = hnsw.Query(query, 20);
    ASSERT_TRUE(top.ok());
    for (const Neighbor& nb : *top) {
      EXPECT_NE(nb.id % 3, 0) << "tombstoned id " << nb.id << " surfaced";
    }
  }
  // A removed id can be re-added (fresh slot; the old one stays dead).
  ASSERT_TRUE(hnsw.Add(0, rows.data(), dim).ok());
  EXPECT_TRUE(hnsw.Contains(0));
  const auto top = hnsw.Query(std::vector<float>(rows.begin(),
                                                 rows.begin() + dim),
                              1);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 1u);
  EXPECT_EQ((*top)[0].id, 0);
}

TEST(HnswIndexTest, FixedSeedBuildIsReproducible) {
  // Two builds over the same insertion order must produce identical graphs:
  // same levels, same neighbor lists, in the same stored order.
  const int64_t n = 400, dim = 16;
  common::Rng rng = testutil::TestRng();
  const std::vector<float> rows = RandomRows(&rng, n, dim);
  HnswConfig hc;
  hc.seed = 1234;
  HnswIndex a(dim, hc), b(dim, hc);
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(a.Add(i, rows.data() + i * dim, dim).ok());
    ASSERT_TRUE(b.Add(i, rows.data() + i * dim, dim).ok());
  }
  EXPECT_EQ(a.max_level(), b.max_level());
  for (int64_t id = 0; id < n; ++id) {
    ASSERT_EQ(a.NodeLevel(id), b.NodeLevel(id)) << "id " << id;
    for (int64_t level = 0; level <= a.NodeLevel(id); ++level) {
      EXPECT_EQ(a.GetNeighbors(id, level), b.GetNeighbors(id, level))
          << "id " << id << " level " << level;
    }
  }
  // A different seed must change the graph somewhere (levels are sampled
  // from the seed stream), or the determinism test would be vacuous.
  HnswConfig other = hc;
  other.seed = 4321;
  HnswIndex c(dim, other);
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(c.Add(i, rows.data() + i * dim, dim).ok());
  }
  bool any_difference = c.max_level() != a.max_level();
  for (int64_t id = 0; id < n && !any_difference; ++id) {
    any_difference = a.NodeLevel(id) != c.NodeLevel(id) ||
                     a.GetNeighbors(id, 0) != c.GetNeighbors(id, 0);
  }
  EXPECT_TRUE(any_difference);
}

TEST(HnswIndexTest, ValidationMatchesExactIndex) {
  // Both backends speak the same error dialect through the interface.
  EmbeddingIndex exact(4);
  HnswIndex hnsw(4);
  const std::vector<float> zero(4, 0.0f);
  const std::vector<float> row = {1.0f, 0.0f, 0.0f, 0.0f};
  for (IndexInterface* index :
       std::vector<IndexInterface*>{&exact, &hnsw}) {
    EXPECT_EQ(index->Add(1, zero).code(),
              common::StatusCode::kInvalidArgument);
    ASSERT_TRUE(index->Add(1, row).ok());
    EXPECT_EQ(index->Add(1, row).code(),
              common::StatusCode::kAlreadyExists);
    EXPECT_EQ(index->Add(2, row.data(), 3).code(),
              common::StatusCode::kInvalidArgument);
    EXPECT_EQ(index->Query(zero, 1).status().code(),
              common::StatusCode::kInvalidArgument);
    EXPECT_EQ(index->Query(row, 0).status().code(),
              common::StatusCode::kInvalidArgument);
    EXPECT_EQ(index->Remove(99).code(), common::StatusCode::kNotFound);
    EXPECT_EQ(index->size(), 1);
  }
  // Empty index: valid query, empty result.
  HnswIndex empty(4);
  const auto result = empty.Query(row, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(HnswIndexTest, EvaluateMostSimilarThroughInterface) {
  // The protocol entry point must work against either backend; with the
  // database containing the query row itself, hr@1 is 1.0 even censored.
  const int64_t n = 120, dim = 12;
  common::Rng rng = testutil::TestRng();
  const std::vector<float> rows = RandomRows(&rng, n, dim);
  EmbeddingIndex exact(dim);
  HnswIndex hnsw(dim);
  ASSERT_TRUE(exact.AddBatch(SequentialIds(n), rows).ok());
  ASSERT_TRUE(hnsw.AddBatch(SequentialIds(n), rows).ok());
  const int64_t nq = 15;
  std::vector<float> queries(rows.begin(), rows.begin() + nq * dim);
  std::vector<int64_t> gt = SequentialIds(nq);
  for (const IndexInterface* index :
       std::vector<const IndexInterface*>{&exact, &hnsw}) {
    const auto metrics = index->EvaluateMostSimilar(queries, nq, gt);
    ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
    EXPECT_EQ(metrics->hr_at_1, 1.0);
    EXPECT_EQ(metrics->mean_rank, 1.0);
  }
  const auto missing = hnsw.EvaluateMostSimilar(queries, nq, {gt[0]});
  EXPECT_FALSE(missing.ok());
}

TEST(HnswIndexTest, ChurnQueriesDuringInsertsAndRemoves) {
  // The serving pattern under TSan: readers hammer Query while one writer
  // churns inserts and removes. Results must stay well-formed throughout —
  // live ids only (up to benign remove races), no duplicates, scores in
  // [-1, 1], and the base corpus always reachable.
  const int64_t d = 16;
  HnswIndex index(d);
  common::Rng seed_rng = testutil::TestRng();
  const int64_t base = 128;
  ASSERT_TRUE(
      index.AddBatch(SequentialIds(base), RandomRows(&seed_rng, base, d))
          .ok());

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    common::Rng rng = testutil::TestRng(17);
    for (int round = 0; round < 30; ++round) {
      for (int64_t id = 1000; id < 1015; ++id) {
        std::vector<float> row(static_cast<size_t>(d));
        for (auto& v : row) v = static_cast<float>(rng.Normal());
        ASSERT_TRUE(index.Add(id, row).ok());
      }
      for (int64_t id = 1000; id < 1015; ++id) {
        ASSERT_TRUE(index.Remove(id).ok());
      }
    }
    stop.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int rdr = 0; rdr < 3; ++rdr) {
    readers.emplace_back([&, rdr] {
      common::Rng rng = testutil::TestRng(static_cast<uint64_t>(100 + rdr));
      while (!stop.load(std::memory_order_acquire)) {
        std::vector<float> q(static_cast<size_t>(d));
        for (auto& v : q) v = static_cast<float>(rng.Normal());
        const auto result = index.Query(q, 10);
        ASSERT_TRUE(result.ok());
        ASSERT_GE(result->size(), 5u);  // >= base live entries exist
        std::set<int64_t> seen;
        for (const Neighbor& nb : *result) {
          EXPECT_TRUE(seen.insert(nb.id).second) << "duplicate id " << nb.id;
          EXPECT_TRUE(nb.id < base || (nb.id >= 1000 && nb.id < 1015));
          EXPECT_GE(nb.score, -1.0001f);
          EXPECT_LE(nb.score, 1.0001f);
        }
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(index.size(), base);
  EXPECT_EQ(index.num_slots(), base + 30 * 15);
}

TEST(HnswIndexTest, DeadFractionAccountsRemovesUnderConcurrentQueries) {
  // Tombstone accounting must stay exact while readers run: after each
  // writer round DeadFraction() == tombstones / slots, it never leaves
  // [0, 1], and it is monotone in the number of removes.
  const int64_t d = 16;
  HnswIndex index(d);
  common::Rng seed_rng = testutil::TestRng(3);
  const int64_t base = 256;
  ASSERT_TRUE(
      index.AddBatch(SequentialIds(base), RandomRows(&seed_rng, base, d))
          .ok());
  EXPECT_EQ(index.DeadFraction(), 0.0);

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int rdr = 0; rdr < 2; ++rdr) {
    readers.emplace_back([&, rdr] {
      common::Rng rng = testutil::TestRng(static_cast<uint64_t>(200 + rdr));
      while (!stop.load(std::memory_order_acquire)) {
        std::vector<float> q(static_cast<size_t>(d));
        for (auto& v : q) v = static_cast<float>(rng.Normal());
        ASSERT_TRUE(index.Query(q, 10).ok());
        const double dead = index.DeadFraction();  // racy read: only bounds
        EXPECT_GE(dead, 0.0);
        EXPECT_LE(dead, 1.0);
      }
    });
  }
  double prev = 0.0;
  for (int64_t removed = 0; removed < base / 2; ++removed) {
    ASSERT_TRUE(index.Remove(removed * 2).ok());
    const double dead = index.DeadFraction();
    EXPECT_DOUBLE_EQ(dead, static_cast<double>(removed + 1) /
                               static_cast<double>(base));
    EXPECT_GE(dead, prev);
    prev = dead;
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(index.size(), base - base / 2);
  EXPECT_EQ(index.num_slots(), base);
  EXPECT_DOUBLE_EQ(index.DeadFraction(), 0.5);
}

TEST(HnswIndexTest, HeavyChurnStillReturnsKLiveResults) {
  // The latent churn gap: with most slots tombstoned, a fixed candidate
  // pool of ef entries is mostly dead and Query would come back short.
  // The live-ratio ef inflation must keep full-k result sets (and recall)
  // through heavy churn.
  const int64_t n = 400, dim = 16, k = 10;
  common::Rng rng = testutil::TestRng(7);
  const std::vector<float> rows = RandomRows(&rng, n, dim);
  HnswConfig config;
  config.ef_search = 16;  // tight pool: without inflation churn starves it
  HnswIndex hnsw(dim, config);
  EmbeddingIndex exact(dim);
  ASSERT_TRUE(hnsw.AddBatch(SequentialIds(n), rows).ok());
  ASSERT_TRUE(exact.AddBatch(SequentialIds(n), rows).ok());
  // Tombstone 70% of the corpus in both indexes.
  for (int64_t id = 0; id < n; ++id) {
    if (id % 10 < 7) {
      ASSERT_TRUE(hnsw.Remove(id).ok());
      ASSERT_TRUE(exact.Remove(id).ok());
    }
  }
  ASSERT_GT(hnsw.DeadFraction(), 0.65);
  const int64_t nq = 50;
  const std::vector<float> queries = RandomRows(&rng, nq, dim);
  for (int64_t q = 0; q < nq; ++q) {
    const auto got = hnsw.Query(queries.data() + q * dim, dim, k);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->size(), static_cast<size_t>(k))
        << "churn starved the candidate pool at query " << q;
    for (const Neighbor& nb : *got) EXPECT_EQ(nb.id % 10 >= 7, true);
  }
  EXPECT_GE(RecallAtK(hnsw, exact, queries, nq, dim, k), 0.9);
}

TEST(HnswIndexTest, EfFloorKnobRestoresRecallPastSeventyFivePercentDead) {
  // Regression for the hardcoded max(0.25, live_ratio) clamp: at 80%
  // tombstones the default floor caps ef inflation at 4x while 5x is
  // needed, so result sets come back short / recall drops. Lowering
  // min_live_ratio must restore full-k results and oracle-level recall.
  const int64_t n = 500, dim = 16, k = 10;
  common::Rng rng = testutil::TestRng(21);
  const std::vector<float> rows = RandomRows(&rng, n, dim);
  HnswConfig floored;
  floored.ef_search = 16;
  floored.min_live_ratio = 0.05;  // inflation tracks churn up to 95% dead
  HnswIndex relaxed(dim, floored);
  HnswConfig stock;
  stock.ef_search = 16;
  HnswIndex capped(dim, stock);
  EmbeddingIndex exact(dim);
  for (IndexInterface* index :
       std::vector<IndexInterface*>{&relaxed, &capped, &exact}) {
    ASSERT_TRUE(index->AddBatch(SequentialIds(n), rows).ok());
    for (int64_t id = 0; id < n; ++id) {  // 80% tombstones
      if (id % 5 != 0) ASSERT_TRUE(index->Remove(id).ok());
    }
  }
  ASSERT_DOUBLE_EQ(relaxed.DeadFraction(), 0.8);
  const int64_t nq = 50;
  const std::vector<float> queries = RandomRows(&rng, nq, dim);
  for (int64_t q = 0; q < nq; ++q) {
    const auto got = relaxed.Query(queries.data() + q * dim, dim, k);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->size(), static_cast<size_t>(k))
        << "floored index starved at query " << q;
  }
  const double relaxed_recall = RecallAtK(relaxed, exact, queries, nq, dim, k);
  const double capped_recall = RecallAtK(capped, exact, queries, nq, dim, k);
  EXPECT_GE(relaxed_recall, 0.95);
  // The knob must matter: the relaxed floor may not score worse than the
  // stock clamp on the same 80%-dead graph.
  EXPECT_GE(relaxed_recall, capped_recall);
}

TEST(HnswIndexTest, CompactedCopyIsBitwiseEqualToFreshBuildOverLiveRows) {
  const int64_t n = 400, dim = 16;
  common::Rng rng = testutil::TestRng(9);
  const std::vector<float> rows = RandomRows(&rng, n, dim);
  HnswConfig hc;
  hc.seed = 777;
  HnswIndex churned(dim, hc);
  ASSERT_TRUE(churned.AddBatch(SequentialIds(n), rows).ok());
  for (int64_t id = 0; id < n; ++id) {
    if (id % 2 == 0) ASSERT_TRUE(churned.Remove(id).ok());
  }
  ASSERT_DOUBLE_EQ(churned.DeadFraction(), 0.5);

  auto compacted = churned.CompactedCopy();
  ASSERT_TRUE(compacted.ok()) << compacted.status().ToString();
  EXPECT_EQ((*compacted)->size(), n / 2);
  EXPECT_EQ((*compacted)->num_slots(), n / 2);  // tombstones reclaimed
  EXPECT_DOUBLE_EQ((*compacted)->DeadFraction(), 0.0);

  // Reference: a from-scratch build over only the surviving rows, in the
  // original insertion order. Graphs must match link-for-link.
  HnswIndex fresh(dim, hc);
  for (int64_t id = 1; id < n; id += 2) {
    ASSERT_TRUE(fresh.Add(id, rows.data() + id * dim, dim).ok());
  }
  ASSERT_EQ(fresh.max_level(), (*compacted)->max_level());
  for (int64_t id = 1; id < n; id += 2) {
    ASSERT_EQ(fresh.NodeLevel(id), (*compacted)->NodeLevel(id)) << id;
    for (int64_t level = 0; level <= fresh.NodeLevel(id); ++level) {
      EXPECT_EQ(fresh.GetNeighbors(id, level),
                (*compacted)->GetNeighbors(id, level))
          << "id " << id << " level " << level;
    }
  }
}

TEST(HnswIndexTest, CompactedCopyRestoresRecallOfTombstonedIndex) {
  // The bench gate in unit form: compaction of a 50%-dead index must query
  // as well as a never-churned build, with no dead routing hops left.
  const int64_t n = 600, dim = 16, k = 10;
  common::Rng rng = testutil::TestRng(15);
  const std::vector<float> rows = RandomRows(&rng, n, dim);
  HnswIndex churned(dim);
  EmbeddingIndex exact(dim);
  ASSERT_TRUE(churned.AddBatch(SequentialIds(n), rows).ok());
  for (int64_t id = 0; id < n; id += 2) {
    ASSERT_TRUE(churned.Remove(id).ok());
  }
  for (int64_t id = 1; id < n; id += 2) {
    ASSERT_TRUE(exact.Add(id, rows.data() + id * dim, dim).ok());
  }
  auto compacted = churned.CompactedCopy();
  ASSERT_TRUE(compacted.ok()) << compacted.status().ToString();
  const int64_t nq = 40;
  const std::vector<float> queries = RandomRows(&rng, nq, dim);
  EXPECT_GE(RecallAtK(**compacted, exact, queries, nq, dim, k), 0.95);
}

}  // namespace
}  // namespace start
