#include "roadnet/shortest_path.h"

#include <gtest/gtest.h>
#include <set>

#include "roadnet/synthetic_city.h"

namespace start::roadnet {
namespace {

RoadNetwork MakeDiamond() {
  // 0 -> {1, 2} -> 3; weights by segment id (1-based) make 0-1-3 cheaper.
  RoadNetwork net;
  for (int i = 0; i < 4; ++i) {
    RoadSegment s;
    s.length_m = 100;
    s.maxspeed_mps = 10;
    net.AddSegment(s);
  }
  net.AddEdge(0, 1);
  net.AddEdge(0, 2);
  net.AddEdge(1, 3);
  net.AddEdge(2, 3);
  net.Finalize();
  return net;
}

double IdWeight(int64_t segment) { return static_cast<double>(segment) + 1.0; }

TEST(ShortestPathTest, PicksCheaperBranch) {
  const RoadNetwork net = MakeDiamond();
  const auto result = ShortestPath(net, 0, 3, IdWeight);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->path, (std::vector<int64_t>{0, 1, 3}));
  EXPECT_DOUBLE_EQ(result->cost, 1.0 + 2.0 + 4.0);
}

TEST(ShortestPathTest, UnreachableReturnsNullopt) {
  RoadNetwork net;
  net.AddSegment({});
  net.AddSegment({});
  net.Finalize();  // no edges
  EXPECT_FALSE(ShortestPath(net, 0, 1, IdWeight).has_value());
}

TEST(ShortestPathTest, TrivialSelfPath) {
  const RoadNetwork net = MakeDiamond();
  const auto result = ShortestPath(net, 2, 2, IdWeight);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->path, (std::vector<int64_t>{2}));
}

TEST(ShortestPathTest, MatchesBruteForceOnCity) {
  const SyntheticCityConfig config{.grid_width = 4, .grid_height = 4};
  const RoadNetwork net = BuildSyntheticCity(config);
  auto weight = [&](int64_t v) { return net.FreeFlowTravelTime(v); };
  // Bellman-Ford as the brute-force reference from source 0.
  const int64_t n = net.num_segments();
  std::vector<double> dist(static_cast<size_t>(n), 1e18);
  dist[0] = weight(0);
  for (int64_t iter = 0; iter < n; ++iter) {
    bool changed = false;
    for (int64_t u = 0; u < n; ++u) {
      if (dist[static_cast<size_t>(u)] >= 1e18) continue;
      for (const int64_t v : net.OutNeighbors(u)) {
        const double nd = dist[static_cast<size_t>(u)] + weight(v);
        if (nd < dist[static_cast<size_t>(v)] - 1e-9) {
          dist[static_cast<size_t>(v)] = nd;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  for (int64_t target : {n / 3, n / 2, n - 1}) {
    const auto result = ShortestPath(net, 0, target, weight);
    if (dist[static_cast<size_t>(target)] >= 1e18) {
      EXPECT_FALSE(result.has_value());
    } else {
      ASSERT_TRUE(result.has_value()) << "target " << target;
      EXPECT_NEAR(result->cost, dist[static_cast<size_t>(target)], 1e-6);
    }
  }
}

TEST(ShortestPathTest, PathIsConnectedInNetwork) {
  const SyntheticCityConfig config{.grid_width = 5, .grid_height = 5};
  const RoadNetwork net = BuildSyntheticCity(config);
  auto weight = [&](int64_t v) { return net.FreeFlowTravelTime(v); };
  const auto result = ShortestPath(net, 0, net.num_segments() - 1, weight);
  ASSERT_TRUE(result.has_value());
  for (size_t i = 0; i + 1 < result->path.size(); ++i) {
    EXPECT_TRUE(net.HasEdge(result->path[i], result->path[i + 1]));
  }
}

TEST(KspTest, ReturnsSortedDistinctSimplePaths) {
  const SyntheticCityConfig config{.grid_width = 5, .grid_height = 5};
  const RoadNetwork net = BuildSyntheticCity(config);
  auto weight = [&](int64_t v) { return net.FreeFlowTravelTime(v); };
  const auto paths = KShortestPaths(net, 0, net.num_segments() / 2, 5, weight);
  ASSERT_GE(paths.size(), 2u);
  std::set<std::vector<int64_t>> unique;
  for (size_t i = 0; i < paths.size(); ++i) {
    // Sorted by cost.
    if (i > 0) EXPECT_GE(paths[i].cost, paths[i - 1].cost - 1e-9);
    // Distinct.
    EXPECT_TRUE(unique.insert(paths[i].path).second);
    // Simple (loopless).
    std::set<int64_t> nodes(paths[i].path.begin(), paths[i].path.end());
    EXPECT_EQ(nodes.size(), paths[i].path.size());
    // Connected.
    for (size_t j = 0; j + 1 < paths[i].path.size(); ++j) {
      EXPECT_TRUE(net.HasEdge(paths[i].path[j], paths[i].path[j + 1]));
    }
  }
}

TEST(KspTest, FirstPathIsShortest) {
  const RoadNetwork net = MakeDiamond();
  const auto paths = KShortestPaths(net, 0, 3, 3, IdWeight);
  ASSERT_EQ(paths.size(), 2u);  // only two simple paths exist
  EXPECT_EQ(paths[0].path, (std::vector<int64_t>{0, 1, 3}));
  EXPECT_EQ(paths[1].path, (std::vector<int64_t>{0, 2, 3}));
}

TEST(KspTest, EqualCostPathsComeOutInLexicographicOrder) {
  // 0 -> {1, 2, 3} -> 4 under a uniform metric: three simple paths of
  // identical cost. The documented contract pins their order to the node
  // sequence, independent of heap internals or generation order.
  RoadNetwork net;
  for (int i = 0; i < 5; ++i) {
    RoadSegment s;
    s.length_m = 100;
    s.maxspeed_mps = 10;
    net.AddSegment(s);
  }
  for (const int64_t mid : {1, 2, 3}) {
    net.AddEdge(0, mid);
    net.AddEdge(mid, 4);
  }
  net.Finalize();
  auto uniform = [](int64_t) { return 1.0; };
  const auto paths = KShortestPaths(net, 0, 4, 5, uniform);
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_EQ(paths[0].path, (std::vector<int64_t>{0, 1, 4}));
  EXPECT_EQ(paths[1].path, (std::vector<int64_t>{0, 2, 4}));
  EXPECT_EQ(paths[2].path, (std::vector<int64_t>{0, 3, 4}));
  for (const auto& p : paths) EXPECT_DOUBLE_EQ(p.cost, 3.0);
}

TEST(DijkstraRouterTest, BitwiseIdenticalToShortestPathAcrossQueries) {
  const SyntheticCityConfig config{.grid_width = 6, .grid_height = 6,
                                   .seed = 11};
  const RoadNetwork net = BuildSyntheticCity(config);
  auto weight = [&](int64_t v) { return net.FreeFlowTravelTime(v); };
  DijkstraRouter router(&net);
  const int64_t n = net.num_segments();
  for (int64_t q = 0; q < 40; ++q) {
    const int64_t src = (q * 7919) % n;
    const int64_t dst = (q * 104729 + 13) % n;
    const auto a = ShortestPath(net, src, dst, weight);
    const auto b = router.Route(src, dst, weight);
    ASSERT_EQ(a.has_value(), b.has_value()) << src << "->" << dst;
    if (!a.has_value()) continue;
    // Bitwise, not approximate: the workspace router must replay the exact
    // float operations of the legacy routine (golden corpora depend on it).
    EXPECT_EQ(a->cost, b->cost) << src << "->" << dst;
    EXPECT_EQ(a->path, b->path) << src << "->" << dst;
  }
}

}  // namespace
}  // namespace start::roadnet
