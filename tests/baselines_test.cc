#include <cmath>
#include <gtest/gtest.h>

#include "baselines/node2vec.h"
#include "baselines/pim.h"
#include "baselines/seq2seq.h"
#include "baselines/transformer.h"
#include "data/dataset.h"
#include "roadnet/synthetic_city.h"
#include "traj/trip_generator.h"

namespace start::baselines {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  BaselinesTest()
      : net_(roadnet::BuildSyntheticCity(
            {.grid_width = 5, .grid_height = 5})),
        traffic_(&net_, {}) {
    traj::TripGenerator::Config config;
    config.num_drivers = 4;
    config.num_days = 4;
    config.trips_per_driver_day = 4.0;
    traj::TripGenerator gen(&traffic_, config);
    auto raw = gen.Generate();
    data::DatasetConfig ds;
    ds.min_length = 5;
    ds.min_user_trajectories = 3;
    corpus_ = data::TrajDataset::FromCorpus(net_, std::move(raw), ds).All();
  }

  PretrainOptions QuickOptions() const {
    PretrainOptions options;
    options.epochs = 2;
    options.batch_size = 8;
    return options;
  }

  void CheckEncoderContract(SequenceBaseline* model) {
    // Pretraining runs and returns a finite loss.
    const double loss = model->Pretrain(corpus_, QuickOptions());
    EXPECT_TRUE(std::isfinite(loss));
    // Embeddings have the right shape and are finite and non-constant.
    std::vector<traj::Trajectory> sample(corpus_.begin(),
                                         corpus_.begin() + 6);
    const auto emb = model->EmbedAll(sample, eval::EncodeMode::kFull);
    ASSERT_EQ(static_cast<int64_t>(emb.size()), 6 * model->dim());
    double var = 0.0;
    for (int64_t j = 0; j < model->dim(); ++j) {
      double mean = 0.0;
      for (int64_t i = 0; i < 6; ++i) mean += emb[i * model->dim() + j];
      mean /= 6.0;
      for (int64_t i = 0; i < 6; ++i) {
        const double d = emb[i * model->dim() + j] - mean;
        var += d * d;
      }
    }
    EXPECT_GT(var, 1e-8);
    for (const float v : emb) EXPECT_TRUE(std::isfinite(v));
  }

  roadnet::RoadNetwork net_;
  traj::TrafficModel traffic_;
  std::vector<traj::Trajectory> corpus_;
};

TEST_F(BaselinesTest, Node2VecEmbedsNeighborsCloser) {
  Node2VecConfig config;
  config.dim = 16;
  config.epochs = 3;
  const auto emb = TrainNode2Vec(net_, config);
  ASSERT_EQ(static_cast<int64_t>(emb.size()), net_.num_segments() * 16);
  // Cosine similarity of connected pairs should exceed random pairs.
  auto cosine = [&](int64_t a, int64_t b) {
    double dot = 0.0, na = 0.0, nb = 0.0;
    for (int64_t j = 0; j < 16; ++j) {
      dot += emb[a * 16 + j] * emb[b * 16 + j];
      na += emb[a * 16 + j] * emb[a * 16 + j];
      nb += emb[b * 16 + j] * emb[b * 16 + j];
    }
    return dot / std::sqrt(na * nb + 1e-12);
  };
  double connected = 0.0;
  int64_t nc = 0;
  for (size_t e = 0; e < net_.edge_sources().size(); e += 3) {
    connected += cosine(net_.edge_sources()[e], net_.edge_targets()[e]);
    ++nc;
  }
  common::Rng rng(1);
  double random = 0.0;
  int64_t nr = 0;
  for (int i = 0; i < 200; ++i) {
    const int64_t a = rng.UniformInt(net_.num_segments());
    const int64_t b = rng.UniformInt(net_.num_segments());
    if (a == b) continue;
    random += cosine(a, b);
    ++nr;
  }
  EXPECT_GT(connected / nc, random / nr + 0.05);
}

TEST_F(BaselinesTest, Traj2VecContract) {
  common::Rng rng(2);
  Traj2Vec model({.d = 16, .seed = 2}, &net_, &rng);
  CheckEncoderContract(&model);
}

TEST_F(BaselinesTest, T2VecContract) {
  common::Rng rng(3);
  T2Vec model({.d = 16, .seed = 3}, &net_, &rng);
  CheckEncoderContract(&model);
}

TEST_F(BaselinesTest, TrembrContract) {
  common::Rng rng(4);
  Trembr model({.d = 16, .seed = 4}, &net_, &rng);
  CheckEncoderContract(&model);
}

TEST_F(BaselinesTest, TransformerMlmContract) {
  common::Rng rng(5);
  TransformerBaselineConfig config;
  config.d = 16;
  config.layers = 1;
  config.heads = 2;
  TransformerMlm model(config, &net_, &rng);
  CheckEncoderContract(&model);
}

TEST_F(BaselinesTest, BertContract) {
  common::Rng rng(6);
  TransformerBaselineConfig config;
  config.d = 16;
  config.layers = 1;
  config.heads = 2;
  Bert model(config, &net_, &rng);
  CheckEncoderContract(&model);
}

TEST_F(BaselinesTest, ToastUsesNode2VecInit) {
  common::Rng rng(7);
  Node2VecConfig n2v;
  n2v.dim = 16;
  n2v.epochs = 1;
  TransformerBaselineConfig config;
  config.d = 16;
  config.layers = 1;
  config.heads = 2;
  config.road_embedding_init = TrainNode2Vec(net_, n2v);
  Toast model(config, &net_, &rng);
  CheckEncoderContract(&model);
}

TEST_F(BaselinesTest, PimContract) {
  common::Rng rng(8);
  PimConfig config;
  config.d = 16;
  Pim model(config, &net_, &rng);
  CheckEncoderContract(&model);
}

TEST_F(BaselinesTest, PimTfContract) {
  common::Rng rng(9);
  PimConfig config;
  config.d = 16;
  PimTf model(config, &net_, &rng);
  CheckEncoderContract(&model);
}

TEST_F(BaselinesTest, TrembrPretrainingReducesLoss) {
  common::Rng rng(10);
  Trembr model({.d = 16, .seed = 10}, &net_, &rng);
  PretrainOptions one;
  one.epochs = 1;
  one.batch_size = 8;
  const double first = model.Pretrain(corpus_, one);
  PretrainOptions more = one;
  more.epochs = 3;
  const double later = model.Pretrain(corpus_, more);
  EXPECT_LT(later, first);
}

}  // namespace
}  // namespace start::baselines
