#include <cmath>
#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/attention.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "tensor/ops.h"

namespace start::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(LinearTest, Shapes2dAnd3d) {
  common::Rng rng(1);
  Linear fc(8, 3, &rng);
  const Tensor x2 = Tensor::Rand(Shape({5, 8}), &rng, -1, 1);
  EXPECT_EQ(fc.Forward(x2).shape(), Shape({5, 3}));
  const Tensor x3 = Tensor::Rand(Shape({2, 4, 8}), &rng, -1, 1);
  EXPECT_EQ(fc.Forward(x3).shape(), Shape({2, 4, 3}));
}

TEST(LinearTest, NoBiasHasOneParameter) {
  common::Rng rng(2);
  Linear with_bias(4, 4, &rng, /*bias=*/true);
  Linear without(4, 4, &rng, /*bias=*/false);
  EXPECT_EQ(with_bias.Parameters().size(), 2u);
  EXPECT_EQ(without.Parameters().size(), 1u);
}

TEST(LinearTest, ZeroInputYieldsBias) {
  common::Rng rng(3);
  Linear fc(4, 2, &rng);
  fc.Parameters()[1].data()[0] = 7.0f;  // bias[0]
  const Tensor y = fc.Forward(Tensor::Zeros(Shape({1, 4})));
  EXPECT_FLOAT_EQ(y.at({0, 0}), 7.0f);
}

TEST(EmbeddingTest, LookupMatchesTableRows) {
  common::Rng rng(4);
  Embedding emb(10, 6, &rng);
  const Tensor out = emb.Forward({3, 3, 7});
  EXPECT_EQ(out.shape(), Shape({3, 6}));
  for (int64_t j = 0; j < 6; ++j) {
    EXPECT_EQ(out.at({0, j}), emb.table().at({3, j}));
    EXPECT_EQ(out.at({1, j}), emb.table().at({3, j}));
    EXPECT_EQ(out.at({2, j}), emb.table().at({7, j}));
  }
}

TEST(ModuleTest, NamedParametersAreQualified) {
  common::Rng rng(5);
  FeedForward ffn(8, 16, &rng);
  const auto named = ffn.NamedParameters();
  ASSERT_EQ(named.size(), 4u);
  EXPECT_EQ(named[0].first, "fc1.weight");
  EXPECT_EQ(named[3].first, "fc2.bias");
}

TEST(ModuleTest, ParameterCountIsExact) {
  common::Rng rng(6);
  Linear fc(8, 3, &rng);
  EXPECT_EQ(fc.ParameterCount(), 8 * 3 + 3);
}

TEST(ModuleTest, SaveLoadRoundTrip) {
  common::Rng rng(7);
  FeedForward a(4, 8, &rng);
  FeedForward b(4, 8, &rng);
  const std::string path = std::string(::testing::TempDir()) + "/ffn.sttn";
  ASSERT_TRUE(a.Save(path).ok());
  ASSERT_TRUE(b.Load(path).ok());
  const auto pa = a.Parameters();
  const auto pb = b.Parameters();
  for (size_t i = 0; i < pa.size(); ++i) {
    for (int64_t j = 0; j < pa[i].numel(); ++j) {
      EXPECT_EQ(pa[i].data()[j], pb[i].data()[j]);
    }
  }
}

TEST(ModuleTest, LoadRejectsShapeMismatch) {
  common::Rng rng(8);
  Linear a(4, 4, &rng);
  Linear b(4, 5, &rng);
  const std::string path = std::string(::testing::TempDir()) + "/lin.sttn";
  ASSERT_TRUE(a.Save(path).ok());
  EXPECT_FALSE(b.Load(path).ok());
}

TEST(ModuleTest, ClipGradNormScalesDown) {
  common::Rng rng(9);
  Linear fc(4, 4, &rng);
  auto params = fc.Parameters();
  for (auto& p : params) {
    p.ZeroGrad();
    for (int64_t i = 0; i < p.numel(); ++i) {
      const_cast<float*>(p.grad())[i] = 10.0f;
    }
  }
  const double before = ClipGradNorm(params, 1.0);
  EXPECT_GT(before, 1.0);
  double norm = 0.0;
  for (const auto& p : params) {
    for (int64_t i = 0; i < p.numel(); ++i) {
      norm += p.grad()[i] * p.grad()[i];
    }
  }
  EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-4);
}

TEST(LayerNormLayerTest, OutputShapeAndFinite) {
  common::Rng rng(10);
  LayerNormLayer ln(16);
  const Tensor x = Tensor::Rand(Shape({3, 4, 16}), &rng, -5, 5);
  const Tensor y = ln.Forward(x);
  EXPECT_EQ(y.shape(), x.shape());
  for (int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(y.data()[i]));
  }
}

TEST(PositionalEncodingTest, FirstRowAlternates) {
  const Tensor pe = SinusoidalPositionalEncoding(4, 6);
  // Position 0: sin(0)=0, cos(0)=1 alternating.
  EXPECT_FLOAT_EQ(pe.at({0, 0}), 0.0f);
  EXPECT_FLOAT_EQ(pe.at({0, 1}), 1.0f);
  EXPECT_FLOAT_EQ(pe.at({0, 2}), 0.0f);
}

TEST(PositionalEncodingTest, RowsDiffer) {
  const Tensor pe = SinusoidalPositionalEncoding(8, 16);
  double diff = 0.0;
  for (int64_t j = 0; j < 16; ++j) {
    diff += std::fabs(pe.at({1, j}) - pe.at({5, j}));
  }
  EXPECT_GT(diff, 0.1);
}

TEST(AttentionTest, OutputShape) {
  common::Rng rng(11);
  MultiHeadSelfAttention attn(16, 4, &rng, 0.0f);
  attn.SetTraining(false);
  const Tensor x = Tensor::Rand(Shape({2, 5, 16}), &rng, -1, 1);
  EXPECT_EQ(attn.Forward(x, Tensor()).shape(), Shape({2, 5, 16}));
}

TEST(AttentionTest, PaddingBiasBlocksAttention) {
  // With one valid token, every query must attend only to position 0, so the
  // output at every position equals the output at position 0.
  common::Rng rng(12);
  MultiHeadSelfAttention attn(8, 2, &rng, 0.0f);
  attn.SetTraining(false);
  const Tensor x = Tensor::Rand(Shape({1, 4, 8}), &rng, -1, 1);
  const Tensor bias = MakePaddingBias({1}, 4);
  const Tensor y = attn.Forward(x, bias);
  for (int64_t pos = 1; pos < 4; ++pos) {
    for (int64_t j = 0; j < 8; ++j) {
      EXPECT_NEAR(y.at({0, pos, j}), y.at({0, 0, j}), 1e-5);
    }
  }
}

TEST(AttentionTest, PaddingContentDoesNotLeak) {
  // Changing the padded tail of the input must not change valid outputs.
  common::Rng rng(13);
  MultiHeadSelfAttention attn(8, 2, &rng, 0.0f);
  attn.SetTraining(false);
  std::vector<float> base(static_cast<size_t>(1 * 4 * 8));
  common::Rng data_rng(14);
  for (auto& v : base) v = static_cast<float>(data_rng.Uniform(-1, 1));
  std::vector<float> altered = base;
  for (int64_t i = 2 * 8; i < 4 * 8; ++i) altered[i] += 5.0f;  // pad tail
  const Tensor bias = MakePaddingBias({2}, 4);
  const Tensor y1 = attn.Forward(
      Tensor::FromVector(Shape({1, 4, 8}), std::move(base)), bias);
  const Tensor y2 = attn.Forward(
      Tensor::FromVector(Shape({1, 4, 8}), std::move(altered)), bias);
  for (int64_t pos = 0; pos < 2; ++pos) {
    for (int64_t j = 0; j < 8; ++j) {
      EXPECT_NEAR(y1.at({0, pos, j}), y2.at({0, pos, j}), 1e-5);
    }
  }
}

TEST(AttentionTest, ScoreBiasShiftsAttention) {
  // A large positive bias toward key k should pull outputs toward value k.
  common::Rng rng(15);
  MultiHeadSelfAttention attn(8, 1, &rng, 0.0f);
  attn.SetTraining(false);
  const Tensor x = Tensor::Rand(Shape({1, 3, 8}), &rng, -1, 1);
  std::vector<float> bias_data(9, 0.0f);
  for (int64_t i = 0; i < 3; ++i) bias_data[static_cast<size_t>(i * 3 + 2)] = 50.0f;
  const Tensor bias = Tensor::FromVector(Shape({1, 3, 3}), std::move(bias_data));
  const Tensor y = attn.Forward(x, bias);
  // All outputs should now be (near) identical: everything attends to key 2.
  for (int64_t pos = 1; pos < 3; ++pos) {
    for (int64_t j = 0; j < 8; ++j) {
      EXPECT_NEAR(y.at({0, pos, j}), y.at({0, 0, j}), 1e-4);
    }
  }
}

TEST(TransformerEncoderLayerTest, ForwardShapeAndGradFlow) {
  common::Rng rng(16);
  TransformerEncoderLayer layer(16, 4, 16, &rng, 0.0f);
  layer.SetTraining(false);
  Tensor x = Tensor::Rand(Shape({2, 5, 16}), &rng, -1, 1);
  x.set_requires_grad(true);
  Tensor y = layer.Forward(x, Tensor());
  EXPECT_EQ(y.shape(), Shape({2, 5, 16}));
  Tensor loss = tensor::Mean(y);
  loss.Backward();
  double grad_norm = 0.0;
  for (int64_t i = 0; i < x.numel(); ++i) grad_norm += std::fabs(x.grad()[i]);
  EXPECT_GT(grad_norm, 0.0);
}

}  // namespace
}  // namespace start::nn
