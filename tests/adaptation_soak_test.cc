// Adaptation-loop churn soak (the `soak` ctest label, run under the TSan CI
// job with an extended timeout): bursts of ingest interleave with
// concurrent readers querying the hot-swappable serving index, a churn
// thread removing already-ingested ids, and repeated retrain + compaction
// rounds — the whole closed loop under fire at once. The soak asserts the
// invariants that must survive arbitrary interleavings (accounting
// identity, epoch == swaps, every round accounted, no lost live id after a
// final quiescent round) and leaves data-race detection to TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/checkpoint.h"
#include "core/start_model.h"
#include "serve/adaptation.h"
#include "serve/stream_pipeline.h"
#include "testing.h"

namespace start {
namespace {

using serve::AdaptationConfig;
using serve::AdaptationController;
using serve::AdaptationState;
using serve::AdaptationStats;
using serve::PipelineStats;
using serve::StreamItem;

constexpr int64_t kIdleTimeoutUs = 300'000'000;

TEST(AdaptationSoakTest, ChurnWithConcurrentQueriesRemovalsAndRounds) {
  const auto world = testutil::MakeTinyWorld();
  const core::StartConfig model_config = testutil::TinyStartConfig();
  testutil::TempDir dir;

  AdaptationConfig config;
  config.model = model_config;
  config.artifact_dir = dir.path();
  config.base_checkpoint = dir.File("base.sttn");
  config.finetune.epochs = 1;
  config.finetune.batch_size = 8;
  config.finetune.num_workers = 0;
  config.drift.window_size = 1 << 20;  // rounds are triggered explicitly
  config.stream.match_workers = 2;
  config.stream.embed_workers = 2;
  config.stream.service.max_batch_size = 8;
  config.stream.service.batch_deadline_us = 50;
  config.corpus_capacity = 64;
  config.min_retrain_corpus = 8;
  config.swap_timeout_us = 10'000'000;
  {
    common::Rng rng(7);
    core::StartModel model(model_config, world->net.get(),
                           world->transfer.get(), &rng);
    ASSERT_TRUE(core::SaveModelCheckpoint(
                    config.base_checkpoint, model,
                    core::HashStartConfig(model_config))
                    .ok());
  }
  auto created = AdaptationController::Create(config, world->net.get(),
                                              world->transfer.get(),
                                              world->traffic.get());
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto controller = std::move(created.value());

  // The full stream, pushed in bursts with a flush between them so the
  // pipeline periodically offers quiescent windows for swaps to land in.
  constexpr int64_t kBursts = 8;
  constexpr int64_t kBurstSize = 12;
  std::vector<StreamItem> stream;
  {
    common::Rng rng(99);
    int64_t id = 0;
    size_t trip = 0;
    while (static_cast<int64_t>(stream.size()) < kBursts * kBurstSize) {
      StreamItem item;
      item.id = id++;
      item.gps = traj::SimulateGps(
          *world->net, world->corpus[trip++ % world->corpus.size()],
          /*sample_interval_s=*/30.0, /*noise_m=*/10.0, &rng);
      if (item.gps.points.size() >= 2) stream.push_back(std::move(item));
    }
  }

  std::atomic<bool> stop_readers{false};
  std::atomic<bool> stop_churn{false};
  std::atomic<int64_t> pushed_frontier{0};  // ids < frontier were pushed
  std::mutex removed_mu;
  std::set<int64_t> removed;

  // Readers hammer the serving bundle across swaps: engine() is re-fetched
  // every iteration, so queries keep racing compaction and retrain swaps.
  const int64_t dim = controller->engine().encoder->dim();
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      common::Rng rng(static_cast<uint64_t>(700 + r));
      while (!stop_readers.load(std::memory_order_acquire)) {
        std::vector<float> q(static_cast<size_t>(dim));
        for (auto& v : q) v = static_cast<float>(rng.Normal());
        const auto index = controller->engine().index;
        const auto result = index->Query(q.data(), dim, 5);
        EXPECT_TRUE(result.ok()) << result.status().ToString();
        if (!result.ok()) continue;
        std::set<int64_t> seen;
        for (const auto& nb : *result) {
          EXPECT_TRUE(seen.insert(nb.id).second) << "duplicate neighbor";
        }
      }
    });
  }

  // The churn thread removes every 4th pushed id, trailing the frontier.
  // NotFound is a legal outcome (the id may have failed matching or been
  // shed); anything else is not.
  std::thread churner([&] {
    int64_t next = 0;
    while (!stop_churn.load(std::memory_order_acquire)) {
      if (next + 4 <= pushed_frontier.load(std::memory_order_acquire)) {
        const int64_t victim = next;
        next += 4;
        const common::Status st = controller->Remove(victim);
        if (st.ok()) {
          std::lock_guard<std::mutex> lock(removed_mu);
          removed.insert(victim);
        } else {
          EXPECT_EQ(st.code(), common::StatusCode::kNotFound)
              << st.ToString();
        }
      } else {
        std::this_thread::yield();
      }
    }
  });

  // Producer: bursts with interleaved retrain/compaction triggers, all
  // while the readers and the churner keep running.
  size_t cursor = 0;
  for (int64_t burst = 0; burst < kBursts; ++burst) {
    for (int64_t i = 0; i < kBurstSize && cursor < stream.size();
         ++i, ++cursor) {
      ASSERT_TRUE(controller->Push(stream[cursor]).ok());
      pushed_frontier.store(stream[cursor].id + 1,
                            std::memory_order_release);
    }
    controller->Flush();
    if (burst % 3 == 1) controller->TriggerRetrain();
    if (burst % 3 == 2) controller->TriggerCompaction();
  }
  // Quiesce the churn before the final round: a Remove() racing a swap may
  // legitimately resurrect an id in the new index until the NEXT round (the
  // documented convergence window), so the exact end-state checks below
  // need removals to have stopped first. The readers keep hammering.
  stop_churn.store(true, std::memory_order_release);
  churner.join();
  // One final quiescent round so the catch-up contract is checkable below.
  controller->Flush();
  ASSERT_TRUE(controller->WaitUntilIdle(kIdleTimeoutUs));
  controller->TriggerRetrain();
  ASSERT_TRUE(controller->WaitUntilIdle(kIdleTimeoutUs));
  stop_readers.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  const AdaptationStats s = controller->stats();
  const PipelineStats p = controller->pipeline()->stats();
  // Pipeline accounting survived the churn.
  EXPECT_EQ(p.in_flight, 0);
  EXPECT_EQ(p.accepted, p.ingested() + p.total_failed() + p.embed.dropped +
                            p.upsert.dropped);
  // Every successful swap moved the epoch, and every swap is accounted to
  // exactly one completed retrain round or compaction.
  EXPECT_EQ(p.swaps, p.epoch);
  EXPECT_EQ(p.swaps, s.rounds_completed + s.compactions);
  EXPECT_LE(s.rounds_completed, s.rounds_started);
  EXPECT_EQ(s.state, AdaptationState::kServing);
  // The final (quiescent, uncontended) round must have landed.
  EXPECT_GE(s.rounds_completed, 1);
  EXPECT_GE(s.generation, 1);
  // Post-round catch-up contract: after the final round the serving index
  // is exactly the recorded corpus — nothing lost, nothing resurrected.
  const auto index = controller->engine().index;
  int64_t live = 0;
  {
    std::lock_guard<std::mutex> lock(removed_mu);
    for (const StreamItem& item : stream) {
      if (index->Contains(item.id)) {
        ++live;
        EXPECT_EQ(removed.count(item.id), 0u)
            << "removed id " << item.id << " resurrected";
      }
    }
  }
  EXPECT_EQ(index->size(), live);
  EXPECT_EQ(index->size(), s.corpus_size);
}

}  // namespace
}  // namespace start
