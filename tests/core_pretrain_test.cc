#include "core/pretrain.h"

#include <gtest/gtest.h>

#include "data/batch.h"
#include "data/dataset.h"
#include "data/loader.h"
#include "data/span_mask.h"
#include "testing.h"

namespace start::core {
namespace {

// Fixture world and model scale come from the shared harness
// (tests/testing.h); this file keeps only pretrain-specific logic.
class PretrainTest : public ::testing::Test {
 protected:
  PretrainTest()
      : world_(testutil::MakeTinyWorld()),
        net_(*world_->net),
        traffic_(*world_->traffic),
        corpus_(world_->corpus),
        transfer_(world_->transfer.get()) {}

  StartConfig TinyConfig() const { return testutil::TinyStartConfig(); }

  std::unique_ptr<testutil::TinyWorld> world_;
  roadnet::RoadNetwork& net_;
  traj::TrafficModel& traffic_;
  std::vector<traj::Trajectory>& corpus_;
  roadnet::TransferProbability* transfer_;
};

TEST_F(PretrainTest, LossDecreasesOverEpochs) {
  ASSERT_GT(corpus_.size(), 30u);
  common::Rng rng(1);
  StartModel model(TinyConfig(), &net_, transfer_, &rng);
  PretrainConfig config;
  config.epochs = 4;
  config.batch_size = 8;
  config.lr = 2e-3;
  const PretrainStats stats = Pretrain(&model, corpus_, &traffic_, config);
  ASSERT_EQ(stats.epoch_loss.size(), 4u);
  EXPECT_LT(stats.epoch_loss.back(), stats.epoch_loss.front());
}

TEST_F(PretrainTest, MaskOnlyVariantTrains) {
  common::Rng rng(2);
  StartModel model(TinyConfig(), &net_, transfer_, &rng);
  PretrainConfig config;
  config.epochs = 2;
  config.batch_size = 8;
  config.use_contrastive_task = false;
  const PretrainStats stats = Pretrain(&model, corpus_, &traffic_, config);
  EXPECT_LT(stats.epoch_mask_loss.back(), stats.epoch_mask_loss.front());
  EXPECT_EQ(stats.epoch_contrastive_loss.back(), 0.0);
}

TEST_F(PretrainTest, ContrastiveOnlyVariantTrains) {
  common::Rng rng(3);
  StartModel model(TinyConfig(), &net_, transfer_, &rng);
  PretrainConfig config;
  config.epochs = 4;
  config.batch_size = 8;
  config.lr = 2e-3;
  config.use_mask_task = false;
  const PretrainStats stats = Pretrain(&model, corpus_, &traffic_, config);
  EXPECT_LT(stats.epoch_contrastive_loss.back(),
            stats.epoch_contrastive_loss.front());
  EXPECT_EQ(stats.epoch_mask_loss.back(), 0.0);
}

TEST_F(PretrainTest, MaskedRecoveryBeatsChance) {
  // After enough epochs of span-masked recovery, the model should predict
  // masked roads far better than the 1/|V| chance level.
  common::Rng rng(4);
  StartConfig model_config = TinyConfig();
  model_config.d = 32;
  model_config.gat_layers = 2;
  model_config.gat_heads = {4, 1};
  model_config.encoder_layers = 2;
  StartModel model(model_config, &net_, transfer_, &rng);
  PretrainConfig config;
  config.epochs = 40;
  config.batch_size = 8;
  config.lr = 2e-3;
  config.use_contrastive_task = false;
  Pretrain(&model, corpus_, &traffic_, config);

  model.SetTraining(false);
  tensor::NoGradGuard no_grad;
  common::Rng mask_rng(5);
  int64_t correct = 0, total = 0;
  for (size_t i = 0; i < std::min<size_t>(30, corpus_.size()); ++i) {
    data::View v = data::MakeView(corpus_[i]);
    const auto info = data::ApplySpanMask(&v, 2, 0.15, &mask_rng);
    if (info.positions.empty()) continue;
    const data::Batch batch = data::MakeBatch({v});
    const auto out = model.Encode(batch);
    const auto logits =
        model.MaskedLogits(out, info.positions, batch.max_len);
    for (size_t k = 0; k < info.positions.size(); ++k) {
      const float* row = logits.data() + k * net_.num_segments();
      int64_t argmax = 0;
      for (int64_t c = 1; c < net_.num_segments(); ++c) {
        if (row[c] > row[argmax]) argmax = c;
      }
      correct += argmax == info.targets[k] ? 1 : 0;
      ++total;
    }
  }
  ASSERT_GT(total, 0);
  const double acc = static_cast<double>(correct) / static_cast<double>(total);
  const double chance = 1.0 / static_cast<double>(net_.num_segments());
  EXPECT_GT(acc, 5.0 * chance);
}

// ---- Checkpoint / resume determinism --------------------------------------

// Interrupt a run at mid-plan, resume it from the checkpoint into a fresh
// model, and require the final parameters and loss trace to be bitwise
// identical to a never-interrupted run. Exercised for worker counts 0
// (synchronous) and 2 (async prefetch) on both sides — the loader's step
// seeding plus the trainer's per-step dropout seeding make worker count a
// pure throughput knob, and resume must preserve that.
TEST_F(PretrainTest, ResumeMatchesUninterruptedRunBitwise) {
  PretrainConfig base;
  base.epochs = 2;
  base.batch_size = 8;
  base.lr = 2e-3;
  base.seed = 21;

  // The plan is a pure function of (lengths, plan knobs); rebuild it here to
  // learn the interruption point K/2.
  data::PlanConfig plan_config;
  plan_config.batch_size = base.batch_size;
  plan_config.epochs = base.epochs;
  plan_config.seed = base.seed;
  const int64_t total_steps = static_cast<int64_t>(
      data::MakeShuffledPlan(data::Lengths(corpus_), plan_config)
          .steps.size());
  ASSERT_GT(total_steps, 3);

  testutil::TempDir dir;
  for (const int workers : {0, 2}) {
    SCOPED_TRACE("num_workers=" + std::to_string(workers));
    PretrainConfig config = base;
    config.num_workers = workers;

    // Reference: one uninterrupted run.
    common::Rng rng_full(77);
    StartModel full(TinyConfig(), &net_, transfer_, &rng_full);
    const PretrainStats stats_full =
        Pretrain(&full, corpus_, &traffic_, config);

    // Interrupted run: stop (and checkpoint) after K/2 steps...
    const std::string ckpt =
        dir.File("resume_w" + std::to_string(workers) + ".sttn");
    common::Rng rng_half(77);  // identical init to the reference run
    StartModel half(TinyConfig(), &net_, transfer_, &rng_half);
    PretrainConfig interrupted = config;
    interrupted.checkpoint_path = ckpt;
    interrupted.max_steps = total_steps / 2;
    Pretrain(&half, corpus_, &traffic_, interrupted);

    // ...then resume into a model with a *different* init: everything that
    // matters must come from the checkpoint. The resume side also swaps the
    // worker count (2 <-> 0) — determinism must hold across that too.
    common::Rng rng_resumed(1234);
    StartModel resumed(TinyConfig(), &net_, transfer_, &rng_resumed);
    PretrainConfig tail = config;
    tail.num_workers = workers == 0 ? 2 : 0;
    tail.checkpoint_path = ckpt;
    tail.resume = true;
    const PretrainStats stats_resumed =
        Pretrain(&resumed, corpus_, &traffic_, tail);

    // Bitwise-identical parameters and a bitwise-identical loss trace.
    testutil::ExpectParamsBitwiseEqual(full, resumed);
    ASSERT_EQ(stats_full.epoch_loss.size(), stats_resumed.epoch_loss.size());
    for (size_t e = 0; e < stats_full.epoch_loss.size(); ++e) {
      EXPECT_EQ(stats_full.epoch_loss[e], stats_resumed.epoch_loss[e]);
      EXPECT_EQ(stats_full.epoch_mask_loss[e],
                stats_resumed.epoch_mask_loss[e]);
      EXPECT_EQ(stats_full.epoch_contrastive_loss[e],
                stats_resumed.epoch_contrastive_loss[e]);
    }
  }
}

// A checkpoint written under one plan must not silently resume a different
// plan (changed epochs => changed schedule and step universe): the trainer
// logs and restarts from scratch, which still trains successfully.
TEST_F(PretrainTest, ResumeUnderDifferentPlanFallsBackToScratch) {
  testutil::TempDir dir;
  const std::string ckpt = dir.File("plan_change.sttn");
  common::Rng rng_a(5);
  StartModel a(TinyConfig(), &net_, transfer_, &rng_a);
  PretrainConfig config;
  config.epochs = 2;
  config.batch_size = 8;
  config.checkpoint_path = ckpt;
  Pretrain(&a, corpus_, &traffic_, config);

  common::Rng rng_b(6);
  StartModel b(TinyConfig(), &net_, transfer_, &rng_b);
  PretrainConfig changed = config;
  changed.epochs = 3;  // different plan -> resume refused, fresh run
  changed.resume = true;
  const PretrainStats stats = Pretrain(&b, corpus_, &traffic_, changed);
  ASSERT_EQ(stats.epoch_loss.size(), 3u);
  EXPECT_GT(stats.epoch_loss.front(), 0.0);
}

}  // namespace
}  // namespace start::core
