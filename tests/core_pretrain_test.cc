#include "core/pretrain.h"

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/span_mask.h"
#include "roadnet/synthetic_city.h"
#include "traj/trip_generator.h"

namespace start::core {
namespace {

class PretrainTest : public ::testing::Test {
 protected:
  PretrainTest()
      : net_(roadnet::BuildSyntheticCity(
            {.grid_width = 5, .grid_height = 5})),
        traffic_(&net_, {}) {
    traj::TripGenerator::Config config;
    config.num_drivers = 8;
    config.num_days = 8;
    config.trips_per_driver_day = 4.0;
    traj::TripGenerator gen(&traffic_, config);
    auto raw = gen.Generate();
    data::DatasetConfig ds;
    ds.min_length = 5;
    ds.min_user_trajectories = 5;
    corpus_ = data::TrajDataset::FromCorpus(net_, std::move(raw), ds).All();
    transfer_ = std::make_unique<roadnet::TransferProbability>(
        roadnet::TransferProbability::FromTrajectories(
            net_, [&] {
              std::vector<std::vector<int64_t>> seqs;
              for (const auto& t : corpus_) seqs.push_back(t.roads);
              return seqs;
            }()));
  }

  StartConfig TinyConfig() const {
    StartConfig config;
    config.d = 16;
    config.gat_layers = 1;
    config.gat_heads = {2};
    config.encoder_layers = 1;
    config.encoder_heads = 2;
    config.max_len = 64;
    return config;
  }

  roadnet::RoadNetwork net_;
  traj::TrafficModel traffic_;
  std::vector<traj::Trajectory> corpus_;
  std::unique_ptr<roadnet::TransferProbability> transfer_;
};

TEST_F(PretrainTest, LossDecreasesOverEpochs) {
  ASSERT_GT(corpus_.size(), 30u);
  common::Rng rng(1);
  StartModel model(TinyConfig(), &net_, transfer_.get(), &rng);
  PretrainConfig config;
  config.epochs = 4;
  config.batch_size = 8;
  config.lr = 2e-3;
  const PretrainStats stats = Pretrain(&model, corpus_, &traffic_, config);
  ASSERT_EQ(stats.epoch_loss.size(), 4u);
  EXPECT_LT(stats.epoch_loss.back(), stats.epoch_loss.front());
}

TEST_F(PretrainTest, MaskOnlyVariantTrains) {
  common::Rng rng(2);
  StartModel model(TinyConfig(), &net_, transfer_.get(), &rng);
  PretrainConfig config;
  config.epochs = 2;
  config.batch_size = 8;
  config.use_contrastive_task = false;
  const PretrainStats stats = Pretrain(&model, corpus_, &traffic_, config);
  EXPECT_LT(stats.epoch_mask_loss.back(), stats.epoch_mask_loss.front());
  EXPECT_EQ(stats.epoch_contrastive_loss.back(), 0.0);
}

TEST_F(PretrainTest, ContrastiveOnlyVariantTrains) {
  common::Rng rng(3);
  StartModel model(TinyConfig(), &net_, transfer_.get(), &rng);
  PretrainConfig config;
  config.epochs = 4;
  config.batch_size = 8;
  config.lr = 2e-3;
  config.use_mask_task = false;
  const PretrainStats stats = Pretrain(&model, corpus_, &traffic_, config);
  EXPECT_LT(stats.epoch_contrastive_loss.back(),
            stats.epoch_contrastive_loss.front());
  EXPECT_EQ(stats.epoch_mask_loss.back(), 0.0);
}

TEST_F(PretrainTest, MaskedRecoveryBeatsChance) {
  // After enough epochs of span-masked recovery, the model should predict
  // masked roads far better than the 1/|V| chance level.
  common::Rng rng(4);
  StartConfig model_config = TinyConfig();
  model_config.d = 32;
  model_config.gat_layers = 2;
  model_config.gat_heads = {4, 1};
  model_config.encoder_layers = 2;
  StartModel model(model_config, &net_, transfer_.get(), &rng);
  PretrainConfig config;
  config.epochs = 40;
  config.batch_size = 8;
  config.lr = 2e-3;
  config.use_contrastive_task = false;
  Pretrain(&model, corpus_, &traffic_, config);

  model.SetTraining(false);
  tensor::NoGradGuard no_grad;
  common::Rng mask_rng(5);
  int64_t correct = 0, total = 0;
  for (size_t i = 0; i < std::min<size_t>(30, corpus_.size()); ++i) {
    data::View v = data::MakeView(corpus_[i]);
    const auto info = data::ApplySpanMask(&v, 2, 0.15, &mask_rng);
    if (info.positions.empty()) continue;
    const data::Batch batch = data::MakeBatch({v});
    const auto out = model.Encode(batch);
    const auto logits =
        model.MaskedLogits(out, info.positions, batch.max_len);
    for (size_t k = 0; k < info.positions.size(); ++k) {
      const float* row = logits.data() + k * net_.num_segments();
      int64_t argmax = 0;
      for (int64_t c = 1; c < net_.num_segments(); ++c) {
        if (row[c] > row[argmax]) argmax = c;
      }
      correct += argmax == info.targets[k] ? 1 : 0;
      ++total;
    }
  }
  ASSERT_GT(total, 0);
  const double acc = static_cast<double>(correct) / static_cast<double>(total);
  const double chance = 1.0 / static_cast<double>(net_.num_segments());
  EXPECT_GT(acc, 5.0 * chance);
}

}  // namespace
}  // namespace start::core
