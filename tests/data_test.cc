#include <gtest/gtest.h>
#include <set>

#include "data/augmentation.h"
#include "data/batch.h"
#include "data/dataset.h"
#include "data/detour.h"
#include "data/span_mask.h"
#include "data/view.h"
#include "roadnet/synthetic_city.h"
#include "traj/trip_generator.h"

namespace start::data {
namespace {

class DataTest : public ::testing::Test {
 protected:
  DataTest()
      : net_(roadnet::BuildSyntheticCity(
            {.grid_width = 7, .grid_height = 7})),
        traffic_(&net_, {}) {}

  traj::Trajectory MakeTrip(uint64_t seed = 0) {
    traj::TripGenerator::Config config;
    config.num_drivers = 2;
    config.seed = 1000 + seed;
    traj::TripGenerator gen(&traffic_, config);
    traj::Trajectory t = gen.GenerateTrip(
        0, static_cast<int64_t>(seed % 5), net_.num_segments() - 2 - static_cast<int64_t>(seed),
        9 * 3600);
    EXPECT_GT(t.size(), 3);
    return t;
  }

  roadnet::RoadNetwork net_;
  traj::TrafficModel traffic_;
};

TEST_F(DataTest, MakeViewCopiesTimesAndIndexes) {
  const traj::Trajectory t = MakeTrip();
  const View v = MakeView(t);
  ASSERT_EQ(v.size(), t.size());
  for (int64_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(v.roads[static_cast<size_t>(i)], t.roads[static_cast<size_t>(i)]);
    EXPECT_GE(v.minute_idx[static_cast<size_t>(i)], 1);
    EXPECT_LE(v.minute_idx[static_cast<size_t>(i)], 1440);
    EXPECT_GE(v.dow_idx[static_cast<size_t>(i)], 1);
    EXPECT_LE(v.dow_idx[static_cast<size_t>(i)], 7);
  }
}

TEST_F(DataTest, EtaViewExposesOnlyDeparture) {
  const traj::Trajectory t = MakeTrip();
  const View v = MakeEtaView(t);
  const int64_t dep_minute = traj::MinuteIndex(t.departure_time());
  for (int64_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(v.minute_idx[static_cast<size_t>(i)], dep_minute);
    EXPECT_EQ(v.times[static_cast<size_t>(i)],
              static_cast<double>(t.departure_time()));
  }
}

TEST_F(DataTest, SpanMaskCoversRequestedRatio) {
  common::Rng rng(1);
  const traj::Trajectory t = MakeTrip();
  View v = MakeView(t);
  const auto info = ApplySpanMask(&v, 2, 0.15, &rng);
  EXPECT_GE(info.positions.size(), 1u);
  // Masked positions carry sentinels; targets the original roads.
  for (size_t k = 0; k < info.positions.size(); ++k) {
    const auto pos = static_cast<size_t>(info.positions[k]);
    EXPECT_EQ(v.roads[pos], kMaskRoad);
    EXPECT_EQ(v.minute_idx[pos], kMaskTimeIndex);
    EXPECT_EQ(v.dow_idx[pos], kMaskTimeIndex);
    EXPECT_EQ(info.targets[k], t.roads[pos]);
  }
  // Coverage near pm (within the span rounding slack).
  const double ratio = static_cast<double>(info.positions.size()) /
                       static_cast<double>(t.size());
  EXPECT_GE(ratio, 0.10);
  EXPECT_LE(ratio, 0.40);
}

TEST_F(DataTest, SpanMaskProducesContiguousRuns) {
  common::Rng rng(2);
  const traj::Trajectory t = MakeTrip(1);
  View v = MakeView(t);
  ApplySpanMask(&v, 3, 0.2, &rng);
  // Every masked run (except where clipped by the sequence end or merged
  // spans) has length >= 1; check there is at least one run of length >= 2.
  int64_t best_run = 0, run = 0;
  for (int64_t i = 0; i < v.size(); ++i) {
    run = v.roads[static_cast<size_t>(i)] == kMaskRoad ? run + 1 : 0;
    best_run = std::max(best_run, run);
  }
  EXPECT_GE(best_run, 2);
}

TEST_F(DataTest, TrimKeepsContiguityAndShrinks) {
  common::Rng rng(3);
  const traj::Trajectory t = MakeTrip(2);
  for (int rep = 0; rep < 10; ++rep) {
    const View v = Augment(t, AugmentationKind::kTrim, {}, &traffic_, &rng);
    EXPECT_LT(v.size(), t.size());
    EXPECT_GE(v.size(), t.size() - std::max<int64_t>(1, t.size() * 0.15) - 1);
    for (int64_t i = 0; i + 1 < v.size(); ++i) {
      EXPECT_TRUE(net_.HasEdge(v.roads[static_cast<size_t>(i)],
                               v.roads[static_cast<size_t>(i + 1)]));
    }
  }
}

TEST_F(DataTest, TemporalShiftPreservesRoadsAndOrder) {
  common::Rng rng(4);
  const traj::Trajectory t = MakeTrip(3);
  const View v =
      Augment(t, AugmentationKind::kTemporalShift, {}, &traffic_, &rng);
  ASSERT_EQ(v.size(), t.size());
  EXPECT_EQ(v.roads, t.roads);
  for (int64_t i = 0; i + 1 < v.size(); ++i) {
    EXPECT_LT(v.times[static_cast<size_t>(i)],
              v.times[static_cast<size_t>(i + 1)]);
  }
  // Departure unchanged; at least one later timestamp moved.
  EXPECT_EQ(v.times[0], static_cast<double>(t.timestamps[0]));
  bool changed = false;
  for (int64_t i = 1; i < v.size(); ++i) {
    if (v.times[static_cast<size_t>(i)] !=
        static_cast<double>(t.timestamps[static_cast<size_t>(i)])) {
      changed = true;
    }
  }
  EXPECT_TRUE(changed);
}

TEST_F(DataTest, MaskAugmentKeepsLength) {
  common::Rng rng(5);
  const traj::Trajectory t = MakeTrip(4);
  const View v = Augment(t, AugmentationKind::kRoadMask, {}, &traffic_, &rng);
  EXPECT_EQ(v.size(), t.size());
  int64_t masked = 0;
  for (const int64_t r : v.roads) masked += r == kMaskRoad ? 1 : 0;
  EXPECT_GT(masked, 0);
}

TEST_F(DataTest, DropoutAugmentSetsFlagOnly) {
  common::Rng rng(6);
  const traj::Trajectory t = MakeTrip(0);
  const View v = Augment(t, AugmentationKind::kDropout, {}, &traffic_, &rng);
  EXPECT_TRUE(v.embedding_dropout);
  EXPECT_EQ(v.roads, t.roads);
}

TEST_F(DataTest, BatchPadsToMaxLen) {
  const traj::Trajectory a = MakeTrip(0);
  const traj::Trajectory b = MakeTrip(1);
  const Batch batch = MakeBatch({MakeView(a), MakeView(b)});
  EXPECT_EQ(batch.batch_size, 2);
  EXPECT_EQ(batch.max_len, std::max(a.size(), b.size()));
  // Padding slots hold the pad sentinel.
  const int64_t shorter = std::min(a.size(), b.size());
  const int64_t shorter_row = a.size() < b.size() ? 0 : 1;
  for (int64_t i = shorter; i < batch.max_len; ++i) {
    EXPECT_EQ(batch.At(shorter_row, i), kPadRoad);
  }
  EXPECT_EQ(batch.lengths[static_cast<size_t>(shorter_row)], shorter);
}

TEST_F(DataTest, DatasetFiltersAndSplitsChronologically) {
  traj::TripGenerator::Config config;
  config.num_drivers = 6;
  config.num_days = 8;
  config.trips_per_driver_day = 4.0;
  traj::TripGenerator gen(&traffic_, config);
  auto corpus = gen.Generate();
  DatasetConfig ds_config;
  ds_config.min_length = 6;
  ds_config.max_length = 40;
  ds_config.min_user_trajectories = 10;
  const auto ds = TrajDataset::FromCorpus(net_, std::move(corpus), ds_config);
  EXPECT_GT(ds.train().size(), ds.val().size());
  EXPECT_GT(ds.train().size(), ds.test().size());
  for (const auto& split :
       {ds.train(), ds.val(), ds.test()}) {
    for (const auto& t : split) {
      EXPECT_GE(t.size(), 6);
      EXPECT_LE(t.size(), 40);
      EXPECT_NE(t.roads.front(), t.roads.back());  // loops removed
    }
  }
  // Chronological: train ends before test begins.
  ASSERT_FALSE(ds.train().empty());
  ASSERT_FALSE(ds.test().empty());
  EXPECT_LE(ds.train().back().departure_time(),
            ds.test().front().departure_time());
  // Driver ids re-indexed densely.
  std::set<int64_t> drivers;
  for (const auto& t : ds.All()) drivers.insert(t.driver_id);
  EXPECT_EQ(*drivers.rbegin(), ds.num_drivers() - 1);
}

TEST_F(DataTest, DetourChangesRouteKeepsEndpointsConnected) {
  common::Rng rng(7);
  int64_t made = 0;
  for (uint64_t s = 0; s < 5 && made < 2; ++s) {
    const traj::Trajectory t = MakeTrip(s);
    const auto detour = MakeDetour(traffic_, t, {}, &rng);
    if (!detour.has_value()) continue;
    ++made;
    EXPECT_NE(detour->roads, t.roads);
    EXPECT_EQ(detour->roads.front(), t.roads.front());
    EXPECT_EQ(detour->roads.back(), t.roads.back());
    for (size_t i = 0; i + 1 < detour->roads.size(); ++i) {
      EXPECT_TRUE(net_.HasEdge(detour->roads[i], detour->roads[i + 1]));
    }
    for (size_t i = 0; i + 1 < detour->timestamps.size(); ++i) {
      EXPECT_LT(detour->timestamps[i], detour->timestamps[i + 1]);
    }
  }
  EXPECT_GT(made, 0);
}

TEST_F(DataTest, DetourGeneratorSatisfiesSameContractAsYen) {
  common::Rng rng(7);
  DetourGenerator generator(&traffic_, {});
  int64_t made = 0;
  for (uint64_t s = 0; s < 8 && made < 2; ++s) {
    const traj::Trajectory t = MakeTrip(s);
    const auto detour = generator.Generate(t, &rng);
    if (!detour.has_value()) continue;
    ++made;
    EXPECT_NE(detour->roads, t.roads);
    EXPECT_EQ(detour->roads.front(), t.roads.front());
    EXPECT_EQ(detour->roads.back(), t.roads.back());
    for (size_t i = 0; i + 1 < detour->roads.size(); ++i) {
      EXPECT_TRUE(net_.HasEdge(detour->roads[i], detour->roads[i + 1]));
    }
    for (size_t i = 0; i + 1 < detour->timestamps.size(); ++i) {
      EXPECT_LT(detour->timestamps[i], detour->timestamps[i + 1]);
    }
  }
  EXPECT_GT(made, 0);
}

}  // namespace
}  // namespace start::data
