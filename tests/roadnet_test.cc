#include "roadnet/road_network.h"

#include <gtest/gtest.h>
#include <set>

#include "roadnet/synthetic_city.h"

namespace start::roadnet {
namespace {

RoadNetwork MakeTriangle() {
  // 0 -> 1 -> 2 -> 0 plus 0 -> 2.
  RoadNetwork net;
  for (int i = 0; i < 3; ++i) {
    RoadSegment s;
    s.length_m = 100.0 + i;
    s.maxspeed_mps = 10.0;
    net.AddSegment(s);
  }
  net.AddEdge(0, 1);
  net.AddEdge(1, 2);
  net.AddEdge(2, 0);
  net.AddEdge(0, 2);
  net.Finalize();
  return net;
}

TEST(RoadNetworkTest, DegreesAndNeighbors) {
  const RoadNetwork net = MakeTriangle();
  EXPECT_EQ(net.num_segments(), 3);
  EXPECT_EQ(net.num_edges(), 4);
  EXPECT_EQ(net.OutDegree(0), 2);
  EXPECT_EQ(net.InDegree(2), 2);
  const auto out0 = net.OutNeighbors(0);
  EXPECT_EQ(std::set<int64_t>(out0.begin(), out0.end()),
            (std::set<int64_t>{1, 2}));
  const auto in0 = net.InNeighbors(0);
  EXPECT_EQ(std::set<int64_t>(in0.begin(), in0.end()),
            (std::set<int64_t>{2}));
}

TEST(RoadNetworkTest, HasEdge) {
  const RoadNetwork net = MakeTriangle();
  EXPECT_TRUE(net.HasEdge(0, 1));
  EXPECT_TRUE(net.HasEdge(0, 2));
  EXPECT_FALSE(net.HasEdge(1, 0));
}

TEST(RoadNetworkTest, DuplicateEdgesCollapse) {
  RoadNetwork net;
  net.AddSegment({});
  net.AddSegment({});
  net.AddEdge(0, 1);
  net.AddEdge(0, 1);
  net.AddEdge(0, 1);
  net.Finalize();
  EXPECT_EQ(net.num_edges(), 1);
}

TEST(RoadNetworkTest, FreeFlowTravelTime) {
  const RoadNetwork net = MakeTriangle();
  EXPECT_DOUBLE_EQ(net.FreeFlowTravelTime(0), 10.0);
}

TEST(RoadNetworkTest, FeatureMatrixShapeAndOneHot) {
  const RoadNetwork net = MakeTriangle();
  const auto f = net.BuildFeatureMatrix();
  ASSERT_EQ(static_cast<int64_t>(f.size()),
            net.num_segments() * RoadNetwork::FeatureDim());
  // Road type one-hot: default kResidential = index 4.
  EXPECT_EQ(f[4], 1.0f);
  EXPECT_EQ(f[0], 0.0f);
}

TEST(RoadNetworkTest, FeatureMatrixNumericColumnsAreStandardised) {
  const SyntheticCityConfig config{.grid_width = 6, .grid_height = 6};
  const RoadNetwork net = BuildSyntheticCity(config);
  const auto f = net.BuildFeatureMatrix();
  const int64_t fd = RoadNetwork::FeatureDim();
  // Each z-scored column has ~zero mean.
  for (int64_t col = kNumRoadTypes; col < fd; ++col) {
    double mean = 0.0;
    for (int64_t v = 0; v < net.num_segments(); ++v) {
      mean += f[static_cast<size_t>(v * fd + col)];
    }
    mean /= static_cast<double>(net.num_segments());
    EXPECT_NEAR(mean, 0.0, 1e-3) << "column " << col;
  }
}

TEST(SyntheticCityTest, SegmentsComeInDirectedPairs) {
  const SyntheticCityConfig config{.grid_width = 5, .grid_height = 5};
  const RoadNetwork net = BuildSyntheticCity(config);
  EXPECT_GT(net.num_segments(), 0);
  EXPECT_EQ(net.num_segments() % 2, 0);  // every road has a reverse twin
}

TEST(SyntheticCityTest, EveryRoadHasContinuation) {
  const SyntheticCityConfig config{.grid_width = 6, .grid_height = 4};
  const RoadNetwork net = BuildSyntheticCity(config);
  for (int64_t v = 0; v < net.num_segments(); ++v) {
    EXPECT_GT(net.OutDegree(v), 0) << "dead-end segment " << v;
  }
}

TEST(SyntheticCityTest, ContainsArterialHierarchy) {
  const SyntheticCityConfig config{.grid_width = 9, .grid_height = 9,
                                   .arterial_every = 4};
  const RoadNetwork net = BuildSyntheticCity(config);
  int64_t primary = 0, residential = 0;
  for (int64_t v = 0; v < net.num_segments(); ++v) {
    if (net.segment(v).type == RoadType::kPrimary) ++primary;
    if (net.segment(v).type == RoadType::kResidential) ++residential;
  }
  EXPECT_GT(primary, 0);
  EXPECT_GT(residential, 0);
  EXPECT_GT(residential + primary, net.num_segments() / 4);
}

TEST(SyntheticCityTest, DeterministicForSeed) {
  const SyntheticCityConfig config{.grid_width = 5, .grid_height = 5,
                                   .seed = 77};
  const RoadNetwork a = BuildSyntheticCity(config);
  const RoadNetwork b = BuildSyntheticCity(config);
  ASSERT_EQ(a.num_segments(), b.num_segments());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (int64_t v = 0; v < a.num_segments(); ++v) {
    EXPECT_DOUBLE_EQ(a.segment(v).length_m, b.segment(v).length_m);
  }
}

TEST(TransferProbabilityTest, RowsNormalisedOverObservedTransitions) {
  const RoadNetwork net = MakeTriangle();
  const std::vector<std::vector<int64_t>> seqs = {
      {0, 1, 2}, {0, 2}, {0, 1}, {1, 2, 0}};
  const auto tp = TransferProbability::FromTrajectories(net, seqs);
  // count(0) = 4 appearances; 0->1 twice, 0->2 once.
  EXPECT_EQ(tp.VisitCount(0), 4);
  EXPECT_DOUBLE_EQ(tp.Prob(0, 1), 2.0 / 4.0);
  EXPECT_DOUBLE_EQ(tp.Prob(0, 2), 1.0 / 4.0);
  EXPECT_DOUBLE_EQ(tp.Prob(2, 1), 0.0);
}

TEST(TransferProbabilityTest, UnvisitedRoadHasZeroProb) {
  const RoadNetwork net = MakeTriangle();
  const auto tp = TransferProbability::FromTrajectories(net, {{0, 1}});
  EXPECT_EQ(tp.VisitCount(2), 0);
  EXPECT_DOUBLE_EQ(tp.Prob(2, 0), 0.0);
}

}  // namespace
}  // namespace start::roadnet
