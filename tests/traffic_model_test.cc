#include "traj/traffic_model.h"

#include <gtest/gtest.h>

#include "roadnet/synthetic_city.h"

namespace start::traj {
namespace {

class TrafficModelTest : public ::testing::Test {
 protected:
  TrafficModelTest()
      : net_(roadnet::BuildSyntheticCity(
            {.grid_width = 6, .grid_height = 6})),
        model_(&net_, {}) {}

  roadnet::RoadNetwork net_;
  TrafficModel model_;
};

TEST_F(TrafficModelTest, TimeHelpers) {
  EXPECT_EQ(MinuteIndex(0), 1);
  EXPECT_EQ(MinuteIndex(59), 1);
  EXPECT_EQ(MinuteIndex(60), 2);
  EXPECT_EQ(MinuteIndex(kSecondsPerDay - 1), 1440);
  EXPECT_EQ(DayOfWeekIndex(0), 1);                       // Monday
  EXPECT_EQ(DayOfWeekIndex(5 * kSecondsPerDay), 6);      // Saturday
  EXPECT_TRUE(IsWeekend(5 * kSecondsPerDay));
  EXPECT_FALSE(IsWeekend(4 * kSecondsPerDay));
  EXPECT_DOUBLE_EQ(HourOfDay(kSecondsPerDay + 3 * 3600), 3.0);
}

TEST_F(TrafficModelTest, RushHourSlowerThanNight) {
  const int64_t rush = 8 * 3600;           // Monday 08:00
  const int64_t night = 3 * 3600;          // Monday 03:00
  for (int64_t v = 0; v < net_.num_segments(); v += 7) {
    EXPECT_LT(model_.SpeedFactor(v, rush), model_.SpeedFactor(v, night));
    EXPECT_GT(model_.ExpectedTravelTime(v, rush),
              model_.ExpectedTravelTime(v, night));
  }
}

TEST_F(TrafficModelTest, WeekendFlatterThanWeekday) {
  const int64_t mon8 = 8 * 3600;
  const int64_t sat8 = 5 * kSecondsPerDay + 8 * 3600;
  EXPECT_GT(model_.RushIntensity(mon8), model_.RushIntensity(sat8));
}

TEST_F(TrafficModelTest, TwoRushPeaksOnWeekdays) {
  const double morning = model_.RushIntensity(8 * 3600);
  const double evening = model_.RushIntensity(18 * 3600);
  const double midday = model_.RushIntensity(12 * 3600);
  const double night = model_.RushIntensity(2 * 3600);
  EXPECT_GT(morning, midday);
  EXPECT_GT(evening, midday);
  EXPECT_GT(midday, night - 1e-9);
}

TEST_F(TrafficModelTest, ArterialsCongestMore) {
  double primary = 0.0, residential = 0.0;
  int64_t np = 0, nr = 0;
  for (int64_t v = 0; v < net_.num_segments(); ++v) {
    if (net_.segment(v).type == roadnet::RoadType::kPrimary) {
      primary += model_.CongestionPropensity(v);
      ++np;
    } else if (net_.segment(v).type == roadnet::RoadType::kResidential) {
      residential += model_.CongestionPropensity(v);
      ++nr;
    }
  }
  ASSERT_GT(np, 0);
  ASSERT_GT(nr, 0);
  EXPECT_GT(primary / np, residential / nr);
}

TEST_F(TrafficModelTest, SampleTravelTimePositiveAndNearExpected) {
  common::Rng rng(1);
  const int64_t road = 3;
  const int64_t t = 10 * 3600;
  const double expected = model_.ExpectedTravelTime(road, t);
  double mean = 0.0;
  for (int i = 0; i < 500; ++i) {
    const double s = model_.SampleTravelTime(road, t, &rng);
    EXPECT_GT(s, 0.0);
    mean += s;
  }
  mean /= 500.0;
  EXPECT_NEAR(mean, expected, 0.05 * expected);
}

TEST_F(TrafficModelTest, HistoricalMeanBetweenExtremes) {
  const int64_t road = 5;
  const double his = model_.HistoricalMeanTravelTime(road);
  const double best = model_.ExpectedTravelTime(road, 3 * 3600);
  const double worst = model_.ExpectedTravelTime(road, 8 * 3600);
  EXPECT_GE(his, best - 1e-9);
  EXPECT_LE(his, worst + 1e-9);
}

}  // namespace
}  // namespace start::traj
