#include "sim/kmeans.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace start::sim {
namespace {

/// Three well-separated Gaussian blobs in 2-D.
std::vector<float> MakeBlobs(int64_t per_blob, common::Rng* rng,
                             std::vector<int64_t>* labels) {
  const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  std::vector<float> data;
  for (int b = 0; b < 3; ++b) {
    for (int64_t i = 0; i < per_blob; ++i) {
      data.push_back(static_cast<float>(centers[b][0] + rng->Normal(0, 0.5)));
      data.push_back(static_cast<float>(centers[b][1] + rng->Normal(0, 0.5)));
      labels->push_back(b);
    }
  }
  return data;
}

TEST(KMeansTest, SeparatesCleanBlobs) {
  common::Rng rng(1);
  std::vector<int64_t> labels;
  const auto data = MakeBlobs(30, &rng, &labels);
  const auto result = KMeans(data, 90, 2, 3, &rng);
  const auto quality = EvaluateClusters(result.assignments, labels);
  EXPECT_GT(quality.purity, 0.95);
  EXPECT_GT(quality.nmi, 0.9);
  EXPECT_LT(result.inertia / 90.0, 1.5);  // within-blob variance only
}

TEST(KMeansTest, AssignmentsInRange) {
  common::Rng rng(2);
  std::vector<int64_t> labels;
  const auto data = MakeBlobs(10, &rng, &labels);
  const auto result = KMeans(data, 30, 2, 4, &rng);
  ASSERT_EQ(result.assignments.size(), 30u);
  for (const int64_t a : result.assignments) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 4);
  }
  EXPECT_EQ(result.centroids.size(), 8u);
}

TEST(KMeansTest, KEqualsNGivesZeroInertia) {
  common::Rng rng(3);
  std::vector<float> data = {0, 0, 5, 5, 9, 1};
  const auto result = KMeans(data, 3, 2, 3, &rng);
  EXPECT_NEAR(result.inertia, 0.0, 1e-9);
}

TEST(KMeansTest, InertiaNonIncreasingWithMoreClusters) {
  common::Rng rng(4);
  std::vector<int64_t> labels;
  const auto data = MakeBlobs(20, &rng, &labels);
  double prev = 1e18;
  for (const int64_t k : {1, 2, 3, 6}) {
    common::Rng krng(5);
    const auto result = KMeans(data, 60, 2, k, &krng);
    EXPECT_LE(result.inertia, prev + 1e-6) << "k=" << k;
    prev = result.inertia;
  }
}

TEST(ClusterQualityTest, PerfectClusteringScoresOne) {
  const std::vector<int64_t> labels = {0, 0, 1, 1, 2, 2};
  // Cluster ids permuted relative to labels: still perfect.
  const std::vector<int64_t> assignments = {2, 2, 0, 0, 1, 1};
  const auto q = EvaluateClusters(assignments, labels);
  EXPECT_DOUBLE_EQ(q.purity, 1.0);
  EXPECT_NEAR(q.nmi, 1.0, 1e-9);
}

TEST(ClusterQualityTest, SingleClusterHasChancePurity) {
  const std::vector<int64_t> labels = {0, 1, 2, 0, 1, 2};
  const std::vector<int64_t> assignments(6, 0);
  const auto q = EvaluateClusters(assignments, labels);
  EXPECT_NEAR(q.purity, 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(q.nmi, 0.0, 1e-9);
}

}  // namespace
}  // namespace start::sim
