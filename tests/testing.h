#ifndef START_TESTS_TESTING_H_
#define START_TESTS_TESTING_H_

/// \file
/// Shared test harness: the fixture builders, comparators, and filesystem
/// helpers that used to be copy-pasted per test file.
///
/// Conventions:
///  * Fixtures — `MakeTinyWorld()` builds the standard synthetic-city world
///    (road network + traffic model + map-matched corpus + transfer
///    probabilities) most integration-ish tests start from; `TinyStartConfig`
///    is the laptop-scale model every core test uses.
///  * Comparators — `ExpectAllClose` for numeric tolerance checks,
///    `ExpectTensorBitwiseEqual` / `ExpectParamsBitwiseEqual` for the
///    repo's determinism contracts (loader worker counts, checkpoint resume,
///    shard counts), where "close" is not the claim being tested.
///  * `TempDir` — RAII scratch directory (recursively removed), replacing
///    ad-hoc `::testing::TempDir() + name` + manual std::remove pairs.
///  * `TestRng` — seeded generator derived from the current gtest test name,
///    so every test gets a stable-but-distinct stream without hand-picking
///    integer seeds.

#include <gtest/gtest.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/config.h"
#include "nn/module.h"
#include "roadnet/road_network.h"
#include "tensor/tensor.h"
#include "traj/traffic_model.h"
#include "traj/trajectory.h"

namespace start::testutil {

// ---------------------------------------------------------------------------
// Fixture builders.
// ---------------------------------------------------------------------------

/// Knobs of the standard tiny world; the defaults reproduce the fixture the
/// core/pretrain/eval tests were all hand-rolling.
struct TinyWorldOptions {
  int64_t grid_width = 5;
  int64_t grid_height = 5;
  int64_t num_drivers = 8;
  int64_t num_days = 8;
  double trips_per_driver_day = 4.0;
  int64_t min_length = 5;
  int64_t min_user_trajectories = 5;
  uint64_t trip_seed = 4242;  ///< TripGenerator default.
  bool build_transfer = true;
};

/// A synthetic city with everything the model stack consumes. Members are
/// heap-held so the world is movable while the internal cross-pointers
/// (traffic -> net, transfer -> net) stay valid.
struct TinyWorld {
  std::unique_ptr<roadnet::RoadNetwork> net;
  std::unique_ptr<traj::TrafficModel> traffic;
  std::vector<traj::Trajectory> corpus;
  std::unique_ptr<roadnet::TransferProbability> transfer;

  int64_t num_roads() const { return net->num_segments(); }
};

std::unique_ptr<TinyWorld> MakeTinyWorld(const TinyWorldOptions& options = {});

/// The laptop-scale StartConfig shared by the core tests: d = 16, one
/// 2-head GAT layer, one 2-head encoder layer, max_len 64.
core::StartConfig TinyStartConfig();

/// Transfer probabilities built from one pass over every edge of `net`
/// (every edge gets nonzero mass) — the standard stand-in for tests that
/// need a valid TransferProbability but no trajectory corpus.
roadnet::TransferProbability EdgePairTransfer(const roadnet::RoadNetwork& net);

// ---------------------------------------------------------------------------
// Comparators.
// ---------------------------------------------------------------------------

/// Element-wise |a - b| <= atol over the logical extent (strided views are
/// compacted first). Reports the first few offending indices.
void ExpectAllClose(const tensor::Tensor& a, const tensor::Tensor& b,
                    double atol, const std::string& what = "");

/// Bitwise equality of two tensors' logical contents (shape + every float's
/// bit pattern; NaNs compare equal to themselves).
void ExpectTensorBitwiseEqual(const tensor::Tensor& a, const tensor::Tensor& b,
                              const std::string& what = "");

/// Bitwise equality of every named parameter of two structurally identical
/// modules — the standard post-condition of the determinism tests.
void ExpectParamsBitwiseEqual(const nn::Module& a, const nn::Module& b);

/// Bitwise equality of two float buffers (size + bit patterns).
void ExpectFloatsBitwiseEqual(const std::vector<float>& a,
                              const std::vector<float>& b,
                              const std::string& what = "");

// ---------------------------------------------------------------------------
// Filesystem helpers.
// ---------------------------------------------------------------------------

/// RAII scratch directory under the gtest temp root; recursively removed on
/// destruction. `File(name)` returns an absolute path inside it.
class TempDir {
 public:
  TempDir();
  ~TempDir();
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const { return path_; }
  std::string File(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

/// Directory holding the committed golden fixtures (tests/fixtures in the
/// source tree; injected by CMake so tests run from any build directory).
std::string FixtureDir();

/// Whole-file byte helpers for the corruption/truncation tests that bit-flip
/// serialized artifacts.
std::vector<uint8_t> ReadFileBytes(const std::string& path);
void WriteFileBytes(const std::string& path,
                    const std::vector<uint8_t>& bytes);

// ---------------------------------------------------------------------------
// Seeded RNG helpers.
// ---------------------------------------------------------------------------

/// Stable 64-bit seed derived from the currently running test's full name
/// (suite + test + parameterisation) and `salt`.
uint64_t TestSeed(uint64_t salt = 0);

/// Generator seeded with TestSeed(salt): per-test stable, cross-test
/// distinct streams without hand-numbered seeds.
common::Rng TestRng(uint64_t salt = 0);

// ---------------------------------------------------------------------------
// Thread-regime sweeps.
// ---------------------------------------------------------------------------

/// Runs `fn(regime_label)` under every OpenMP thread-count regime the build
/// supports (1 thread and the ambient default) — for asserting that a
/// result holds, bitwise, regardless of how many threads the kernels fork.
/// In OpenMP-less builds (e.g. the TSan CI job) this is a single serial
/// run. The ambient thread count is restored afterwards.
template <typename Fn>
void ForEachOmpRegime(Fn fn) {
#ifdef _OPENMP
  const int ambient = omp_get_max_threads();
  omp_set_num_threads(1);
  fn("omp_threads=1");
  omp_set_num_threads(ambient > 1 ? ambient : 2);
  fn("omp_threads=default");
  omp_set_num_threads(ambient);
#else
  fn("openmp_off");
#endif
}

}  // namespace start::testutil

#endif  // START_TESTS_TESTING_H_
