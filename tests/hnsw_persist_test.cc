// HnswIndex Save/Load persistence contract: a loaded graph is bitwise the
// graph that was saved (links, levels, tombstones, entry point), inserting
// after Load continues the exact seeded level stream of a never-saved index,
// every structural field is validated at the Status boundary (truncation /
// bit-flip / crafted-header fuzz never crashes), and the committed golden
// fixture pins the on-disk format against silent breaks.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

#include "common/rng.h"
#include "common/status.h"
#include "serve/hnsw_index.h"
#include "serve/index_interface.h"
#include "tensor/serialize.h"
#include "testing.h"

namespace start {
namespace {

using serve::HnswConfig;
using serve::HnswIndex;
using serve::Neighbor;

std::string TempPath(const char* name) {
  static testutil::TempDir dir;
  return dir.File(name);
}

std::vector<float> RandomRows(common::Rng* rng, int64_t n, int64_t dim) {
  std::vector<float> rows(static_cast<size_t>(n * dim));
  for (auto& v : rows) v = static_cast<float>(rng->Normal());
  return rows;
}

/// Asserts the two graphs are structurally identical for every id in
/// [0, n): same levels and the same neighbor lists in stored order.
void ExpectGraphsEqual(const HnswIndex& a, const HnswIndex& b, int64_t n) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.num_slots(), b.num_slots());
  ASSERT_EQ(a.max_level(), b.max_level());
  for (int64_t id = 0; id < n; ++id) {
    ASSERT_EQ(a.NodeLevel(id), b.NodeLevel(id)) << "id " << id;
    for (int64_t level = 0; level <= a.NodeLevel(id); ++level) {
      ASSERT_EQ(a.GetNeighbors(id, level), b.GetNeighbors(id, level))
          << "id " << id << " level " << level;
    }
  }
}

/// The committed golden fixture's build recipe — duplicated in
/// tools/make_golden_fixtures.cc; keep the two in sync. Rows come from
/// Rng::Uniform (pure arithmetic, bit-exact everywhere).
std::unique_ptr<HnswIndex> BuildGoldenHnsw() {
  HnswConfig config;
  config.M = 4;
  config.ef_construction = 16;
  config.ef_search = 8;
  config.seed = 0xA11CE;
  auto index = std::make_unique<HnswIndex>(6, config);
  common::Rng rng(99);
  for (int64_t id = 0; id < 24; ++id) {
    std::vector<float> row(6);
    for (auto& v : row) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
    EXPECT_TRUE(index->Add(id, row).ok());
  }
  for (int64_t id = 2; id < 24; id += 5) {
    EXPECT_TRUE(index->Remove(id).ok());
  }
  return index;
}

TEST(HnswPersistTest, SaveLoadRoundTripsGraphAndTombstonesBitwise) {
  const int64_t n = 300, dim = 16;
  common::Rng rng = testutil::TestRng(31);
  const std::vector<float> rows = RandomRows(&rng, n, dim);
  HnswConfig config;
  config.seed = 4242;
  config.ef_search = 48;
  config.min_live_ratio = 0.125;
  HnswIndex built(dim, config);
  for (int64_t id = 0; id < n; ++id) {
    ASSERT_TRUE(built.Add(id, rows.data() + id * dim, dim).ok());
  }
  for (int64_t id = 0; id < n; id += 4) {
    ASSERT_TRUE(built.Remove(id).ok());
  }
  const std::string path = TempPath("roundtrip.hnsw");
  ASSERT_TRUE(built.Save(path).ok());

  auto loaded = HnswIndex::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->config().M, config.M);
  EXPECT_EQ((*loaded)->config().seed, config.seed);
  EXPECT_EQ((*loaded)->ef_search(), 48);
  EXPECT_DOUBLE_EQ((*loaded)->config().min_live_ratio, 0.125);
  EXPECT_DOUBLE_EQ((*loaded)->DeadFraction(), built.DeadFraction());
  ExpectGraphsEqual(built, **loaded, n);
  for (int64_t id = 0; id < n; ++id) {
    EXPECT_EQ((*loaded)->Contains(id), id % 4 != 0) << id;
  }
  // Query parity: identical ids AND identical score bits, including the
  // tombstone exclusion path.
  for (int64_t q = 0; q < 25; ++q) {
    std::vector<float> query(static_cast<size_t>(dim));
    for (auto& v : query) v = static_cast<float>(rng.Normal());
    const auto want = built.Query(query, 10);
    const auto got = (*loaded)->Query(query, 10);
    ASSERT_TRUE(want.ok() && got.ok());
    ASSERT_EQ(want->size(), got->size());
    for (size_t i = 0; i < want->size(); ++i) {
      EXPECT_EQ((*want)[i].id, (*got)[i].id) << "query " << q << " pos " << i;
      EXPECT_EQ((*want)[i].score, (*got)[i].score);
    }
  }
}

TEST(HnswPersistTest, InsertAfterLoadContinuesTheExactRngStream) {
  // The level RNG cursor is part of the artifact: save -> load -> insert
  // must be bitwise identical to never having saved at all.
  const int64_t n = 200, extra = 100, dim = 12;
  common::Rng rng = testutil::TestRng(33);
  const std::vector<float> rows = RandomRows(&rng, n + extra, dim);
  HnswConfig config;
  config.seed = 555;
  HnswIndex never_saved(dim, config);
  for (int64_t id = 0; id < n; ++id) {
    ASSERT_TRUE(never_saved.Add(id, rows.data() + id * dim, dim).ok());
  }
  const std::string path = TempPath("resume.hnsw");
  ASSERT_TRUE(never_saved.Save(path).ok());
  auto loaded = HnswIndex::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (int64_t id = n; id < n + extra; ++id) {
    ASSERT_TRUE(never_saved.Add(id, rows.data() + id * dim, dim).ok());
    ASSERT_TRUE((*loaded)->Add(id, rows.data() + id * dim, dim).ok());
  }
  ExpectGraphsEqual(never_saved, **loaded, n + extra);
}

TEST(HnswPersistTest, EmptyIndexRoundTrips) {
  HnswIndex empty(8);
  const std::string path = TempPath("empty.hnsw");
  ASSERT_TRUE(empty.Save(path).ok());
  auto loaded = HnswIndex::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->size(), 0);
  EXPECT_EQ((*loaded)->num_slots(), 0);
  const std::vector<float> q = {1, 0, 0, 0, 0, 0, 0, 0};
  const auto result = (*loaded)->Query(q, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
  // Inserts into the loaded empty index still track the seed stream.
  HnswIndex fresh(8);
  common::Rng rng = testutil::TestRng(35);
  const std::vector<float> rows = RandomRows(&rng, 50, 8);
  for (int64_t id = 0; id < 50; ++id) {
    ASSERT_TRUE(fresh.Add(id, rows.data() + id * 8, 8).ok());
    ASSERT_TRUE((*loaded)->Add(id, rows.data() + id * 8, 8).ok());
  }
  ExpectGraphsEqual(fresh, **loaded, 50);
}

TEST(HnswPersistTest, ModelCheckpointRejectedByMetaTag) {
  // A well-formed container that is not an index artifact must be refused
  // by tag, before any structural parsing.
  const std::string path = TempPath("not_an_index.sttn");
  common::Rng rng = testutil::TestRng(37);
  std::map<std::string, tensor::Tensor> tensors;
  tensors.emplace("w", tensor::Tensor::Rand(tensor::Shape({3, 3}), &rng,
                                            -1, 1));
  ASSERT_TRUE(tensor::SaveTensors(path, tensors).ok());
  const auto result = HnswIndex::Load(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kInvalidArgument);
}

TEST(HnswPersistTest, MissingFileIsIOError) {
  const auto result = HnswIndex::Load("/nonexistent/dir/index.hnsw");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kIOError);
}

TEST(HnswPersistTest, TruncationFuzzAlwaysFailsCleanly) {
  common::Rng rng = testutil::TestRng(39);
  const std::vector<float> rows = RandomRows(&rng, 80, 8);
  HnswIndex built(8);
  for (int64_t id = 0; id < 80; ++id) {
    ASSERT_TRUE(built.Add(id, rows.data() + id * 8, 8).ok());
  }
  ASSERT_TRUE(built.Remove(7).ok());
  const std::string full = TempPath("full.hnsw");
  ASSERT_TRUE(built.Save(full).ok());
  const std::vector<uint8_t> bytes = testutil::ReadFileBytes(full);
  ASSERT_GT(bytes.size(), 64u);
  const std::string cut = TempPath("cut.hnsw");
  // Sweep cut points across the whole artifact, hitting every record.
  for (size_t keep = 0; keep < bytes.size(); keep += 61) {
    testutil::WriteFileBytes(
        cut, std::vector<uint8_t>(bytes.begin(),
                                  bytes.begin() +
                                      static_cast<ptrdiff_t>(keep)));
    const auto result = HnswIndex::Load(cut);
    ASSERT_FALSE(result.ok()) << "truncated to " << keep << " bytes loaded";
    EXPECT_TRUE(result.status().code() == common::StatusCode::kIOError ||
                result.status().code() ==
                    common::StatusCode::kInvalidArgument)
        << "keep=" << keep << ": " << result.status().ToString();
  }
}

TEST(HnswPersistTest, BitFlipFuzzIsRejected) {
  common::Rng rng = testutil::TestRng(41);
  const std::vector<float> rows = RandomRows(&rng, 60, 8);
  HnswIndex built(8);
  for (int64_t id = 0; id < 60; ++id) {
    ASSERT_TRUE(built.Add(id, rows.data() + id * 8, 8).ok());
  }
  const std::string full = TempPath("flip_base.hnsw");
  ASSERT_TRUE(built.Save(full).ok());
  const std::vector<uint8_t> bytes = testutil::ReadFileBytes(full);
  const std::string flipped = TempPath("flipped.hnsw");
  // A single flipped bit anywhere must be caught: the header fields by
  // magic/tag/count validation, every record byte by its CRC.
  for (size_t at = 0; at < bytes.size(); at += 97) {
    std::vector<uint8_t> corrupt = bytes;
    corrupt[at] ^= 0x10;
    testutil::WriteFileBytes(flipped, corrupt);
    const auto result = HnswIndex::Load(flipped);
    ASSERT_FALSE(result.ok()) << "bit flip at byte " << at << " loaded";
  }
}

/// Re-saves the golden-recipe index with `mutate` applied to its record
/// bundle, bypassing the writer's invariants — the loader alone must catch
/// the damage (the CRC is recomputed over the mutated payload, so these
/// exercise semantic validation, not the container checksum).
common::Status LoadMutated(
    const char* name,
    const std::function<void(tensor::LoadedBundle*)>& mutate) {
  const std::string base = TempPath("mutate_base.hnsw");
  EXPECT_TRUE(BuildGoldenHnsw()->Save(base).ok());
  auto bundle = tensor::LoadBundle(base);
  EXPECT_TRUE(bundle.ok());
  mutate(&*bundle);
  const std::string path = TempPath(name);
  EXPECT_TRUE(
      tensor::SaveBundle(path, bundle->meta_tag, bundle->records).ok());
  return HnswIndex::Load(path).status();
}

TEST(HnswPersistTest, StructuralValidationRejectsCraftedRecords) {
  struct Case {
    const char* what;
    std::function<void(tensor::LoadedBundle*)> mutate;
  };
  const std::vector<Case> cases = {
      {"entry slot out of range",
       [](tensor::LoadedBundle* b) { b->records.uints["entry"] = {1u << 20}; }},
      {"entry level disagrees with node level",
       [](tensor::LoadedBundle* b) { b->records.uints["entry"][0] += 1; }},
      {"node level above kMaxLevel",
       [](tensor::LoadedBundle* b) { b->records.ints32["levels"][0] = 30; }},
      {"negative node level",
       [](tensor::LoadedBundle* b) { b->records.ints32["levels"][3] = -1; }},
      {"non-boolean dead flag",
       [](tensor::LoadedBundle* b) { b->records.ints32["dead"][0] = 2; }},
      {"live count mismatch",
       [](tensor::LoadedBundle* b) { b->records.ints["shape"][5] -= 1; }},
      {"neighbor slot out of range",
       [](tensor::LoadedBundle* b) { b->records.ints32["links0"][1] = 999; }},
      {"negative neighbor slot",
       [](tensor::LoadedBundle* b) { b->records.ints32["links0"][1] = -2; }},
      {"link count above cap",
       [](tensor::LoadedBundle* b) { b->records.ints32["links0"][0] = 99; }},
      {"duplicate live ids",
       [](tensor::LoadedBundle* b) {
         b->records.ints["ids"][1] = b->records.ints["ids"][0];
       }},
      {"upper adjacency truncated",
       [](tensor::LoadedBundle* b) { b->records.ints32["upper"].pop_back(); }},
      {"rows shape mismatch",
       [](tensor::LoadedBundle* b) { b->records.ints["shape"][4] += 1; }},
      {"missing rng record",
       [](tensor::LoadedBundle* b) { b->records.uints.erase("rng"); }},
      {"implausible M",
       [](tensor::LoadedBundle* b) { b->records.ints["shape"][1] = 0; }},
      {"min_live_ratio out of range",
       [](tensor::LoadedBundle* b) {
         b->records.doubles["min_live_ratio"][0] = 2.0;
       }},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.what);
    const common::Status status = LoadMutated(c.what, c.mutate);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), common::StatusCode::kInvalidArgument);
  }
  // Sanity: the unmutated recipe loads fine, so the rejections above are
  // the mutations' doing.
  EXPECT_TRUE(LoadMutated("identity.hnsw",
                          [](tensor::LoadedBundle*) {})
                  .ok());
}

TEST(HnswPersistTest, GoldenFixtureLoadsAndMatchesRecipe) {
  // tests/fixtures/hnsw_golden.sttn is committed; regenerate only on a
  // deliberate format break via tools/make_golden_fixtures (see its header
  // comment). A reader change that can no longer parse OLD artifacts fails
  // here even if its own writer/reader pair stays self-consistent.
  const std::string path = testutil::FixtureDir() + "/hnsw_golden.sttn";
  auto loaded = HnswIndex::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const std::unique_ptr<HnswIndex> recipe = BuildGoldenHnsw();
  EXPECT_EQ((*loaded)->size(), recipe->size());
  EXPECT_EQ((*loaded)->num_slots(), 24);
  ExpectGraphsEqual(*recipe, **loaded, 24);
  for (int64_t id = 2; id < 24; id += 5) {
    EXPECT_FALSE((*loaded)->Contains(id)) << id;
  }
  // Every live row finds itself first at full score.
  common::Rng rng(99);
  for (int64_t id = 0; id < 24; ++id) {
    std::vector<float> row(6);
    for (auto& v : row) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
    if ((id - 2) % 5 == 0) continue;
    const auto top = (*loaded)->Query(row, 1);
    ASSERT_TRUE(top.ok());
    ASSERT_EQ(top->size(), 1u);
    EXPECT_EQ((*top)[0].id, id);
  }
}

}  // namespace
}  // namespace start
