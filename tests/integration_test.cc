// End-to-end test: generate a city + corpus, pre-train START, fine-tune the
// downstream heads, and check the qualitative claims the paper's evaluation
// rests on at miniature scale.
#include <gtest/gtest.h>

#include "core/pretrain.h"
#include "core/start_encoder.h"
#include "data/dataset.h"
#include "data/detour.h"
#include "eval/tasks.h"
#include "roadnet/synthetic_city.h"
#include "sim/search.h"
#include "testing.h"
#include "traj/trip_generator.h"

namespace start {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    city_ = new roadnet::RoadNetwork(roadnet::BuildSyntheticCity(
        {.grid_width = 6, .grid_height = 6, .seed = 3}));
    traffic_ = new traj::TrafficModel(city_, {});
    traj::TripGenerator::Config config;
    config.num_drivers = 10;
    config.num_days = 12;
    config.trips_per_driver_day = 4.0;
    config.vacant_fraction = 0.5;  // balance the binary label
    config.seed = 99;
    traj::TripGenerator gen(traffic_, config);
    data::DatasetConfig ds;
    ds.min_length = 5;
    ds.min_user_trajectories = 8;
    dataset_ = new data::TrajDataset(
        data::TrajDataset::FromCorpus(*city_, gen.Generate(), ds));
    transfer_ = new roadnet::TransferProbability(
        roadnet::TransferProbability::FromTrajectories(
            *city_, dataset_->TrainRoadSequences()));
  }

  static void TearDownTestSuite() {
    delete transfer_;
    delete dataset_;
    delete traffic_;
    delete city_;
    transfer_ = nullptr;
    dataset_ = nullptr;
    traffic_ = nullptr;
    city_ = nullptr;
  }

  core::StartConfig TinyConfig() const {
    core::StartConfig config = testutil::TinyStartConfig();
    config.gat_layers = 2;
    config.gat_heads = {4, 1};
    config.encoder_layers = 2;
    config.max_len = 96;
    return config;
  }

  core::PretrainConfig QuickPretrain() const {
    core::PretrainConfig config;
    config.epochs = 4;
    config.batch_size = 8;
    config.lr = 3e-3;
    return config;
  }

  static roadnet::RoadNetwork* city_;
  static traj::TrafficModel* traffic_;
  static data::TrajDataset* dataset_;
  static roadnet::TransferProbability* transfer_;
};

roadnet::RoadNetwork* IntegrationTest::city_ = nullptr;
traj::TrafficModel* IntegrationTest::traffic_ = nullptr;
data::TrajDataset* IntegrationTest::dataset_ = nullptr;
roadnet::TransferProbability* IntegrationTest::transfer_ = nullptr;

TEST_F(IntegrationTest, PretrainingImprovesEta) {
  ASSERT_GT(dataset_->train().size(), 60u);
  eval::TaskConfig task;
  task.epochs = 3;
  task.batch_size = 16;
  task.lr = 2e-3;
  // Pre-trained START.
  common::Rng rng_a(1);
  core::StartModel pretrained(TinyConfig(), city_, transfer_, &rng_a);
  core::Pretrain(&pretrained, dataset_->train(), traffic_, QuickPretrain());
  core::StartEncoder enc_a(&pretrained);
  const auto with = eval::FinetuneEta(&enc_a, dataset_->train(),
                                      dataset_->test(), task);
  // Same architecture, no pre-training.
  common::Rng rng_b(1);
  core::StartModel fresh(TinyConfig(), city_, transfer_, &rng_b);
  core::StartEncoder enc_b(&fresh);
  const auto without = eval::FinetuneEta(&enc_b, dataset_->train(),
                                         dataset_->test(), task);
  // Both should beat predicting the mean badly; pre-training should not be
  // worse by a wide margin (and is usually better).
  EXPECT_LT(with.metrics.mape, without.metrics.mape * 1.15);
  EXPECT_GT(with.metrics.mae, 0.0);
}

TEST_F(IntegrationTest, ClassificationLearnsOccupancy) {
  eval::TaskConfig task;
  task.epochs = 3;
  task.batch_size = 16;
  task.lr = 2e-3;
  common::Rng rng(2);
  core::StartModel model(TinyConfig(), city_, transfer_, &rng);
  core::Pretrain(&model, dataset_->train(), traffic_, QuickPretrain());
  core::StartEncoder encoder(&model);
  const auto result = eval::FinetuneClassification(
      &encoder, dataset_->train(), dataset_->test(),
      [](const traj::Trajectory& t) { return t.occupied ? 1 : 0; }, 2, 1,
      task);
  // Better than the majority-class trivial strategy by some margin on AUC.
  EXPECT_GT(result.auc, 0.55);
  EXPECT_GT(result.accuracy, 0.5);
}

TEST_F(IntegrationTest, FrozenEmbeddingsRetrieveDetours) {
  common::Rng rng(3);
  core::StartModel model(TinyConfig(), city_, transfer_, &rng);
  core::PretrainConfig pretrain = QuickPretrain();
  pretrain.epochs = 10;  // retrieval quality needs the contrastive task
  core::Pretrain(&model, dataset_->train(), traffic_, pretrain);
  core::StartEncoder encoder(&model);
  // Build a small detour query set from the test split.
  std::vector<traj::Trajectory> queries, database;
  std::vector<int64_t> gt;
  common::Rng detour_rng(4);
  for (const auto& t : dataset_->test()) {
    if (queries.size() >= 12) break;
    const auto detour = data::MakeDetour(*traffic_, t, {}, &detour_rng);
    if (!detour.has_value()) continue;
    gt.push_back(static_cast<int64_t>(database.size()));
    queries.push_back(t);
    database.push_back(*detour);
  }
  // Negatives: other test trajectories.
  for (const auto& t : dataset_->test()) {
    if (database.size() >= 60) break;
    database.push_back(t);
  }
  ASSERT_GE(queries.size(), 8u);
  const auto q_emb = encoder.EmbedAll(queries, eval::EncodeMode::kFull);
  const auto db_emb = encoder.EmbedAll(database, eval::EncodeMode::kFull);
  const auto metrics = sim::MostSimilarSearchEmbeddings(
      q_emb, static_cast<int64_t>(queries.size()), db_emb,
      static_cast<int64_t>(database.size()), model.config().d, gt);
  // The detoured twin should rank far above random (random MR ~ |DB|/2).
  EXPECT_LT(metrics.mean_rank,
            static_cast<double>(database.size()) / 3.0);
  EXPECT_GT(metrics.hr_at_5, 0.25);
}

TEST_F(IntegrationTest, TransferredModelLoadsAcrossCities) {
  // Pre-train on this city, save, and load into a model built for a
  // different city (possible because TPE-GAT parameters are |V|-free).
  common::Rng rng(5);
  core::StartModel source(TinyConfig(), city_, transfer_, &rng);
  core::Pretrain(&source, dataset_->train(), traffic_, QuickPretrain());
  testutil::TempDir dir;
  const std::string path = dir.File("transfer.sttn");
  ASSERT_TRUE(source.Save(path).ok());

  const auto other_city = roadnet::BuildSyntheticCity(
      {.grid_width = 5, .grid_height = 7, .seed = 91});
  common::Rng rng2(6);
  core::StartModel target(TinyConfig(), &other_city, nullptr, &rng2);
  // The MLM head is |V|-dependent; skip it via allow_missing? It has the
  // same dimensionality only if |V| matches, so load must tolerate a shape
  // mismatch by failing loudly — we verify the strict behaviour here...
  const auto status = target.Load(path);
  // |V| differs -> strict load fails on the MLM head.
  EXPECT_FALSE(status.ok());
  // ...and the transfer path goes through the |V|-independent subset.
  core::StartModel same_arch(TinyConfig(), &other_city, nullptr, &rng2);
  // (Transfer of the |V|-free parts is exercised by bench_table3_transfer.)
  SUCCEED();
}

}  // namespace
}  // namespace start
