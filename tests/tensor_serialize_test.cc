#include "tensor/serialize.h"

#include <cstdio>
#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/tensor.h"
#include "testing.h"

namespace start::tensor {
namespace {

/// One scratch directory per test binary, removed at exit.
std::string TempPath(const char* name) {
  static testutil::TempDir dir;
  return dir.File(name);
}

TEST(SerializeTest, RoundTripPreservesDataAndShapes) {
  common::Rng rng(1);
  std::map<std::string, Tensor> tensors;
  tensors.emplace("a", Tensor::Rand(Shape({3, 4}), &rng, -1, 1));
  tensors.emplace("b.weight", Tensor::Rand(Shape({7}), &rng, -1, 1));
  tensors.emplace("c.bias", Tensor::Rand(Shape({2, 2, 2}), &rng, -1, 1));
  const std::string path = TempPath("roundtrip.sttn");
  ASSERT_TRUE(SaveTensors(path, tensors).ok());
  auto loaded = LoadTensors(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 3u);
  for (const auto& [name, t] : tensors) {
    const auto it = loaded->find(name);
    ASSERT_NE(it, loaded->end()) << name;
    ASSERT_EQ(it->second.shape(), t.shape());
    for (int64_t i = 0; i < t.numel(); ++i) {
      EXPECT_EQ(it->second.data()[i], t.data()[i]);
    }
  }
}

TEST(SerializeTest, MissingFileIsIOError) {
  const auto result = LoadTensors("/nonexistent/path/x.sttn");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kIOError);
}

TEST(SerializeTest, CorruptMagicIsInvalidArgument) {
  const std::string path = TempPath("corrupt.sttn");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("JUNKJUNKJUNKJUNKJUNK", 1, 20, f);
  std::fclose(f);
  const auto result = LoadTensors(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kInvalidArgument);
}

TEST(SerializeTest, EmptyMapRoundTrips) {
  const std::string path = TempPath("empty.sttn");
  ASSERT_TRUE(SaveTensors(path, {}).ok());
  const auto result = LoadTensors(path);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

}  // namespace
}  // namespace start::tensor
