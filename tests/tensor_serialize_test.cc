#include "tensor/serialize.h"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <gtest/gtest.h>
#include <limits>

#include "common/rng.h"
#include "tensor/tensor.h"
#include "testing.h"

namespace start::tensor {
namespace {

/// One scratch directory per test binary, removed at exit.
std::string TempPath(const char* name) {
  static testutil::TempDir dir;
  return dir.File(name);
}

TEST(SerializeTest, RoundTripPreservesDataAndShapes) {
  common::Rng rng(1);
  std::map<std::string, Tensor> tensors;
  tensors.emplace("a", Tensor::Rand(Shape({3, 4}), &rng, -1, 1));
  tensors.emplace("b.weight", Tensor::Rand(Shape({7}), &rng, -1, 1));
  tensors.emplace("c.bias", Tensor::Rand(Shape({2, 2, 2}), &rng, -1, 1));
  const std::string path = TempPath("roundtrip.sttn");
  ASSERT_TRUE(SaveTensors(path, tensors).ok());
  auto loaded = LoadTensors(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 3u);
  for (const auto& [name, t] : tensors) {
    const auto it = loaded->find(name);
    ASSERT_NE(it, loaded->end()) << name;
    ASSERT_EQ(it->second.shape(), t.shape());
    for (int64_t i = 0; i < t.numel(); ++i) {
      EXPECT_EQ(it->second.data()[i], t.data()[i]);
    }
  }
}

TEST(SerializeTest, MissingFileIsIOError) {
  const auto result = LoadTensors("/nonexistent/path/x.sttn");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kIOError);
}

TEST(SerializeTest, CorruptMagicIsInvalidArgument) {
  const std::string path = TempPath("corrupt.sttn");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("JUNKJUNKJUNKJUNKJUNK", 1, 20, f);
  std::fclose(f);
  const auto result = LoadTensors(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kInvalidArgument);
}

TEST(SerializeTest, EmptyMapRoundTrips) {
  const std::string path = TempPath("empty.sttn");
  ASSERT_TRUE(SaveTensors(path, {}).ok());
  const auto result = LoadTensors(path);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

// ---------------------------------------------------------------------------
// Low-precision record kinds (int8 + f16).
// ---------------------------------------------------------------------------

TEST(SerializeTest, QuantizedTensorRoundTripsBitwise) {
  common::Rng rng(11);
  QuantizedTensor q;
  q.rows = 5;
  q.cols = 37;
  q.scales.resize(static_cast<size_t>(q.rows));
  q.data.resize(static_cast<size_t>(q.rows * q.cols));
  for (auto& s : q.scales) s = static_cast<float>(rng.Uniform(0.0, 0.1));
  for (auto& v : q.data) {
    v = static_cast<int8_t>(rng.UniformInt(255) - 127);
  }
  RecordBundle bundle;
  bundle.qtensors.emplace("enc.wq", q);
  const std::string path = TempPath("quantized.sttn");
  ASSERT_TRUE(SaveBundle(path, 42, bundle).ok());
  auto loaded = LoadBundle(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->meta_tag, 42u);
  ASSERT_EQ(loaded->records.qtensors.size(), 1u);
  const QuantizedTensor& got = loaded->records.qtensors.at("enc.wq");
  EXPECT_EQ(got.rows, q.rows);
  EXPECT_EQ(got.cols, q.cols);
  EXPECT_EQ(got.data, q.data);
  testutil::ExpectFloatsBitwiseEqual(got.scales, q.scales, "scales");
}

TEST(SerializeTest, InconsistentQuantizedTensorRejectedAtWrite) {
  QuantizedTensor q;
  q.rows = 2;
  q.cols = 3;
  q.scales = {0.5f};  // wrong: needs rows entries
  q.data.assign(6, 1);
  RecordBundle bundle;
  bundle.qtensors.emplace("bad", q);
  const auto status = SaveBundle(TempPath("badq.sttn"), 0, bundle);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), common::StatusCode::kInvalidArgument);
}

TEST(SerializeTest, HalfTensorRoundTripsThroughF16) {
  common::Rng rng(12);
  const Tensor t = Tensor::Rand(Shape({6, 9}), &rng, -3, 3);
  RecordBundle bundle;
  bundle.halfs.emplace("table", t);
  const std::string path = TempPath("half.sttn");
  ASSERT_TRUE(SaveBundle(path, 7, bundle).ok());
  auto loaded = LoadBundle(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->records.halfs.size(), 1u);
  const Tensor& got = loaded->records.halfs.at("table");
  ASSERT_EQ(got.shape(), t.shape());
  for (int64_t i = 0; i < t.numel(); ++i) {
    // The round trip is exactly one f32 -> f16 -> f32 conversion.
    EXPECT_EQ(got.data()[i], F16ToF32(F32ToF16(t.data()[i]))) << "at " << i;
    // f16 has 11 significand bits: relative error <= 2^-11.
    EXPECT_NEAR(got.data()[i], t.data()[i],
                std::abs(t.data()[i]) * (1.0f / 2048) + 1e-6f);
  }
}

TEST(SerializeTest, F16ConversionProperties) {
  // Exactly representable values survive unchanged.
  for (const float v : {0.0f, 1.0f, -1.0f, 0.5f, 2048.0f, -0.09375f,
                        65504.0f /* f16 max */}) {
    EXPECT_EQ(F16ToF32(F32ToF16(v)), v) << v;
  }
  // Signed zero, inf, overflow-to-inf, NaN.
  EXPECT_EQ(F32ToF16(-0.0f), 0x8000);
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(F16ToF32(F32ToF16(inf)), inf);
  EXPECT_EQ(F16ToF32(F32ToF16(-inf)), -inf);
  EXPECT_EQ(F16ToF32(F32ToF16(1e30f)), inf) << "overflow saturates to inf";
  EXPECT_TRUE(std::isnan(F16ToF32(F32ToF16(std::nanf("")))));
  // Subnormal f16 range round-trips within one ulp (2^-24).
  EXPECT_NEAR(F16ToF32(F32ToF16(3e-7f)), 3e-7f, 6e-8f);
  // Tiny values flush toward zero rather than misparse.
  EXPECT_EQ(F16ToF32(F32ToF16(1e-30f)), 0.0f);
  // Round-to-nearest-even at the 10-bit boundary: 2049 is exactly halfway
  // between representable 2048 and 2050 -> even mantissa wins (2048).
  EXPECT_EQ(F16ToF32(F32ToF16(2049.0f)), 2048.0f);
  EXPECT_EQ(F16ToF32(F32ToF16(2051.0f)), 2052.0f);
}

/// Builds a structurally valid v2 file holding a single crafted int8 record
/// (with a correct CRC), so reader validation — not CRC — is what must
/// reject it.
std::string WriteCraftedInt8File(const char* filename, int64_t rows,
                                 int64_t cols, uint64_t scale_count,
                                 size_t scale_bytes, size_t code_bytes) {
  const std::string path = TempPath(filename);
  std::vector<uint8_t> rec;
  const auto append = [&rec](const void* p, size_t n) {
    const auto* b = static_cast<const uint8_t*>(p);
    rec.insert(rec.end(), b, b + n);
  };
  const std::string name = "w";
  const uint32_t name_len = static_cast<uint32_t>(name.size());
  append(&name_len, sizeof(name_len));
  append(name.data(), name.size());
  const uint8_t kind = 4;  // kTensorI8
  append(&kind, sizeof(kind));
  append(&rows, sizeof(rows));
  append(&cols, sizeof(cols));
  append(&scale_count, sizeof(scale_count));
  const std::vector<uint8_t> zeros(std::max(scale_bytes, code_bytes), 0);
  append(zeros.data(), scale_bytes);
  append(zeros.data(), code_bytes);
  const uint32_t crc = Crc32(rec.data(), rec.size());

  std::FILE* f = std::fopen(path.c_str(), "wb");
  EXPECT_NE(f, nullptr);
  const uint32_t version = 2;
  const uint64_t meta_tag = 0;
  const uint64_t count = 1;
  std::fwrite("STTN", 1, 4, f);
  std::fwrite(&version, sizeof(version), 1, f);
  std::fwrite(&meta_tag, sizeof(meta_tag), 1, f);
  std::fwrite(&count, sizeof(count), 1, f);
  std::fwrite(rec.data(), 1, rec.size(), f);
  std::fwrite(&crc, sizeof(crc), 1, f);
  std::fclose(f);
  return path;
}

TEST(SerializeTest, Int8RecordValidationRejectsCraftedHeaders) {
  struct Case {
    const char* what;
    std::string path;
  };
  const std::vector<Case> cases = {
      {"scale count != rows",
       WriteCraftedInt8File("q_scalemismatch.sttn", /*rows=*/4, /*cols=*/2,
                            /*scale_count=*/3, /*scale_bytes=*/12,
                            /*code_bytes=*/8)},
      {"negative rows",
       WriteCraftedInt8File("q_negrows.sttn", /*rows=*/-1, /*cols=*/2,
                            /*scale_count=*/1, /*scale_bytes=*/4,
                            /*code_bytes=*/2)},
      {"zero cols",
       WriteCraftedInt8File("q_zerocols.sttn", /*rows=*/1, /*cols=*/0,
                            /*scale_count=*/1, /*scale_bytes=*/4,
                            /*code_bytes=*/0)},
      {"payload larger than file",
       WriteCraftedInt8File("q_hugepayload.sttn", /*rows=*/1000000,
                            /*cols=*/1000000, /*scale_count=*/1000000,
                            /*scale_bytes=*/8, /*code_bytes=*/8)},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.what);
    const auto result = LoadBundle(c.path);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), common::StatusCode::kInvalidArgument);
  }
}

TEST(SerializeTest, TruncatedInt8ScalesIsCleanError) {
  // Valid header claiming 4 scale floats + 8 codes, but the file ends after
  // 2 scale floats: the reader must report an error, never crash.
  const std::string path =
      WriteCraftedInt8File("q_truncscales.sttn", /*rows=*/4, /*cols=*/2,
                           /*scale_count=*/4, /*scale_bytes=*/16,
                           /*code_bytes=*/8);
  // Reopen and truncate mid-scales (header is 24 bytes; record starts with
  // 4+1+1 name/kind bytes then 24 header bytes, then scales).
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), 24 + 6 + 24 + 8), 0);
  const auto result = LoadBundle(path);
  ASSERT_FALSE(result.ok());
  // Truncation may surface as IOError (short read) or InvalidArgument
  // (payload no longer fits) depending on where the cut lands; both are
  // clean Status failures.
  EXPECT_TRUE(result.status().code() == common::StatusCode::kIOError ||
              result.status().code() ==
                  common::StatusCode::kInvalidArgument);
}

TEST(SerializeTest, MixedBundleWithAllKindsRoundTrips) {
  common::Rng rng(13);
  RecordBundle bundle;
  bundle.tensors.emplace("f32", Tensor::Rand(Shape({2, 3}), &rng, -1, 1));
  bundle.doubles.emplace("d", std::vector<double>{1.5, -2.5});
  bundle.ints.emplace("i", std::vector<int64_t>{-7, 9});
  bundle.uints.emplace("u", std::vector<uint64_t>{42});
  QuantizedTensor q;
  q.rows = 1;
  q.cols = 4;
  q.scales = {0.25f};
  q.data = {1, -2, 3, -4};
  bundle.qtensors.emplace("q", q);
  bundle.halfs.emplace("h", Tensor::Rand(Shape({5}), &rng, -1, 1));
  const std::string path = TempPath("mixed.sttn");
  ASSERT_TRUE(SaveBundle(path, 99, bundle).ok());
  auto loaded = LoadBundle(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->records.tensors.size(), 1u);
  EXPECT_EQ(loaded->records.doubles.at("d"), bundle.doubles.at("d"));
  EXPECT_EQ(loaded->records.ints.at("i"), bundle.ints.at("i"));
  EXPECT_EQ(loaded->records.uints.at("u"), bundle.uints.at("u"));
  EXPECT_EQ(loaded->records.qtensors.at("q").data, q.data);
  EXPECT_EQ(loaded->records.halfs.at("h").numel(), 5);
}

TEST(SerializeTest, Int32ArrayRoundTripsBitwise) {
  RecordBundle bundle;
  bundle.ints32.emplace(
      "links", std::vector<int32_t>{0, -1, 2147483647, -2147483648, 17});
  bundle.ints32.emplace("empty", std::vector<int32_t>{});
  const std::string path = TempPath("ints32.sttn");
  ASSERT_TRUE(SaveBundle(path, 5, bundle).ok());
  auto loaded = LoadBundle(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->meta_tag, 5u);
  ASSERT_EQ(loaded->records.ints32.size(), 2u);
  EXPECT_EQ(loaded->records.ints32.at("links"), bundle.ints32.at("links"));
  EXPECT_TRUE(loaded->records.ints32.at("empty").empty());
}

TEST(SerializeTest, TruncatedInt32ArrayIsCleanError) {
  RecordBundle bundle;
  bundle.ints32.emplace("links", std::vector<int32_t>(64, 7));
  const std::string path = TempPath("ints32_trunc.sttn");
  ASSERT_TRUE(SaveBundle(path, 0, bundle).ok());
  const std::vector<uint8_t> bytes = testutil::ReadFileBytes(path);
  // Cut mid-payload: the length word claims 64 entries the file lacks.
  testutil::WriteFileBytes(
      path, std::vector<uint8_t>(bytes.begin(),
                                 bytes.begin() + (bytes.size() - 100)));
  const auto result = LoadBundle(path);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().code() == common::StatusCode::kIOError ||
              result.status().code() ==
                  common::StatusCode::kInvalidArgument);
}

TEST(SerializeTest, CorruptInt32ArrayFailsCrc) {
  RecordBundle bundle;
  bundle.ints32.emplace("links", std::vector<int32_t>(16, 9));
  const std::string path = TempPath("ints32_crc.sttn");
  ASSERT_TRUE(SaveBundle(path, 0, bundle).ok());
  std::vector<uint8_t> bytes = testutil::ReadFileBytes(path);
  bytes[bytes.size() - 12] ^= 0x08;  // flip a payload bit behind the CRC
  testutil::WriteFileBytes(path, bytes);
  const auto result = LoadBundle(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kInvalidArgument);
}

TEST(SerializeTest, CorruptQuantizedRecordFailsCrc) {
  QuantizedTensor q;
  q.rows = 2;
  q.cols = 8;
  q.scales = {0.5f, 0.25f};
  q.data.assign(16, 3);
  RecordBundle bundle;
  bundle.qtensors.emplace("q", q);
  const std::string path = TempPath("qcrc.sttn");
  ASSERT_TRUE(SaveBundle(path, 0, bundle).ok());
  std::vector<uint8_t> bytes = testutil::ReadFileBytes(path);
  bytes[bytes.size() - 8] ^= 0x40;  // flip a bit inside the code payload
  testutil::WriteFileBytes(path, bytes);
  const auto result = LoadBundle(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace start::tensor
