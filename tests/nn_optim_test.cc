#include <cmath>
#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "nn/schedule.h"
#include "tensor/ops.h"

namespace start::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

/// Minimises f(w) = ||w - target||^2 and returns the final distance.
template <typename MakeOpt>
double MinimiseQuadratic(MakeOpt make_opt, int steps) {
  Tensor w = Tensor::FromVector(Shape({3}), {5.0f, -3.0f, 2.0f});
  w.set_requires_grad(true);
  auto opt = make_opt(std::vector<Tensor>{w});
  const std::vector<float> target = {1.0f, 1.0f, 1.0f};
  for (int i = 0; i < steps; ++i) {
    opt->ZeroGrad();
    Tensor loss = tensor::MseLoss(w, target);
    loss.Backward();
    opt->Step();
  }
  double dist = 0.0;
  for (int64_t i = 0; i < 3; ++i) {
    dist += std::fabs(w.data()[i] - target[static_cast<size_t>(i)]);
  }
  return dist;
}

TEST(SgdTest, ConvergesOnQuadratic) {
  const double dist = MinimiseQuadratic(
      [](std::vector<Tensor> p) {
        return std::make_unique<Sgd>(std::move(p), 0.1);
      },
      200);
  EXPECT_LT(dist, 1e-2);
}

TEST(SgdTest, MomentumConvergesFaster) {
  const double plain = MinimiseQuadratic(
      [](std::vector<Tensor> p) {
        return std::make_unique<Sgd>(std::move(p), 0.05);
      },
      50);
  const double momentum = MinimiseQuadratic(
      [](std::vector<Tensor> p) {
        return std::make_unique<Sgd>(std::move(p), 0.05, 0.9);
      },
      50);
  EXPECT_LT(momentum, plain);
}

TEST(AdamWTest, ConvergesOnQuadratic) {
  const double dist = MinimiseQuadratic(
      [](std::vector<Tensor> p) {
        return std::make_unique<AdamW>(std::move(p), 0.1, 0.9, 0.999, 1e-8,
                                       0.0);
      },
      300);
  EXPECT_LT(dist, 1e-2);
}

TEST(AdamWTest, WeightDecayShrinksWeights) {
  // With zero gradient, AdamW's decoupled decay still shrinks the weights.
  Tensor w = Tensor::FromVector(Shape({2}), {4.0f, -4.0f});
  w.set_requires_grad(true);
  w.ZeroGrad();
  AdamW opt({w}, /*lr=*/0.1, 0.9, 0.999, 1e-8, /*weight_decay=*/0.5);
  for (int i = 0; i < 10; ++i) opt.Step();
  EXPECT_LT(std::fabs(w.data()[0]), 4.0f);
  EXPECT_LT(std::fabs(w.data()[1]), 4.0f);
}

TEST(AdamWTest, TrainsLinearRegression) {
  common::Rng rng(3);
  Linear fc(2, 1, &rng);
  AdamW opt(fc.Parameters(), 0.05);
  // y = 2 x0 - x1 + 0.5
  for (int step = 0; step < 400; ++step) {
    const Tensor x = Tensor::Rand(Shape({16, 2}), &rng, -1, 1);
    std::vector<float> y(16);
    for (int64_t i = 0; i < 16; ++i) {
      y[static_cast<size_t>(i)] =
          2.0f * x.at({i, 0}) - x.at({i, 1}) + 0.5f;
    }
    opt.ZeroGrad();
    Tensor loss = tensor::MseLoss(fc.Forward(x), y);
    loss.Backward();
    opt.Step();
  }
  const auto params = fc.Parameters();
  EXPECT_NEAR(params[0].data()[0], 2.0f, 0.1);
  EXPECT_NEAR(params[0].data()[1], -1.0f, 0.1);
  EXPECT_NEAR(params[1].data()[0], 0.5f, 0.1);
}

TEST(ScheduleTest, WarmupRampsLinearly) {
  const WarmupCosineSchedule s(1.0, 10, 100, 0.0);
  EXPECT_NEAR(s.LrAt(0), 0.1, 1e-9);
  EXPECT_NEAR(s.LrAt(4), 0.5, 1e-9);
  EXPECT_NEAR(s.LrAt(9), 1.0, 1e-9);
}

TEST(ScheduleTest, CosineDecaysToMin) {
  const WarmupCosineSchedule s(1.0, 10, 100, 0.05);
  EXPECT_NEAR(s.LrAt(10), 1.0, 1e-9);
  EXPECT_NEAR(s.LrAt(100), 0.05, 1e-6);
  // Midpoint of the cosine is the average of base and min.
  EXPECT_NEAR(s.LrAt(55), (1.0 + 0.05) / 2.0, 1e-6);
}

TEST(ScheduleTest, MonotoneDecreasingAfterWarmup) {
  const WarmupCosineSchedule s(1.0, 5, 50, 0.0);
  for (int64_t step = 5; step < 49; ++step) {
    EXPECT_GE(s.LrAt(step), s.LrAt(step + 1));
  }
}

TEST(ScheduleTest, NoWarmupStartsAtBase) {
  const WarmupCosineSchedule s(0.5, 0, 10, 0.0);
  EXPECT_NEAR(s.LrAt(0), 0.5, 1e-9);
}

}  // namespace
}  // namespace start::nn
