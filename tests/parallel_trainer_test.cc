// Reduction-path tests for the data-parallel sharded pretraining engine:
//  * the fixed-order tree all-reduce itself (nn/allreduce.h),
//  * K-shard bitwise-identity to single-shard execution (the engine's core
//    contract), for parameters, optimizer state, AND loss curves,
//  * gradient accumulation: two micro-batches ≡ one double batch, bitwise,
//  * mid-plan checkpoint resume across *different* shard counts.
//
// This suite carries the `concurrency` ctest label: the sharded step fans
// forward/backward out over a ThreadPool, so the TSan CI job runs it.
#include "core/parallel_trainer.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/checkpoint.h"
#include "core/pretrain.h"
#include "data/dataset.h"
#include "data/loader.h"
#include "nn/allreduce.h"
#include "nn/optimizer.h"
#include "testing.h"

namespace start::core {
namespace {

using start::testutil::ExpectFloatsBitwiseEqual;
using start::testutil::ExpectParamsBitwiseEqual;
using start::testutil::MakeTinyWorld;
using start::testutil::TempDir;
using start::testutil::TinyStartConfig;
using start::testutil::TinyWorld;

// ---------------------------------------------------------------------------
// nn::TreeReduce — the fixed combination order, in isolation.
// ---------------------------------------------------------------------------

std::shared_ptr<std::vector<float>> Buf(std::vector<float> v) {
  return std::make_shared<std::vector<float>>(std::move(v));
}

TEST(TreeReduceTest, CombinesInFixedPairwiseOrder) {
  // With 5 slots the tree is ((s0+s1)+(s2+s3))+s4. Use magnitudes that make
  // float addition order-sensitive: 1e8 + 1 + -1e8 + 1 + 1.
  auto result = nn::TreeReduce(
      {Buf({1e8f}), Buf({1.0f}), Buf({-1e8f}), Buf({1.0f}), Buf({1.0f})});
  ASSERT_NE(result, nullptr);
  // (1e8 + 1) = 1e8 (absorbed); (-1e8 + 1) = -1e8 (absorbed);
  // 1e8 + -1e8 = 0; 0 + 1 = 1. A left fold would differ (it also gives 1
  // here only by coincidence of this arrangement — assert the tree exactly).
  const float expected = ((1e8f + 1.0f) + (-1e8f + 1.0f)) + 1.0f;
  EXPECT_EQ((*result)[0], expected);
}

TEST(TreeReduceTest, NullSlotsAreExactZeros) {
  auto result =
      nn::TreeReduce({nullptr, Buf({2.0f, 3.0f}), nullptr, Buf({1.0f, 1.0f})});
  ASSERT_NE(result, nullptr);
  EXPECT_EQ((*result)[0], 3.0f);
  EXPECT_EQ((*result)[1], 4.0f);
  EXPECT_EQ(nn::TreeReduce({nullptr, nullptr}), nullptr);
  EXPECT_EQ(nn::TreeReduce({}), nullptr);
}

TEST(TreeReduceTest, ReduceIntoAccumulatesOntoZeroedGrads) {
  tensor::Tensor p =
      tensor::Tensor::Zeros(tensor::Shape({2}), /*requires_grad=*/true);
  p.ZeroGrad();
  std::vector<nn::GradShard> shards;
  shards.push_back({Buf({1.0f, 2.0f})});
  shards.push_back({Buf({10.0f, 20.0f})});
  shards.push_back({nullptr});
  nn::TreeReduceInto(std::move(shards), {p});
  EXPECT_EQ(p.grad()[0], 11.0f);
  EXPECT_EQ(p.grad()[1], 22.0f);
}

// ---------------------------------------------------------------------------
// Engine fixtures.
// ---------------------------------------------------------------------------

class ParallelTrainerTest : public ::testing::Test {
 protected:
  ParallelTrainerTest() : world_(MakeTinyWorld()) {}

  std::unique_ptr<StartModel> MakeModel(uint64_t seed) const {
    common::Rng rng(seed);
    return std::make_unique<StartModel>(TinyStartConfig(), world_->net.get(),
                                        world_->transfer.get(), &rng);
  }

  /// Assembles the pre-training batch for `indices` through the standard
  /// builder, seeded like loader step `step`.
  data::TrainingBatch MakeBatch(const std::vector<int64_t>& indices,
                                int64_t step) const {
    common::Rng rng(data::BatchLoader::StepSeed(kSeed, step));
    data::TrainingBatch tb;
    tb.step = step;
    data::MakePretrainBuilder(&world_->corpus, world_->traffic.get(),
                              {})(indices, &rng, &tb);
    return tb;
  }

  static constexpr uint64_t kSeed = 33;
  std::unique_ptr<TinyWorld> world_;
};

/// Splits `full` (trajectory rows [0, n)) into two micro TrainingBatches
/// covering rows [0, n/2) and [n/2, n) with identical padded content — the
/// aligned-row-stream premise of the accumulation-equivalence contract.
std::pair<data::TrainingBatch, data::TrainingBatch> SplitBatch(
    const data::TrainingBatch& full) {
  const int64_t n = full.masked.batch_size;
  const int64_t half = n / 2;
  data::TrainingBatch a, b;
  a.step = full.step;
  b.step = full.step + 1;
  a.has_masked = b.has_masked = full.has_masked;
  a.has_contrastive = b.has_contrastive = full.has_contrastive;
  data::SliceBatchRows(full.masked, 0, half, &a.masked);
  data::SliceBatchRows(full.masked, half, n, &b.masked);
  data::SliceBatchRows(full.contrastive, 0, 2 * half, &a.contrastive);
  data::SliceBatchRows(full.contrastive, 2 * half, 2 * n, &b.contrastive);
  const int64_t max_len = full.masked.max_len;
  for (size_t i = 0; i < full.mask_positions.size(); ++i) {
    const int64_t flat = full.mask_positions[i];
    if (flat < half * max_len) {
      a.mask_positions.push_back(flat);
      a.mask_targets.push_back(full.mask_targets[i]);
    } else {
      b.mask_positions.push_back(flat - half * max_len);
      b.mask_targets.push_back(full.mask_targets[i]);
    }
  }
  return {std::move(a), std::move(b)};
}

// ---------------------------------------------------------------------------
// K-shard bitwise identity (engine level: parameters + optimizer state +
// per-step losses).
// ---------------------------------------------------------------------------

TEST_F(ParallelTrainerTest, ShardCountIsBitwiseNeutral) {
  ASSERT_GE(world_->corpus.size(), 8u);
  const std::vector<int64_t> indices = {0, 1, 2, 3, 4, 5, 6, 7};
  constexpr int64_t kSteps = 3;

  // Reference: single shard over the same grain decomposition.
  std::vector<double> ref_losses;
  auto reference = MakeModel(kSeed);
  nn::AdamW ref_opt(reference->Parameters(), 1e-3);
  {
    ShardConfig config;
    config.num_shards = 1;
    config.shard_grain = 2;
    config.seed = kSeed;
    ParallelTrainer trainer(reference.get(), config);
    for (int64_t s = 0; s < kSteps; ++s) {
      const data::TrainingBatch tb = MakeBatch(indices, s);
      ref_losses.push_back(
          trainer.Step({&tb}, s, &ref_opt, /*lr=*/1e-3).loss);
    }
  }

  for (const int k : {2, 3, 5}) {
    SCOPED_TRACE("num_shards=" + std::to_string(k));
    auto model = MakeModel(kSeed);
    nn::AdamW opt(model->Parameters(), 1e-3);
    ShardConfig config;
    config.num_shards = k;
    config.shard_grain = 2;
    config.seed = kSeed;
    ParallelTrainer trainer(model.get(), config);
    for (int64_t s = 0; s < kSteps; ++s) {
      const data::TrainingBatch tb = MakeBatch(indices, s);
      const ShardStepStats stats = trainer.Step({&tb}, s, &opt, 1e-3);
      EXPECT_EQ(stats.loss, ref_losses[static_cast<size_t>(s)])
          << "loss diverged at step " << s;
    }
    ExpectParamsBitwiseEqual(*reference, *model);
    // Optimizer slot buffers are part of the contract too: a bitwise run
    // that diverges in m/v would drift after resume.
    for (size_t i = 0; i < ref_opt.moment1().size(); ++i) {
      ExpectFloatsBitwiseEqual(ref_opt.moment1()[i], opt.moment1()[i],
                               "adam m");
      ExpectFloatsBitwiseEqual(ref_opt.moment2()[i], opt.moment2()[i],
                               "adam v");
    }
    EXPECT_EQ(ref_opt.step_count(), opt.step_count());
  }
}

// With shard_grain == 0 (no intra-batch decomposition) a K > 1 engine must
// still match K = 1: grains then map 1:1 to micro-batches.
TEST_F(ParallelTrainerTest, WholeBatchGrainsStayBitwiseNeutral) {
  const std::vector<int64_t> indices = {0, 1, 2, 3, 4, 5};
  auto a = MakeModel(kSeed);
  auto b = MakeModel(kSeed);
  nn::AdamW opt_a(a->Parameters(), 1e-3), opt_b(b->Parameters(), 1e-3);
  ShardConfig config;
  config.shard_grain = 0;
  config.accum_steps = 2;
  config.seed = kSeed;
  ShardConfig config_k3 = config;
  config_k3.num_shards = 3;
  ParallelTrainer trainer_a(a.get(), config);
  ParallelTrainer trainer_b(b.get(), config_k3);
  const data::TrainingBatch m0 = MakeBatch(indices, 0);
  const data::TrainingBatch m1 = MakeBatch(indices, 1);
  const ShardStepStats sa = trainer_a.Step({&m0, &m1}, 0, &opt_a, 1e-3);
  const ShardStepStats sb = trainer_b.Step({&m0, &m1}, 0, &opt_b, 1e-3);
  EXPECT_EQ(sa.loss, sb.loss);
  EXPECT_EQ(sa.grains, 2);
  ExpectParamsBitwiseEqual(*a, *b);
}

// Ablation variants drop one central loss entirely; the engine must handle
// an undefined logits/CLS gather on every shard count.
TEST_F(ParallelTrainerTest, TaskAblationsStayBitwiseNeutral) {
  const std::vector<int64_t> indices = {0, 1, 2, 3, 4, 5};
  for (const bool use_mask : {true, false}) {
    SCOPED_TRACE(use_mask ? "mask_only" : "contrastive_only");
    data::PretrainBatchOptions options;
    options.use_mask_task = use_mask;
    options.use_contrastive_task = !use_mask;
    common::Rng rng(data::BatchLoader::StepSeed(kSeed, 0));
    data::TrainingBatch tb;
    data::MakePretrainBuilder(&world_->corpus, world_->traffic.get(),
                              options)(indices, &rng, &tb);

    auto a = MakeModel(kSeed);
    auto b = MakeModel(kSeed);
    nn::AdamW opt_a(a->Parameters(), 1e-3), opt_b(b->Parameters(), 1e-3);
    ShardConfig config;
    config.shard_grain = 2;
    config.use_mask_task = use_mask;
    config.use_contrastive_task = !use_mask;
    config.seed = kSeed;
    ShardConfig config_k3 = config;
    config_k3.num_shards = 3;
    ParallelTrainer trainer_a(a.get(), config);
    ParallelTrainer trainer_b(b.get(), config_k3);
    const ShardStepStats sa = trainer_a.Step({&tb}, 0, &opt_a, 1e-3);
    const ShardStepStats sb = trainer_b.Step({&tb}, 0, &opt_b, 1e-3);
    EXPECT_EQ(sa.loss, sb.loss);
    if (use_mask) {
      EXPECT_EQ(sa.con_loss, 0.0);
      EXPECT_GT(sa.mask_loss, 0.0);
    } else {
      EXPECT_EQ(sa.mask_loss, 0.0);
      EXPECT_GT(sa.con_loss, 0.0);
    }
    ExpectParamsBitwiseEqual(*a, *b);
  }
}

// ---------------------------------------------------------------------------
// Gradient accumulation: 2 micro-batches ≡ 1 double batch, bitwise.
// ---------------------------------------------------------------------------

TEST_F(ParallelTrainerTest, TwoMicroBatchesMatchOneDoubleBatchBitwise) {
  ASSERT_GE(world_->corpus.size(), 8u);
  const std::vector<int64_t> indices = {3, 1, 7, 2, 6, 0, 5, 4};
  constexpr int64_t kGrain = 2;  // divides the half batch: slices align

  auto whole = MakeModel(kSeed);
  auto split = MakeModel(kSeed);
  nn::AdamW opt_whole(whole->Parameters(), 1e-3);
  nn::AdamW opt_split(split->Parameters(), 1e-3);

  ShardConfig whole_config;
  whole_config.num_shards = 2;
  whole_config.shard_grain = kGrain;
  whole_config.accum_steps = 1;
  whole_config.seed = kSeed;
  ShardConfig split_config = whole_config;
  split_config.num_shards = 3;  // also cross-checks shard neutrality
  split_config.accum_steps = 2;

  ParallelTrainer whole_trainer(whole.get(), whole_config);
  ParallelTrainer split_trainer(split.get(), split_config);
  for (int64_t s = 0; s < 2; ++s) {
    const data::TrainingBatch full = MakeBatch(indices, s);
    const auto [micro_a, micro_b] = SplitBatch(full);
    const ShardStepStats stats_whole =
        whole_trainer.Step({&full}, s, &opt_whole, 1e-3);
    const ShardStepStats stats_split =
        split_trainer.Step({&micro_a, &micro_b}, s, &opt_split, 1e-3);
    // Same grain set → same central losses → same update, bitwise.
    EXPECT_EQ(stats_whole.loss, stats_split.loss);
    EXPECT_EQ(stats_whole.mask_loss, stats_split.mask_loss);
    EXPECT_EQ(stats_whole.con_loss, stats_split.con_loss);
    EXPECT_EQ(stats_whole.grains, stats_split.grains);
  }
  ExpectParamsBitwiseEqual(*whole, *split);
  for (size_t i = 0; i < opt_whole.moment1().size(); ++i) {
    ExpectFloatsBitwiseEqual(opt_whole.moment1()[i], opt_split.moment1()[i],
                             "adam m");
    ExpectFloatsBitwiseEqual(opt_whole.moment2()[i], opt_split.moment2()[i],
                             "adam v");
  }
}

// ---------------------------------------------------------------------------
// Full Pretrain() runs: shard counts, accumulation, and mid-plan resume
// across DIFFERENT shard counts — everything through the loader, the LR
// schedule, and the checkpoint container.
// ---------------------------------------------------------------------------

class ShardedPretrainTest : public ParallelTrainerTest {
 protected:
  PretrainConfig EngineConfig() const {
    PretrainConfig config;
    config.epochs = 2;
    config.batch_size = 8;
    config.lr = 2e-3;
    config.seed = 21;
    config.shard_grain = 2;
    return config;
  }

  PretrainStats Run(const PretrainConfig& config, StartModel* model) {
    return Pretrain(model, world_->corpus, world_->traffic.get(), config);
  }

  static void ExpectStatsBitwiseEqual(const PretrainStats& a,
                                      const PretrainStats& b) {
    ASSERT_EQ(a.epoch_loss.size(), b.epoch_loss.size());
    for (size_t e = 0; e < a.epoch_loss.size(); ++e) {
      EXPECT_EQ(a.epoch_loss[e], b.epoch_loss[e]);
      EXPECT_EQ(a.epoch_mask_loss[e], b.epoch_mask_loss[e]);
      EXPECT_EQ(a.epoch_contrastive_loss[e], b.epoch_contrastive_loss[e]);
    }
  }
};

TEST_F(ShardedPretrainTest, PretrainShardSweepBitwiseIdentical) {
  auto reference = MakeModel(77);
  const PretrainStats ref_stats = Run(EngineConfig(), reference.get());
  for (const int k : {2, 3}) {
    SCOPED_TRACE("num_shards=" + std::to_string(k));
    auto model = MakeModel(77);
    PretrainConfig config = EngineConfig();
    config.num_shards = k;
    const PretrainStats stats = Run(config, model.get());
    ExpectParamsBitwiseEqual(*reference, *model);
    ExpectStatsBitwiseEqual(ref_stats, stats);
  }
}

TEST_F(ShardedPretrainTest, ResumeAcrossShardCountsBitwise) {
  // Reference: uninterrupted single-shard engine run.
  auto reference = MakeModel(77);
  const PretrainStats ref_stats = Run(EngineConfig(), reference.get());

  // Interrupted run with K = 2, checkpointing at the (mid-plan, mid-epoch)
  // interruption point...
  TempDir dir;
  const std::string ckpt = dir.File("sharded_resume.sttn");
  auto half = MakeModel(77);
  PretrainConfig interrupted = EngineConfig();
  interrupted.num_shards = 2;
  interrupted.checkpoint_path = ckpt;
  interrupted.max_steps = 3;  // optimizer steps; lands inside epoch 0
  Run(interrupted, half.get());

  // ...resumed under K = 3 into a differently-initialised model: shard
  // count is a scheduling knob, so the tail must replay the reference run
  // exactly — parameters AND the per-epoch loss trace.
  auto resumed = MakeModel(1234);
  PretrainConfig tail = EngineConfig();
  tail.num_shards = 3;
  tail.checkpoint_path = ckpt;
  tail.resume = true;
  const PretrainStats resumed_stats = Run(tail, resumed.get());
  ExpectParamsBitwiseEqual(*reference, *resumed);
  ExpectStatsBitwiseEqual(ref_stats, resumed_stats);
}

// Resuming from the FINAL checkpoint of a completed sharded run must
// no-op gracefully even when accum_steps does not divide the plan length:
// the end-of-plan cursor then sits after a *partial* accumulation group,
// the one legal non-multiple-of-accum value (regression test — this used
// to CHECK-abort).
TEST_F(ShardedPretrainTest, ResumeAfterCompletedRunWithPartialFinalGroup) {
  PretrainConfig config = EngineConfig();
  config.epochs = 1;
  config.accum_steps = 2;
  // Pick a batch size whose step count is NOT a multiple of accum_steps so
  // the final accumulation group really is partial.
  const auto total_steps_for = [&](int64_t batch_size) {
    data::PlanConfig plan_config;
    plan_config.batch_size = batch_size;
    plan_config.epochs = config.epochs;
    plan_config.seed = config.seed;
    return static_cast<int64_t>(
        data::MakeShuffledPlan(data::Lengths(world_->corpus), plan_config)
            .steps.size());
  };
  int64_t batch_size = 0;
  for (const int64_t candidate : {8, 7, 9, 11, 13}) {
    if (total_steps_for(candidate) % config.accum_steps != 0) {
      batch_size = candidate;
      break;
    }
  }
  ASSERT_GT(batch_size, 0) << "no batch size yields a partial final group";
  config.batch_size = batch_size;
  config.num_shards = 2;

  TempDir dir;
  config.checkpoint_path = dir.File("completed.sttn");
  auto model = MakeModel(11);
  Run(config, model.get());  // completes; final save cursor == total_steps

  auto resumed = MakeModel(12);
  PretrainConfig again = config;
  again.resume = true;
  const PretrainStats stats = Run(again, resumed.get());  // must not abort
  ASSERT_EQ(stats.epoch_loss.size(), 1u);
  // The resumed run consumed no steps: its parameters are exactly the
  // checkpointed (completed) ones.
  ExpectParamsBitwiseEqual(*model, *resumed);
}

// A legacy (pre-engine) checkpoint must not silently resume under the
// sharded engine — its floating-point stream differs, so the plan hash
// refuses and the run restarts from scratch (still training successfully).
TEST_F(ShardedPretrainTest, LegacyCheckpointRefusedBySharded) {
  TempDir dir;
  const std::string ckpt = dir.File("legacy.sttn");
  auto a = MakeModel(5);
  PretrainConfig legacy;
  legacy.epochs = 2;
  legacy.batch_size = 8;
  legacy.seed = 21;
  legacy.checkpoint_path = ckpt;
  Run(legacy, a.get());

  auto b = MakeModel(6);
  PretrainConfig sharded = EngineConfig();
  sharded.num_shards = 2;
  sharded.checkpoint_path = ckpt;
  sharded.resume = true;  // refused -> trains from scratch
  const PretrainStats stats = Run(sharded, b.get());
  ASSERT_EQ(stats.epoch_loss.size(), 2u);
  EXPECT_GT(stats.epoch_loss.front(), 0.0);
}

// The checkpoint records the shard topology and per-replica RNG cursors.
TEST_F(ShardedPretrainTest, CheckpointCarriesShardTopology) {
  TempDir dir;
  const std::string ckpt = dir.File("topology.sttn");
  auto model = MakeModel(9);
  PretrainConfig config = EngineConfig();
  config.num_shards = 3;
  config.accum_steps = 1;
  config.checkpoint_path = ckpt;
  config.max_steps = 2;
  Run(config, model.get());

  auto probe = MakeModel(9);
  nn::AdamW opt(probe->Parameters(), 1e-3);
  auto state = LoadTrainingCheckpoint(ckpt, probe.get(), &opt,
                                      /*expected_config_hash=*/0);
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  EXPECT_EQ(state->num_shards, 3);
  EXPECT_EQ(state->shard_grain, 2);
  EXPECT_EQ(state->accum_steps, 1);
  EXPECT_EQ(state->shard_rng.size(), 3u * 6u);  // 6 state words per shard
}

}  // namespace
}  // namespace start::core
