#include <cmath>
#include <gtest/gtest.h>

#include "common/rng.h"
#include "serve/embedding_index.h"
#include "serve/index_interface.h"
#include "sim/search.h"
#include "sim/similarity.h"

namespace start::sim {
namespace {

PointSeq Line(double y, int n, double step = 1.0) {
  PointSeq seq;
  for (int i = 0; i < n; ++i) seq.emplace_back(i * step, y);
  return seq;
}

TEST(SimilarityTest, IdenticalSequencesHaveZeroDistance) {
  const PointSeq a = Line(0, 5);
  EXPECT_DOUBLE_EQ(DtwDistance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(FrechetDistance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(LcssDistance(a, a, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(EdrDistance(a, a, 0.5), 0.0);
}

TEST(SimilarityTest, SymmetricMeasures) {
  const PointSeq a = Line(0, 5);
  const PointSeq b = Line(2, 7);
  EXPECT_DOUBLE_EQ(DtwDistance(a, b), DtwDistance(b, a));
  EXPECT_DOUBLE_EQ(FrechetDistance(a, b), FrechetDistance(b, a));
  EXPECT_DOUBLE_EQ(LcssDistance(a, b, 0.5), LcssDistance(b, a, 0.5));
  EXPECT_DOUBLE_EQ(EdrDistance(a, b, 0.5), EdrDistance(b, a, 0.5));
}

TEST(SimilarityTest, DtwParallelLines) {
  // Equal-length parallel lines at distance 2: every matched pair costs 2.
  const PointSeq a = Line(0, 4);
  const PointSeq b = Line(2, 4);
  EXPECT_DOUBLE_EQ(DtwDistance(a, b), 8.0);
}

TEST(SimilarityTest, DtwHandlesTimeWarp) {
  // The same path sampled at double rate should have near-zero DTW distance.
  const PointSeq a = Line(0, 5, 2.0);        // x = 0,2,4,6,8
  const PointSeq b = Line(0, 9, 1.0);        // x = 0..8
  EXPECT_LT(DtwDistance(a, b), 4.1);         // only off-by-one matches cost
  EXPECT_GT(DtwDistance(a, Line(5, 9, 1.0)), DtwDistance(a, b));
}

TEST(SimilarityTest, FrechetIsMaxLeash) {
  const PointSeq a = Line(0, 4);
  const PointSeq b = Line(3, 4);
  EXPECT_DOUBLE_EQ(FrechetDistance(a, b), 3.0);
}

TEST(SimilarityTest, LcssCountsMatchesWithinEps) {
  PointSeq a = Line(0, 4);
  PointSeq b = Line(0, 4);
  b[1].second = 10.0;  // one point moved far away
  // 3 of 4 points match -> distance 1 - 3/4.
  EXPECT_DOUBLE_EQ(LcssDistance(a, b, 0.5), 0.25);
}

TEST(SimilarityTest, EdrCountsEdits) {
  PointSeq a = Line(0, 4);
  PointSeq b = Line(0, 5);
  // One extra point: one insertion over max length 5.
  EXPECT_DOUBLE_EQ(EdrDistance(a, b, 0.5), 1.0 / 5.0);
}

TEST(SimilarityTest, EmbeddingDistanceIsSquaredEuclidean) {
  const float a[3] = {1, 2, 3};
  const float b[3] = {0, 0, 0};
  EXPECT_DOUBLE_EQ(EmbeddingDistance(a, b, 3), 14.0);
}

TEST(SearchTest, MostSimilarFindsExactDuplicates) {
  // Database row i == query i exactly -> MR 1, HR@1 = 1.
  const int64_t nq = 4, ndb = 20, d = 8;
  std::vector<float> db(ndb * d);
  common::Rng rng(1);
  for (auto& v : db) v = static_cast<float>(rng.Uniform(-1, 1));
  std::vector<float> queries(nq * d);
  std::vector<int64_t> gt(nq);
  for (int64_t q = 0; q < nq; ++q) {
    const int64_t target = q * 3;
    gt[q] = target;
    std::copy(db.begin() + target * d, db.begin() + (target + 1) * d,
              queries.begin() + q * d);
  }
  const RankMetrics m =
      MostSimilarSearchEmbeddings(queries, nq, db, ndb, d, gt);
  EXPECT_DOUBLE_EQ(m.mean_rank, 1.0);
  EXPECT_DOUBLE_EQ(m.hr_at_1, 1.0);
  EXPECT_DOUBLE_EQ(m.hr_at_5, 1.0);
}

TEST(SearchTest, MostSimilarRanksNoisyTruth) {
  // The truth is the query plus small noise; a few decoys are closer copies
  // of other rows, so MR stays small but HR@1 may drop.
  const int64_t d = 4;
  std::vector<float> db = {
      0, 0, 0, 0,      // decoy
      5, 5, 5, 5,      // truth (noisy copy of query below)
      9, 9, 9, 9,      // decoy
      5.2f, 5, 5, 5,   // close decoy
  };
  std::vector<float> query = {5.1f, 5, 5, 5};
  const RankMetrics m = MostSimilarSearchEmbeddings(query, 1, db, 4, d, {1});
  EXPECT_LE(m.mean_rank, 2.0);
  EXPECT_DOUBLE_EQ(m.hr_at_5, 1.0);
}

TEST(SearchTest, TopKReturnsAscendingDistances) {
  std::vector<double> dist = {5, 1, 3, 2, 4};
  const auto top = TopK(5, 3, [&](int64_t i) { return dist[i]; });
  EXPECT_EQ(top, (std::vector<int64_t>{1, 3, 2}));
}

TEST(SearchTest, TopKHeapSelectionMatchesFullSort) {
  // The bounded-heap selection must agree with a full stable (distance,
  // index) sort for every k, including k >= N.
  common::Rng rng(41);
  const int64_t n = 257;
  std::vector<double> dist(static_cast<size_t>(n));
  for (auto& d : dist) d = rng.Uniform(0, 8);
  std::vector<std::pair<double, int64_t>> ref;
  for (int64_t i = 0; i < n; ++i) ref.emplace_back(dist[i], i);
  std::sort(ref.begin(), ref.end());
  for (const int64_t k : {1, 2, 7, 64, 256, 257, 400}) {
    const auto top = TopK(n, k, [&](int64_t i) { return dist[i]; });
    const size_t kk = static_cast<size_t>(std::min<int64_t>(k, n));
    ASSERT_EQ(top.size(), kk) << "k=" << k;
    for (size_t i = 0; i < kk; ++i) {
      EXPECT_EQ(top[i], ref[i].second) << "k=" << k << " pos=" << i;
    }
  }
}

TEST(SearchTest, TopKBreaksExactTiesTowardSmallerIndex) {
  // Duplicated distances: equal keys must come out in index order, and an
  // equal-distance item beyond the cut must lose to the smaller index.
  std::vector<double> dist = {2, 1, 2, 1, 2, 0.5};
  EXPECT_EQ(TopK(6, 3, [&](int64_t i) { return dist[i]; }),
            (std::vector<int64_t>{5, 1, 3}));
  EXPECT_EQ(TopK(6, 5, [&](int64_t i) { return dist[i]; }),
            (std::vector<int64_t>{5, 1, 3, 0, 2}));
  // All-equal distances: the k smallest indices, ascending.
  std::vector<double> flat(9, 3.25);
  EXPECT_EQ(TopK(9, 4, [&](int64_t i) { return flat[i]; }),
            (std::vector<int64_t>{0, 1, 2, 3}));
}

/// Loads `db` into an exact index for the serve-side k-NN precision
/// protocol (the former sim::KnnPrecision now lives behind IndexInterface).
void LoadIndex(const std::vector<float>& db, int64_t ndb,
               serve::EmbeddingIndex* index) {
  std::vector<int64_t> ids(static_cast<size_t>(ndb));
  for (int64_t i = 0; i < ndb; ++i) ids[static_cast<size_t>(i)] = i;
  ASSERT_TRUE(index->AddBatch(ids, db).ok());
}

TEST(SearchTest, KnnPrecisionPerfectWhenQueriesUnchanged) {
  const int64_t nq = 3, ndb = 30, d = 6;
  common::Rng rng(2);
  std::vector<float> db(ndb * d), q(nq * d);
  for (auto& v : db) v = static_cast<float>(rng.Uniform(-1, 1));
  for (auto& v : q) v = static_cast<float>(rng.Uniform(-1, 1));
  serve::EmbeddingIndex index(d);
  LoadIndex(db, ndb, &index);
  const auto precision = serve::KnnPrecision(index, q, q, nq, 5);
  ASSERT_TRUE(precision.ok());
  EXPECT_DOUBLE_EQ(*precision, 1.0);
}

TEST(SearchTest, KnnPrecisionDegradesWithPerturbation) {
  const int64_t nq = 5, ndb = 50, d = 6;
  common::Rng rng(3);
  std::vector<float> db(ndb * d), q(nq * d);
  for (auto& v : db) v = static_cast<float>(rng.Uniform(-1, 1));
  for (auto& v : q) v = static_cast<float>(rng.Uniform(-1, 1));
  std::vector<float> small = q, large = q;
  for (auto& v : small) v += static_cast<float>(rng.Uniform(-0.05, 0.05));
  for (auto& v : large) v += static_cast<float>(rng.Uniform(-2, 2));
  serve::EmbeddingIndex index(d);
  LoadIndex(db, ndb, &index);
  const auto p_small = serve::KnnPrecision(index, q, small, nq, 5);
  const auto p_large = serve::KnnPrecision(index, q, large, nq, 5);
  ASSERT_TRUE(p_small.ok());
  ASSERT_TRUE(p_large.ok());
  EXPECT_GE(*p_small, *p_large);
  EXPECT_GT(*p_small, 0.5);
}

}  // namespace
}  // namespace start::sim
