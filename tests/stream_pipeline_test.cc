// Streaming ingestion pipeline tests (under the `concurrency` ctest label,
// so the TSan CI job covers every one of them):
//  - end-to-end ingest whose embeddings are bitwise identical to a direct
//    match + encode of the same GPS stream;
//  - fault injection through the common::FaultHooks seam: transient embed
//    failures retry with recorded exponential backoff, a stalled match
//    worker stalls neither the other workers nor ordering, a full upsert
//    queue under kDropNewest sheds load with exact accounting and bounded
//    queue depth, and a mid-stream Drain() finishes cleanly with nothing
//    half-ingested;
//  - deterministic replay: the same stream produces bitwise-identical
//    embeddings, index contents, and drift windows for every worker-count
//    configuration, swept across OpenMP regimes;
//  - a queries-during-ingest churn soak against the HNSW backend;
//  - engine hot-swap: SwapEngine splits the stream exactly at a sequence
//    boundary (items before/after run every stage against their own
//    bundle), loses nothing under concurrent load, rejects invalid bundles
//    with the old engine untouched, and under require_quiescent only lands
//    with zero items in flight.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstring>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/fault_hooks.h"
#include "common/rng.h"
#include "core/checkpoint.h"
#include "core/start_model.h"
#include "serve/drift_monitor.h"
#include "serve/embedding_index.h"
#include "serve/frozen_encoder.h"
#include "serve/hnsw_index.h"
#include "serve/stream_pipeline.h"
#include "testing.h"
#include "traj/map_matching.h"

namespace start {
namespace {

using common::FaultHooks;
using serve::DriftConfig;
using serve::DriftMonitor;
using serve::EmbeddingRow;
using serve::HnswIndex;
using serve::OverflowPolicy;
using serve::PipelineStats;
using serve::StreamConfig;
using serve::StreamItem;
using serve::StreamPipeline;

std::string TempPath(const char* name) {
  static testutil::TempDir dir;
  return dir.File(name);
}

class StreamPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = testutil::MakeTinyWorld().release();
    config_ = new core::StartConfig(testutil::TinyStartConfig());
    common::Rng rng(7);
    core::StartModel model(*config_, world_->net.get(),
                           world_->transfer.get(), &rng);
    const std::string path = TempPath("stream_model.sttn");
    ASSERT_TRUE(core::SaveModelCheckpoint(path, model,
                                          core::HashStartConfig(*config_))
                    .ok());
    auto loaded = serve::FrozenEncoder::Load(path, *config_,
                                             world_->net.get(),
                                             world_->transfer.get());
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    encoder_ = std::move(loaded).value().release();
  }

  static void TearDownTestSuite() {
    delete encoder_;
    delete config_;
    delete world_;
    encoder_ = nullptr;
    config_ = nullptr;
    world_ = nullptr;
  }

  /// The first `n` corpus trips as noisy GPS streams — regenerated from a
  /// fixed seed so every test (and every replay within a test) sees the
  /// identical stream.
  static std::vector<StreamItem> MakeStream(int64_t n, uint64_t seed = 99) {
    common::Rng rng(seed);
    std::vector<StreamItem> items;
    for (size_t i = 0; i < world_->corpus.size() &&
                       items.size() < static_cast<size_t>(n);
         ++i) {
      StreamItem item;
      item.id = static_cast<int64_t>(i);
      item.gps = traj::SimulateGps(*world_->net, world_->corpus[i],
                                   /*sample_interval_s=*/30.0,
                                   /*noise_m=*/10.0, &rng);
      if (item.gps.points.size() >= 2) items.push_back(std::move(item));
    }
    return items;
  }

  /// Small queues + small service so tests exercise the bounds quickly.
  static StreamConfig SmallConfig() {
    StreamConfig config;
    config.match_workers = 2;
    config.embed_workers = 2;
    config.service.max_batch_size = 8;
    config.service.batch_deadline_us = 50;
    return config;
  }

  static void ExpectAccounted(const PipelineStats& s) {
    EXPECT_EQ(s.in_flight, 0);
    EXPECT_EQ(s.accepted, s.ingested() + s.total_failed() + s.embed.dropped +
                              s.upsert.dropped)
        << "accounting identity violated";
  }

  /// A second frozen engine with different weights (fresh init seed), as a
  /// hot-swap target: embeddings provably come from whichever engine served
  /// the item.
  static std::shared_ptr<const serve::FrozenEncoder> MakeAltEncoder() {
    common::Rng rng(23);
    core::StartModel model(*config_, world_->net.get(),
                           world_->transfer.get(), &rng);
    const std::string path = TempPath("stream_model_alt.sttn");
    EXPECT_TRUE(core::SaveModelCheckpoint(path, model,
                                          core::HashStartConfig(*config_))
                    .ok());
    auto loaded = serve::FrozenEncoder::Load(path, *config_,
                                             world_->net.get(),
                                             world_->transfer.get());
    EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
    return std::shared_ptr<const serve::FrozenEncoder>(
        std::move(loaded).value());
  }

  static testutil::TinyWorld* world_;
  static core::StartConfig* config_;
  static serve::FrozenEncoder* encoder_;
};

/// Non-owning shared_ptr wrapper for fixture-owned components.
template <typename T>
std::shared_ptr<T> Borrow(T* p) {
  return std::shared_ptr<T>(p, [](T*) {});
}

testutil::TinyWorld* StreamPipelineTest::world_ = nullptr;
core::StartConfig* StreamPipelineTest::config_ = nullptr;
serve::FrozenEncoder* StreamPipelineTest::encoder_ = nullptr;

/// Callback recorder: ids in finalization order + a copy of each embedding.
struct Recorder {
  std::vector<int64_t> ids;
  std::vector<std::vector<float>> rows;

  StreamPipeline::IngestedCallback Callback() {
    return [this](int64_t id, const traj::Trajectory&,
                  const EmbeddingRow& row) {
      ids.push_back(id);
      rows.push_back(row.ToVector());
    };
  }
};

TEST_F(StreamPipelineTest, IngestMatchesDirectMatchAndEncodeBitwise) {
  const std::vector<StreamItem> stream = MakeStream(32);
  ASSERT_GE(stream.size(), 16u);
  HnswIndex index(encoder_->dim());
  StreamPipeline pipeline(encoder_, world_->net.get(), &index, SmallConfig());
  Recorder rec;
  pipeline.SetOnIngested(rec.Callback());
  for (const StreamItem& item : stream) {
    ASSERT_TRUE(pipeline.Push(item).ok());
  }
  pipeline.Flush();
  const PipelineStats s = pipeline.stats();
  EXPECT_EQ(s.pushed, static_cast<int64_t>(stream.size()));
  EXPECT_EQ(s.accepted, s.pushed);
  EXPECT_GT(s.ingested(), 0);
  ExpectAccounted(s);
  EXPECT_EQ(index.size(), s.ingested());
  EXPECT_EQ(static_cast<int64_t>(rec.ids.size()), s.ingested());

  // The reference path: the same matcher + a direct single-trajectory
  // encode. Every pipeline embedding must be bitwise identical (micro-batch
  // composition invariance of the frozen engine).
  const traj::HmmMapMatcher matcher(world_->net.get(), StreamConfig().matcher);
  std::map<int64_t, const traj::GpsTrajectory*> by_id;
  for (const StreamItem& item : stream) by_id[item.id] = &item.gps;
  for (size_t i = 0; i < rec.ids.size(); ++i) {
    EXPECT_TRUE(index.Contains(rec.ids[i]));
    const traj::Trajectory matched = matcher.MatchTrajectory(*by_id[rec.ids[i]]);
    ASSERT_TRUE(encoder_->Validate(matched).ok());
    const tensor::Tensor direct =
        encoder_->EncodeBatch({&matched}, eval::EncodeMode::kFull);
    ASSERT_EQ(static_cast<size_t>(direct.numel()), rec.rows[i].size());
    EXPECT_EQ(std::memcmp(direct.data(), rec.rows[i].data(),
                          rec.rows[i].size() * sizeof(float)),
              0)
        << "embedding of id " << rec.ids[i] << " diverged from direct encode";
  }
}

TEST_F(StreamPipelineTest, TransientEmbedFailuresRetryWithBackoff) {
  const std::vector<StreamItem> stream = MakeStream(12);
  std::mutex mu;
  std::map<int64_t, int> attempts;          // per-seq embed attempts
  std::vector<int64_t> sleeps;              // recorded backoffs, in order
  FaultHooks hooks;
  hooks.before_stage = [&](const char* stage, int64_t seq) {
    if (std::strcmp(stage, "embed") != 0) return common::Status::OK();
    std::lock_guard<std::mutex> lock(mu);
    // First two attempts of every item fail transiently, then succeed.
    if (++attempts[seq] <= 2) return common::Status::Internal("flaky embed");
    return common::Status::OK();
  };
  hooks.sleep_us = [&](int64_t micros) {
    std::lock_guard<std::mutex> lock(mu);
    sleeps.push_back(micros);
  };
  HnswIndex index(encoder_->dim());
  StreamConfig config = SmallConfig();
  config.embed_workers = 1;  // one worker: the backoff sequence is ordered
  StreamPipeline pipeline(encoder_, world_->net.get(), &index, config,
                          nullptr, &hooks);
  for (const StreamItem& item : stream) {
    ASSERT_TRUE(pipeline.Push(item).ok());
  }
  pipeline.Flush();
  const PipelineStats s = pipeline.stats();
  ExpectAccounted(s);
  EXPECT_EQ(s.total_failed() + s.ingested(), s.accepted);
  EXPECT_EQ(s.match.failed + s.ingested(), s.accepted)
      << "transient embed failures must not become permanent";
  // Two retries per item that reached the embed stage, with exponential
  // backoff 200us then 400us recorded through the seam (never slept).
  EXPECT_EQ(s.embed.retried, 2 * (s.accepted - s.match.failed));
  ASSERT_EQ(static_cast<int64_t>(sleeps.size()), s.embed.retried);
  for (size_t i = 0; i + 1 < sleeps.size(); i += 2) {
    EXPECT_EQ(sleeps[i], 200);
    EXPECT_EQ(sleeps[i + 1], 400);
  }
}

TEST_F(StreamPipelineTest, PermanentFailureExhaustsRetriesAndIsCounted) {
  const std::vector<StreamItem> stream = MakeStream(6);
  std::mutex mu;
  std::vector<int64_t> sleeps;
  FaultHooks hooks;
  hooks.before_stage = [&](const char* stage, int64_t seq) {
    if (std::strcmp(stage, "embed") == 0 && seq == 0) {
      return common::Status::Internal("embed backend down");
    }
    return common::Status::OK();
  };
  hooks.sleep_us = [&](int64_t micros) {
    std::lock_guard<std::mutex> lock(mu);
    sleeps.push_back(micros);
  };
  HnswIndex index(encoder_->dim());
  StreamConfig config = SmallConfig();
  config.max_retries = 3;
  StreamPipeline pipeline(encoder_, world_->net.get(), &index, config,
                          nullptr, &hooks);
  for (const StreamItem& item : stream) {
    ASSERT_TRUE(pipeline.Push(item).ok());
  }
  pipeline.Flush();
  const PipelineStats s = pipeline.stats();
  ExpectAccounted(s);
  EXPECT_EQ(s.embed.failed, 1);  // seq 0 exhausted its retries
  EXPECT_EQ(s.embed.retried, 3);
  EXPECT_EQ(sleeps, (std::vector<int64_t>{200, 400, 800}));
  EXPECT_FALSE(index.Contains(stream[0].id));
}

TEST_F(StreamPipelineTest, StalledMatchWorkerBlocksNeitherPeersNorOrdering) {
  const std::vector<StreamItem> stream = MakeStream(10);
  const int64_t n = static_cast<int64_t>(stream.size());
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  FaultHooks hooks;
  hooks.before_stage = [&](const char* stage, int64_t seq) {
    if (std::strcmp(stage, "match") == 0 && seq == 0) {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release; });  // a stalled worker
    }
    return common::Status::OK();
  };
  HnswIndex index(encoder_->dim());
  StreamConfig config = SmallConfig();  // 2 match workers: one keeps going
  config.max_in_flight = n + 1;
  config.upsert_queue_depth = n + 1;
  StreamPipeline pipeline(encoder_, world_->net.get(), &index, config,
                          nullptr, &hooks);
  Recorder rec;
  pipeline.SetOnIngested(rec.Callback());
  for (const StreamItem& item : stream) {
    ASSERT_TRUE(pipeline.Push(item).ok());
  }
  // The healthy worker must push everything else through match and embed
  // while seq 0 is stalled...
  while (pipeline.stats().embed.completed + pipeline.stats().total_failed() <
         n - 1) {
    std::this_thread::yield();
  }
  // ...but the in-order finalizer must not have ingested anything: nothing
  // may overtake seq 0.
  EXPECT_EQ(pipeline.stats().ingested(), 0);
  EXPECT_TRUE(index.size() == 0);
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  pipeline.Flush();
  const PipelineStats s = pipeline.stats();
  ExpectAccounted(s);
  // Ingestion order is push order, stall or no stall.
  std::vector<int64_t> expected;
  for (const StreamItem& item : stream) expected.push_back(item.id);
  std::vector<int64_t> expected_ingested;
  std::set<int64_t> got(rec.ids.begin(), rec.ids.end());
  for (const int64_t id : expected) {
    if (got.count(id)) expected_ingested.push_back(id);
  }
  EXPECT_EQ(rec.ids, expected_ingested);
}

TEST_F(StreamPipelineTest, FullUpsertQueueShedsLoadWithBoundedDepth) {
  const std::vector<StreamItem> stream = MakeStream(24);
  const int64_t n = static_cast<int64_t>(stream.size());
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  FaultHooks hooks;
  hooks.before_stage = [&](const char* stage, int64_t seq) {
    if (std::strcmp(stage, "upsert") == 0 && seq == 0) {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release; });  // the finalizer stalls
    }
    return common::Status::OK();
  };
  HnswIndex index(encoder_->dim());
  StreamConfig config = SmallConfig();
  config.overflow = OverflowPolicy::kDropNewest;
  config.upsert_queue_depth = 4;  // tiny: the stall must overflow it
  config.max_in_flight = n + 1;
  StreamPipeline pipeline(encoder_, world_->net.get(), &index, config,
                          nullptr, &hooks);
  for (const StreamItem& item : stream) {
    ASSERT_TRUE(pipeline.Push(item).ok());
  }
  // Wait until every accepted item has either failed in match, been shed at
  // the full upsert queue, or sits inside its bounded depth.
  for (;;) {
    const PipelineStats s = pipeline.stats();
    EXPECT_LE(s.upsert.queue_depth, 4) << "queue bound violated";
    if (s.embed.completed + s.total_failed() >= n - 1) break;
    std::this_thread::yield();
  }
  const PipelineStats stalled = pipeline.stats();
  EXPECT_GT(stalled.upsert.dropped, 0) << "the full queue must shed load";
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  pipeline.Flush();
  const PipelineStats s = pipeline.stats();
  ExpectAccounted(s);
  EXPECT_EQ(index.size(), s.ingested());
  EXPECT_GT(s.ingested(), 0);  // the in-queue items still land
}

TEST_F(StreamPipelineTest, MidStreamDrainFinishesAcceptedItemsExactly) {
  const std::vector<StreamItem> stream = MakeStream(64);
  HnswIndex index(encoder_->dim());
  StreamConfig config = SmallConfig();
  config.match_queue_depth = 4;  // keep a real backlog at drain time
  StreamPipeline pipeline(encoder_, world_->net.get(), &index, config);
  Recorder rec;
  pipeline.SetOnIngested(rec.Callback());
  std::atomic<int64_t> push_ok{0};
  std::thread producer([&] {
    for (const StreamItem& item : stream) {
      if (pipeline.Push(item).ok()) {
        push_ok.fetch_add(1, std::memory_order_relaxed);
      } else {
        break;  // drain began
      }
    }
  });
  // Drain as soon as the stream is demonstrably mid-flight.
  while (pipeline.stats().ingested() < 3) std::this_thread::yield();
  pipeline.Drain();
  producer.join();
  const PipelineStats s = pipeline.stats();
  ExpectAccounted(s);
  // Everything accepted before the drain was fully finished — no item is
  // half-ingested and none were silently lost.
  EXPECT_EQ(s.accepted, push_ok.load());
  EXPECT_EQ(index.size(), s.ingested());
  EXPECT_EQ(static_cast<int64_t>(rec.ids.size()), s.ingested());
  for (const int64_t id : rec.ids) EXPECT_TRUE(index.Contains(id));
  // And the pipeline refuses new work from now on.
  EXPECT_EQ(pipeline.Push(stream[0]).code(),
            common::StatusCode::kFailedPrecondition);
}

TEST_F(StreamPipelineTest, ReplayIsBitwiseDeterministicAcrossWorkerCounts) {
  const std::vector<StreamItem> stream = MakeStream(40);
  struct Run {
    std::vector<int64_t> ids;
    std::vector<std::vector<float>> rows;
    std::vector<serve::DriftWindowStats> drift;
    int64_t index_size = 0;
  };
  DriftConfig drift_config;
  drift_config.window_size = 8;
  drift_config.reference_windows = 1;
  const auto run_once = [&](int match_workers, int embed_workers,
                            int service_workers, int64_t batch) {
    Run run;
    HnswIndex index(encoder_->dim());
    DriftMonitor drift(encoder_->dim(), drift_config);
    StreamConfig config = SmallConfig();
    config.match_workers = match_workers;
    config.embed_workers = embed_workers;
    config.service.num_workers = service_workers;
    config.service.max_batch_size = batch;
    StreamPipeline pipeline(encoder_, world_->net.get(), &index, config,
                            &drift);
    Recorder rec;
    pipeline.SetOnIngested(rec.Callback());
    for (const StreamItem& item : stream) {
      EXPECT_TRUE(pipeline.Push(item).ok());
    }
    pipeline.Drain();
    run.ids = std::move(rec.ids);
    run.rows = std::move(rec.rows);
    run.drift = drift.History();
    run.index_size = index.size();
    return run;
  };
  testutil::ForEachOmpRegime([&](const char* regime) {
    const Run base = run_once(1, 1, 1, 1);
    ASSERT_GT(base.ids.size(), 0u) << regime;
    const Run wide = run_once(3, 2, 2, 8);
    EXPECT_EQ(base.ids, wide.ids) << regime;
    EXPECT_EQ(base.index_size, wide.index_size) << regime;
    ASSERT_EQ(base.rows.size(), wide.rows.size()) << regime;
    for (size_t i = 0; i < base.rows.size(); ++i) {
      ASSERT_EQ(base.rows[i].size(), wide.rows[i].size());
      EXPECT_EQ(std::memcmp(base.rows[i].data(), wide.rows[i].data(),
                            base.rows[i].size() * sizeof(float)),
                0)
          << "embedding " << i << " diverged under " << regime;
    }
    ASSERT_EQ(base.drift.size(), wide.drift.size()) << regime;
    for (size_t w = 0; w < base.drift.size(); ++w) {
      EXPECT_EQ(std::memcmp(&base.drift[w].mean_norm,
                            &wide.drift[w].mean_norm, sizeof(double)),
                0);
      EXPECT_EQ(std::memcmp(&base.drift[w].cosine_shift,
                            &wide.drift[w].cosine_shift, sizeof(double)),
                0);
      EXPECT_EQ(std::memcmp(&base.drift[w].norm_shift,
                            &wide.drift[w].norm_shift, sizeof(double)),
                0);
    }
  });
}

TEST_F(StreamPipelineTest, QueriesAndRemovesDuringIngestChurnSoak) {
  // The serving pattern end to end: ingest runs while readers query and a
  // churn thread removes already-ingested ids — the TSan soak for the whole
  // streaming plane.
  const std::vector<StreamItem> stream = MakeStream(64);
  HnswIndex index(encoder_->dim());
  StreamPipeline pipeline(encoder_, world_->net.get(), &index, SmallConfig());
  std::mutex ingested_mu;
  std::vector<int64_t> ingested;
  pipeline.SetOnIngested([&](int64_t id, const traj::Trajectory&,
                             const EmbeddingRow&) {
    std::lock_guard<std::mutex> lock(ingested_mu);
    ingested.push_back(id);
  });
  std::atomic<bool> stop{false};
  std::atomic<int64_t> removed{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      common::Rng rng(static_cast<uint64_t>(900 + r));
      while (!stop.load(std::memory_order_acquire)) {
        std::vector<float> q(static_cast<size_t>(encoder_->dim()));
        for (auto& v : q) v = static_cast<float>(rng.Normal());
        const auto result = index.Query(q.data(), encoder_->dim(), 5);
        ASSERT_TRUE(result.ok());
        std::set<int64_t> seen;
        for (const auto& nb : *result) {
          EXPECT_TRUE(seen.insert(nb.id).second);
        }
        const double dead = index.DeadFraction();
        EXPECT_GE(dead, 0.0);
        EXPECT_LE(dead, 1.0);
      }
    });
  }
  std::thread churner([&] {
    size_t next = 0;
    while (!stop.load(std::memory_order_acquire)) {
      int64_t victim = -1;
      {
        std::lock_guard<std::mutex> lock(ingested_mu);
        // Remove every 4th ingested id, trailing the ingest frontier.
        if (next + 4 <= ingested.size()) {
          victim = ingested[next];
          next += 4;
        }
      }
      if (victim >= 0) {
        EXPECT_TRUE(index.Remove(victim).ok());
        removed.fetch_add(1, std::memory_order_relaxed);
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (const StreamItem& item : stream) {
    ASSERT_TRUE(pipeline.Push(item).ok());
  }
  pipeline.Flush();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  churner.join();
  const PipelineStats s = pipeline.stats();
  ExpectAccounted(s);
  EXPECT_EQ(index.size() + removed.load(), s.ingested());
  EXPECT_GE(index.DeadFraction(), 0.0);
}

TEST_F(StreamPipelineTest, HotSwapSplitsStreamAtSequenceBoundary) {
  const std::vector<StreamItem> stream = MakeStream(32);
  ASSERT_GE(stream.size(), 16u);
  const size_t half = stream.size() / 2;
  auto index1 = std::make_shared<HnswIndex>(encoder_->dim());
  auto index2 = std::make_shared<HnswIndex>(encoder_->dim());
  const std::shared_ptr<const serve::FrozenEncoder> alt = MakeAltEncoder();
  StreamPipeline pipeline(
      serve::EngineBundle{Borrow<const serve::FrozenEncoder>(encoder_),
                          index1, nullptr},
      world_->net.get(), SmallConfig());
  Recorder rec;
  pipeline.SetOnIngested(rec.Callback());
  for (size_t i = 0; i < half; ++i) {
    ASSERT_TRUE(pipeline.Push(stream[i]).ok());
  }
  pipeline.Flush();
  const int64_t pre = pipeline.stats().ingested();
  ASSERT_GT(pre, 0);
  const common::Status swapped =
      pipeline.SwapEngine({alt, index2, nullptr}, /*require_quiescent=*/true);
  ASSERT_TRUE(swapped.ok()) << swapped.ToString();
  for (size_t i = half; i < stream.size(); ++i) {
    ASSERT_TRUE(pipeline.Push(stream[i]).ok());
  }
  pipeline.Flush();
  const PipelineStats s = pipeline.stats();
  ExpectAccounted(s);
  EXPECT_EQ(s.epoch, 1);
  EXPECT_EQ(s.swaps, 1);
  // The stream splits exactly at the swap: pre-swap items live in index1
  // only, post-swap items in index2 only.
  EXPECT_EQ(index1->size(), pre);
  EXPECT_EQ(index1->size() + index2->size(), s.ingested());
  for (size_t i = 0; i < rec.ids.size(); ++i) {
    const bool pre_swap = static_cast<int64_t>(i) < pre;
    EXPECT_EQ(index1->Contains(rec.ids[i]), pre_swap) << "id " << rec.ids[i];
    EXPECT_EQ(index2->Contains(rec.ids[i]), !pre_swap) << "id " << rec.ids[i];
  }
  // Post-swap embeddings are bitwise the NEW engine's output — the swap
  // replaced the embed service, not just the index.
  const traj::HmmMapMatcher matcher(world_->net.get(), StreamConfig().matcher);
  std::map<int64_t, const traj::GpsTrajectory*> by_id;
  for (const StreamItem& item : stream) by_id[item.id] = &item.gps;
  for (size_t i = static_cast<size_t>(pre); i < rec.ids.size(); ++i) {
    const traj::Trajectory matched =
        matcher.MatchTrajectory(*by_id[rec.ids[i]]);
    const tensor::Tensor direct =
        alt->EncodeBatch({&matched}, eval::EncodeMode::kFull);
    ASSERT_EQ(static_cast<size_t>(direct.numel()), rec.rows[i].size());
    EXPECT_EQ(std::memcmp(direct.data(), rec.rows[i].data(),
                          rec.rows[i].size() * sizeof(float)),
              0)
        << "post-swap embedding of id " << rec.ids[i]
        << " did not come from the new engine";
  }
}

TEST_F(StreamPipelineTest, SwapUnderLoadLosesNothingAndPreservesOrder) {
  const std::vector<StreamItem> stream = MakeStream(48);
  auto index1 = std::make_shared<HnswIndex>(encoder_->dim());
  auto index2 = std::make_shared<HnswIndex>(encoder_->dim());
  const std::shared_ptr<const serve::FrozenEncoder> alt = MakeAltEncoder();
  StreamPipeline pipeline(
      serve::EngineBundle{Borrow<const serve::FrozenEncoder>(encoder_),
                          index1, nullptr},
      world_->net.get(), SmallConfig());
  Recorder rec;
  pipeline.SetOnIngested(rec.Callback());
  // Swap mid-stream, while items are demonstrably in flight (no quiescence
  // requirement): in-flight items must finish on the old bundle, later ones
  // on the new, with nothing dropped or reordered.
  std::thread swapper([&] {
    while (pipeline.stats().ingested() < 5) std::this_thread::yield();
    const common::Status st = pipeline.SwapEngine({alt, index2, nullptr});
    EXPECT_TRUE(st.ok()) << st.ToString();
  });
  for (const StreamItem& item : stream) {
    ASSERT_TRUE(pipeline.Push(item).ok());
  }
  swapper.join();
  pipeline.Flush();
  const PipelineStats s = pipeline.stats();
  ExpectAccounted(s);
  EXPECT_EQ(s.swaps, 1);
  EXPECT_EQ(s.epoch, 1);
  // Nothing lost: every ingested item is in exactly one of the two indexes.
  EXPECT_EQ(index1->size() + index2->size(), s.ingested());
  for (const int64_t id : rec.ids) {
    EXPECT_NE(index1->Contains(id), index2->Contains(id))
        << "id " << id << " must live in exactly one generation";
  }
  // Nothing reordered: ingestion order is still push order.
  std::vector<int64_t> expected_ingested;
  std::set<int64_t> got(rec.ids.begin(), rec.ids.end());
  for (const StreamItem& item : stream) {
    if (got.count(item.id)) expected_ingested.push_back(item.id);
  }
  EXPECT_EQ(rec.ids, expected_ingested);
  // The split point is a single boundary in ingestion order: once an item
  // lands in the new index, no later item lands in the old one.
  bool seen_new = false;
  for (const int64_t id : rec.ids) {
    if (index2->Contains(id)) {
      seen_new = true;
    } else {
      EXPECT_FALSE(seen_new)
          << "id " << id << " landed in the old index after the swap point";
    }
  }
}

TEST_F(StreamPipelineTest, SwapRejectsInvalidBundlesAndKeepsServing) {
  const std::vector<StreamItem> stream = MakeStream(8);
  auto index1 = std::make_shared<HnswIndex>(encoder_->dim());
  StreamPipeline pipeline(
      serve::EngineBundle{Borrow<const serve::FrozenEncoder>(encoder_),
                          index1, nullptr},
      world_->net.get(), SmallConfig());
  const std::shared_ptr<const serve::FrozenEncoder> alt = MakeAltEncoder();
  // Null components.
  EXPECT_EQ(pipeline.SwapEngine({nullptr, index1, nullptr}).code(),
            common::StatusCode::kInvalidArgument);
  EXPECT_EQ(pipeline.SwapEngine({alt, nullptr, nullptr}).code(),
            common::StatusCode::kInvalidArgument);
  // Dimension mismatch between the new index and the serving engine.
  auto wrong_dim = std::make_shared<HnswIndex>(encoder_->dim() + 1);
  EXPECT_EQ(pipeline.SwapEngine({alt, wrong_dim, nullptr}).code(),
            common::StatusCode::kInvalidArgument);
  // A drift monitor of the wrong dimensionality.
  auto wrong_drift =
      std::make_shared<DriftMonitor>(encoder_->dim() + 1, DriftConfig());
  EXPECT_EQ(pipeline.SwapEngine({alt, index1, wrong_drift}).code(),
            common::StatusCode::kInvalidArgument);
  // Every rejection left the old engine serving untouched.
  EXPECT_EQ(pipeline.stats().swaps, 0);
  EXPECT_EQ(pipeline.stats().epoch, 0);
  for (const StreamItem& item : stream) {
    ASSERT_TRUE(pipeline.Push(item).ok());
  }
  pipeline.Flush();
  const PipelineStats s = pipeline.stats();
  ExpectAccounted(s);
  EXPECT_EQ(index1->size(), s.ingested());
  EXPECT_GT(s.ingested(), 0);
}

TEST_F(StreamPipelineTest, RequireQuiescentSwapRefusesWhileItemsInFlight) {
  const std::vector<StreamItem> stream = MakeStream(6);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  FaultHooks hooks;
  hooks.before_stage = [&](const char* stage, int64_t seq) {
    if (std::strcmp(stage, "match") == 0 && seq == 0) {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release; });  // holds seq 0 in flight
    }
    return common::Status::OK();
  };
  auto index1 = std::make_shared<HnswIndex>(encoder_->dim());
  auto index2 = std::make_shared<HnswIndex>(encoder_->dim());
  const std::shared_ptr<const serve::FrozenEncoder> alt = MakeAltEncoder();
  StreamPipeline pipeline(
      serve::EngineBundle{Borrow<const serve::FrozenEncoder>(encoder_),
                          index1, nullptr},
      world_->net.get(), SmallConfig(), &hooks);
  for (const StreamItem& item : stream) {
    ASSERT_TRUE(pipeline.Push(item).ok());
  }
  // Seq 0 is stalled in match, so the pipeline cannot be quiescent: the
  // gated swap must refuse and leave the old engine serving.
  EXPECT_FALSE(pipeline.WaitQuiescent(/*timeout_us=*/1000));
  EXPECT_EQ(pipeline.SwapEngine({alt, index2, nullptr},
                                /*require_quiescent=*/true)
                .code(),
            common::StatusCode::kFailedPrecondition);
  EXPECT_EQ(pipeline.stats().swaps, 0);
  EXPECT_EQ(pipeline.stats().epoch, 0);
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  pipeline.Flush();
  EXPECT_TRUE(pipeline.WaitQuiescent(/*timeout_us=*/1'000'000));
  // Quiescent now: the same swap lands.
  const common::Status st =
      pipeline.SwapEngine({alt, index2, nullptr}, /*require_quiescent=*/true);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(pipeline.stats().epoch, 1);
  // After Drain() no swap may land at all.
  pipeline.Drain();
  EXPECT_EQ(pipeline.SwapEngine({alt, index1, nullptr}).code(),
            common::StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace start
