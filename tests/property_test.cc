// Cross-module property tests: parameterised sweeps over seeds and
// configurations checking invariants that must hold for *any* input, not
// just hand-picked cases.
#include <cmath>
#include <gtest/gtest.h>
#include <set>

#include "core/start_model.h"
#include "data/augmentation.h"
#include "data/batch.h"
#include "data/span_mask.h"
#include "eval/metrics.h"
#include "roadnet/shortest_path.h"
#include "roadnet/synthetic_city.h"
#include "tensor/ops.h"
#include "traj/trip_generator.h"

namespace start {
namespace {

// ---------------------------------------------------------------------------
// Augmentation invariants over random seeds (Sec. III-C2).
// ---------------------------------------------------------------------------

class AugmentationPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  AugmentationPropertyTest()
      : net_(roadnet::BuildSyntheticCity(
            {.grid_width = 6, .grid_height = 6})),
        traffic_(&net_, {}) {}

  roadnet::RoadNetwork net_;
  traj::TrafficModel traffic_;
};

TEST_P(AugmentationPropertyTest, InvariantsHold) {
  const auto [seed, kind_idx] = GetParam();
  const auto kind = static_cast<data::AugmentationKind>(kind_idx);
  common::Rng rng(static_cast<uint64_t>(seed) * 977 + 13);
  traj::TripGenerator::Config config;
  config.num_drivers = 2;
  config.seed = static_cast<uint64_t>(seed) + 500;
  traj::TripGenerator gen(&traffic_, config);
  const traj::Trajectory t = gen.GenerateTrip(
      0, rng.UniformInt(net_.num_segments()),
      rng.UniformInt(net_.num_segments()), 9 * 3600);
  if (t.size() < 4) GTEST_SKIP() << "degenerate trip";

  const data::View v = data::Augment(t, kind, {}, &traffic_, &rng);
  // Universal invariants.
  ASSERT_GT(v.size(), 0);
  ASSERT_EQ(v.roads.size(), v.times.size());
  ASSERT_EQ(v.roads.size(), v.minute_idx.size());
  for (int64_t i = 0; i < v.size(); ++i) {
    const int64_t road = v.roads[static_cast<size_t>(i)];
    EXPECT_TRUE(road == data::kMaskRoad ||
                (road >= 0 && road < net_.num_segments()));
    EXPECT_GE(v.minute_idx[static_cast<size_t>(i)], 0);
    EXPECT_LE(v.minute_idx[static_cast<size_t>(i)], 1440);
    EXPECT_GE(v.dow_idx[static_cast<size_t>(i)], 0);
    EXPECT_LE(v.dow_idx[static_cast<size_t>(i)], 7);
  }
  // Times non-decreasing for every strategy (strictly increasing except at
  // masked positions which keep raw times).
  for (int64_t i = 0; i + 1 < v.size(); ++i) {
    EXPECT_LE(v.times[static_cast<size_t>(i)],
              v.times[static_cast<size_t>(i + 1)]);
  }
  // Kind-specific invariants.
  switch (kind) {
    case data::AugmentationKind::kTrim:
      EXPECT_LT(v.size(), t.size());
      break;
    case data::AugmentationKind::kTemporalShift:
    case data::AugmentationKind::kRoadMask:
    case data::AugmentationKind::kDropout:
      EXPECT_EQ(v.size(), t.size());
      break;
  }
  if (kind == data::AugmentationKind::kDropout) {
    EXPECT_TRUE(v.embedding_dropout);
  } else {
    EXPECT_FALSE(v.embedding_dropout);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndKinds, AugmentationPropertyTest,
    ::testing::Combine(::testing::Range(0, 8), ::testing::Range(0, 4)));

// ---------------------------------------------------------------------------
// Span masking over random seeds / ratios.
// ---------------------------------------------------------------------------

class SpanMaskPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SpanMaskPropertyTest, BudgetAndConsistency) {
  const int seed = GetParam();
  common::Rng rng(static_cast<uint64_t>(seed) * 31 + 7);
  const int64_t n = 6 + rng.UniformInt(60);
  data::View v;
  for (int64_t i = 0; i < n; ++i) {
    v.roads.push_back(i % 17);
    v.minute_idx.push_back(1 + i % 1440);
    v.dow_idx.push_back(1 + i % 7);
    v.times.push_back(static_cast<double>(100 * i));
  }
  const double ratio = rng.Uniform(0.1, 0.4);
  const auto info = data::ApplySpanMask(&v, 2, ratio, &rng);
  // Coverage at least the requested budget (ceil), no duplicates.
  EXPECT_GE(static_cast<double>(info.positions.size()),
            std::ceil(ratio * static_cast<double>(n)) - 1e-9);
  const std::set<int64_t> unique(info.positions.begin(),
                                 info.positions.end());
  EXPECT_EQ(unique.size(), info.positions.size());
  // Every reported position is masked, and every masked position reported.
  int64_t masked_count = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (v.roads[static_cast<size_t>(i)] == data::kMaskRoad) ++masked_count;
  }
  EXPECT_EQ(masked_count, static_cast<int64_t>(info.positions.size()));
  for (size_t k = 0; k < info.positions.size(); ++k) {
    EXPECT_EQ(info.targets[k], info.positions[k] % 17);  // original road ids
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpanMaskPropertyTest,
                         ::testing::Range(0, 12));

// ---------------------------------------------------------------------------
// Yen's algorithm vs exhaustive enumeration on a small graph.
// ---------------------------------------------------------------------------

TEST(KspPropertyTest, MatchesExhaustiveEnumeration) {
  // 5-node graph with several simple paths 0 -> 4.
  roadnet::RoadNetwork net;
  for (int i = 0; i < 5; ++i) {
    roadnet::RoadSegment s;
    s.length_m = 100;
    s.maxspeed_mps = 10;
    net.AddSegment(s);
  }
  const std::vector<std::pair<int64_t, int64_t>> edges = {
      {0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {2, 4}, {3, 4}, {1, 4}};
  for (const auto& [a, b] : edges) net.AddEdge(a, b);
  net.Finalize();
  auto weight = [](int64_t v) { return static_cast<double>(v) + 1.0; };
  // Exhaustive DFS enumeration of simple paths.
  std::vector<std::pair<double, std::vector<int64_t>>> all_paths;
  std::vector<int64_t> stack{0};
  std::function<void()> dfs = [&] {
    const int64_t cur = stack.back();
    if (cur == 4) {
      double cost = 0;
      for (const int64_t v : stack) cost += weight(v);
      all_paths.emplace_back(cost, stack);
      return;
    }
    for (const int64_t nxt : net.OutNeighbors(cur)) {
      if (std::find(stack.begin(), stack.end(), nxt) != stack.end()) continue;
      stack.push_back(nxt);
      dfs();
      stack.pop_back();
    }
  };
  dfs();
  std::sort(all_paths.begin(), all_paths.end());
  const auto yen = roadnet::KShortestPaths(net, 0, 4, 100, weight);
  ASSERT_EQ(yen.size(), all_paths.size());
  for (size_t i = 0; i < yen.size(); ++i) {
    EXPECT_NEAR(yen[i].cost, all_paths[i].first, 1e-9) << "rank " << i;
  }
}

// ---------------------------------------------------------------------------
// Metric properties.
// ---------------------------------------------------------------------------

TEST(MetricPropertyTest, AucInvariantToMonotoneScoreTransform) {
  common::Rng rng(5);
  std::vector<int64_t> labels;
  std::vector<double> scores, transformed;
  for (int i = 0; i < 200; ++i) {
    labels.push_back(rng.Bernoulli(0.4) ? 1 : 0);
    const double s = rng.Uniform();
    scores.push_back(s);
    transformed.push_back(std::exp(3.0 * s) - 0.5);  // strictly increasing
  }
  EXPECT_NEAR(eval::BinaryAuc(labels, scores),
              eval::BinaryAuc(labels, transformed), 1e-12);
}

TEST(MetricPropertyTest, RecallAtKMonotoneInK) {
  common::Rng rng(6);
  const int64_t n = 50, c = 8;
  std::vector<int64_t> labels;
  std::vector<double> scores;
  for (int64_t i = 0; i < n; ++i) {
    labels.push_back(rng.UniformInt(c));
    for (int64_t j = 0; j < c; ++j) scores.push_back(rng.Uniform());
  }
  double prev = 0.0;
  for (int64_t k = 1; k <= c; ++k) {
    const double r = eval::RecallAtK(labels, scores, c, k);
    EXPECT_GE(r, prev);
    prev = r;
  }
  EXPECT_DOUBLE_EQ(prev, 1.0);  // Recall@C is always 1
}

// ---------------------------------------------------------------------------
// Encoder determinism in eval mode.
// ---------------------------------------------------------------------------

TEST(EncoderPropertyTest, EvalModeIsDeterministic) {
  const auto net = roadnet::BuildSyntheticCity(
      {.grid_width = 5, .grid_height = 5});
  traj::TrafficModel traffic(&net, {});
  traj::TripGenerator::Config gen_config;
  gen_config.num_drivers = 2;
  traj::TripGenerator gen(&traffic, gen_config);
  const auto trip = gen.GenerateTrip(0, 1, net.num_segments() - 2, 9 * 3600);
  ASSERT_GT(trip.size(), 3);

  core::StartConfig config;
  config.d = 16;
  config.gat_layers = 1;
  config.gat_heads = {2};
  config.encoder_layers = 1;
  config.encoder_heads = 2;
  config.max_len = 64;
  common::Rng rng(9);
  core::StartModel model(config, &net, nullptr, &rng);
  model.SetTraining(false);
  tensor::NoGradGuard no_grad;
  const auto batch = data::MakeBatch({data::MakeView(trip)});
  const auto a = model.Encode(batch);
  const auto b = model.Encode(batch);
  for (int64_t j = 0; j < 16; ++j) {
    EXPECT_EQ(a.cls.at({0, j}), b.cls.at({0, j}));
  }
}

// Dropout augmentation gives *different* encodings in training mode — the
// SimCSE mechanism the Dropout strategy relies on.
TEST(EncoderPropertyTest, TrainingDropoutDiversifiesViews) {
  const auto net = roadnet::BuildSyntheticCity(
      {.grid_width = 5, .grid_height = 5});
  traj::TrafficModel traffic(&net, {});
  traj::TripGenerator::Config gen_config;
  gen_config.num_drivers = 2;
  traj::TripGenerator gen(&traffic, gen_config);
  const auto trip = gen.GenerateTrip(0, 1, net.num_segments() - 2, 9 * 3600);
  ASSERT_GT(trip.size(), 3);
  core::StartConfig config;
  config.d = 16;
  config.gat_layers = 1;
  config.gat_heads = {2};
  config.encoder_layers = 1;
  config.encoder_heads = 2;
  config.max_len = 64;
  config.dropout = 0.2f;
  common::Rng rng(10);
  core::StartModel model(config, &net, nullptr, &rng);
  model.SetTraining(true);
  common::SeedGlobalRng(123);
  const auto batch = data::MakeBatch({data::MakeView(trip)});
  const auto a = model.Encode(batch);
  const auto b = model.Encode(batch);
  double diff = 0.0;
  for (int64_t j = 0; j < 16; ++j) {
    diff += std::fabs(a.cls.at({0, j}) - b.cls.at({0, j}));
  }
  EXPECT_GT(diff, 1e-6);
}

}  // namespace
}  // namespace start
