// Cross-module property tests: parameterised sweeps over seeds and
// configurations checking invariants that must hold for *any* input, not
// just hand-picked cases.
#include <cmath>
#include <gtest/gtest.h>
#include <set>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "core/start_model.h"
#include "data/augmentation.h"
#include "data/batch.h"
#include "data/span_mask.h"
#include "eval/metrics.h"
#include "roadnet/shortest_path.h"
#include "roadnet/synthetic_city.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "tensor/qgemm.h"
#include "testing.h"
#include "traj/trip_generator.h"

namespace start {
namespace {

using testutil::ForEachOmpRegime;

// ---------------------------------------------------------------------------
// Augmentation invariants over random seeds (Sec. III-C2).
// ---------------------------------------------------------------------------

class AugmentationPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  AugmentationPropertyTest()
      : net_(roadnet::BuildSyntheticCity(
            {.grid_width = 6, .grid_height = 6})),
        traffic_(&net_, {}) {}

  roadnet::RoadNetwork net_;
  traj::TrafficModel traffic_;
};

TEST_P(AugmentationPropertyTest, InvariantsHold) {
  const auto [seed, kind_idx] = GetParam();
  const auto kind = static_cast<data::AugmentationKind>(kind_idx);
  common::Rng rng(static_cast<uint64_t>(seed) * 977 + 13);
  traj::TripGenerator::Config config;
  config.num_drivers = 2;
  config.seed = static_cast<uint64_t>(seed) + 500;
  traj::TripGenerator gen(&traffic_, config);
  const traj::Trajectory t = gen.GenerateTrip(
      0, rng.UniformInt(net_.num_segments()),
      rng.UniformInt(net_.num_segments()), 9 * 3600);
  if (t.size() < 4) GTEST_SKIP() << "degenerate trip";

  const data::View v = data::Augment(t, kind, {}, &traffic_, &rng);
  // Universal invariants.
  ASSERT_GT(v.size(), 0);
  ASSERT_EQ(v.roads.size(), v.times.size());
  ASSERT_EQ(v.roads.size(), v.minute_idx.size());
  for (int64_t i = 0; i < v.size(); ++i) {
    const int64_t road = v.roads[static_cast<size_t>(i)];
    EXPECT_TRUE(road == data::kMaskRoad ||
                (road >= 0 && road < net_.num_segments()));
    EXPECT_GE(v.minute_idx[static_cast<size_t>(i)], 0);
    EXPECT_LE(v.minute_idx[static_cast<size_t>(i)], 1440);
    EXPECT_GE(v.dow_idx[static_cast<size_t>(i)], 0);
    EXPECT_LE(v.dow_idx[static_cast<size_t>(i)], 7);
  }
  // Times non-decreasing for every strategy (strictly increasing except at
  // masked positions which keep raw times).
  for (int64_t i = 0; i + 1 < v.size(); ++i) {
    EXPECT_LE(v.times[static_cast<size_t>(i)],
              v.times[static_cast<size_t>(i + 1)]);
  }
  // Kind-specific invariants.
  switch (kind) {
    case data::AugmentationKind::kTrim:
      EXPECT_LT(v.size(), t.size());
      break;
    case data::AugmentationKind::kTemporalShift:
    case data::AugmentationKind::kRoadMask:
    case data::AugmentationKind::kDropout:
      EXPECT_EQ(v.size(), t.size());
      break;
  }
  if (kind == data::AugmentationKind::kDropout) {
    EXPECT_TRUE(v.embedding_dropout);
  } else {
    EXPECT_FALSE(v.embedding_dropout);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndKinds, AugmentationPropertyTest,
    ::testing::Combine(::testing::Range(0, 8), ::testing::Range(0, 4)));

// ---------------------------------------------------------------------------
// Span masking over random seeds / ratios.
// ---------------------------------------------------------------------------

class SpanMaskPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SpanMaskPropertyTest, BudgetAndConsistency) {
  const int seed = GetParam();
  common::Rng rng(static_cast<uint64_t>(seed) * 31 + 7);
  const int64_t n = 6 + rng.UniformInt(60);
  data::View v;
  for (int64_t i = 0; i < n; ++i) {
    v.roads.push_back(i % 17);
    v.minute_idx.push_back(1 + i % 1440);
    v.dow_idx.push_back(1 + i % 7);
    v.times.push_back(static_cast<double>(100 * i));
  }
  const double ratio = rng.Uniform(0.1, 0.4);
  const auto info = data::ApplySpanMask(&v, 2, ratio, &rng);
  // Coverage at least the requested budget (ceil), no duplicates.
  EXPECT_GE(static_cast<double>(info.positions.size()),
            std::ceil(ratio * static_cast<double>(n)) - 1e-9);
  const std::set<int64_t> unique(info.positions.begin(),
                                 info.positions.end());
  EXPECT_EQ(unique.size(), info.positions.size());
  // Every reported position is masked, and every masked position reported.
  int64_t masked_count = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (v.roads[static_cast<size_t>(i)] == data::kMaskRoad) ++masked_count;
  }
  EXPECT_EQ(masked_count, static_cast<int64_t>(info.positions.size()));
  for (size_t k = 0; k < info.positions.size(); ++k) {
    EXPECT_EQ(info.targets[k], info.positions[k] % 17);  // original road ids
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpanMaskPropertyTest,
                         ::testing::Range(0, 12));

// ---------------------------------------------------------------------------
// Yen's algorithm vs exhaustive enumeration on a small graph.
// ---------------------------------------------------------------------------

TEST(KspPropertyTest, MatchesExhaustiveEnumeration) {
  // 5-node graph with several simple paths 0 -> 4.
  roadnet::RoadNetwork net;
  for (int i = 0; i < 5; ++i) {
    roadnet::RoadSegment s;
    s.length_m = 100;
    s.maxspeed_mps = 10;
    net.AddSegment(s);
  }
  const std::vector<std::pair<int64_t, int64_t>> edges = {
      {0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {2, 4}, {3, 4}, {1, 4}};
  for (const auto& [a, b] : edges) net.AddEdge(a, b);
  net.Finalize();
  auto weight = [](int64_t v) { return static_cast<double>(v) + 1.0; };
  // Exhaustive DFS enumeration of simple paths.
  std::vector<std::pair<double, std::vector<int64_t>>> all_paths;
  std::vector<int64_t> stack{0};
  std::function<void()> dfs = [&] {
    const int64_t cur = stack.back();
    if (cur == 4) {
      double cost = 0;
      for (const int64_t v : stack) cost += weight(v);
      all_paths.emplace_back(cost, stack);
      return;
    }
    for (const int64_t nxt : net.OutNeighbors(cur)) {
      if (std::find(stack.begin(), stack.end(), nxt) != stack.end()) continue;
      stack.push_back(nxt);
      dfs();
      stack.pop_back();
    }
  };
  dfs();
  std::sort(all_paths.begin(), all_paths.end());
  const auto yen = roadnet::KShortestPaths(net, 0, 4, 100, weight);
  ASSERT_EQ(yen.size(), all_paths.size());
  for (size_t i = 0; i < yen.size(); ++i) {
    EXPECT_NEAR(yen[i].cost, all_paths[i].first, 1e-9) << "rank " << i;
  }
}

// ---------------------------------------------------------------------------
// Metric properties.
// ---------------------------------------------------------------------------

TEST(MetricPropertyTest, AucInvariantToMonotoneScoreTransform) {
  common::Rng rng(5);
  std::vector<int64_t> labels;
  std::vector<double> scores, transformed;
  for (int i = 0; i < 200; ++i) {
    labels.push_back(rng.Bernoulli(0.4) ? 1 : 0);
    const double s = rng.Uniform();
    scores.push_back(s);
    transformed.push_back(std::exp(3.0 * s) - 0.5);  // strictly increasing
  }
  EXPECT_NEAR(eval::BinaryAuc(labels, scores),
              eval::BinaryAuc(labels, transformed), 1e-12);
}

TEST(MetricPropertyTest, RecallAtKMonotoneInK) {
  common::Rng rng(6);
  const int64_t n = 50, c = 8;
  std::vector<int64_t> labels;
  std::vector<double> scores;
  for (int64_t i = 0; i < n; ++i) {
    labels.push_back(rng.UniformInt(c));
    for (int64_t j = 0; j < c; ++j) scores.push_back(rng.Uniform());
  }
  double prev = 0.0;
  for (int64_t k = 1; k <= c; ++k) {
    const double r = eval::RecallAtK(labels, scores, c, k);
    EXPECT_GE(r, prev);
    prev = r;
  }
  EXPECT_DOUBLE_EQ(prev, 1.0);  // Recall@C is always 1
}

// ---------------------------------------------------------------------------
// Encoder determinism in eval mode.
// ---------------------------------------------------------------------------

TEST(EncoderPropertyTest, EvalModeIsDeterministic) {
  const auto net = roadnet::BuildSyntheticCity(
      {.grid_width = 5, .grid_height = 5});
  traj::TrafficModel traffic(&net, {});
  traj::TripGenerator::Config gen_config;
  gen_config.num_drivers = 2;
  traj::TripGenerator gen(&traffic, gen_config);
  const auto trip = gen.GenerateTrip(0, 1, net.num_segments() - 2, 9 * 3600);
  ASSERT_GT(trip.size(), 3);

  core::StartConfig config;
  config.d = 16;
  config.gat_layers = 1;
  config.gat_heads = {2};
  config.encoder_layers = 1;
  config.encoder_heads = 2;
  config.max_len = 64;
  common::Rng rng(9);
  core::StartModel model(config, &net, nullptr, &rng);
  model.SetTraining(false);
  tensor::NoGradGuard no_grad;
  const auto batch = data::MakeBatch({data::MakeView(trip)});
  const auto a = model.Encode(batch);
  const auto b = model.Encode(batch);
  for (int64_t j = 0; j < 16; ++j) {
    EXPECT_EQ(a.cls.at({0, j}), b.cls.at({0, j}));
  }
}

// Dropout augmentation gives *different* encodings in training mode — the
// SimCSE mechanism the Dropout strategy relies on.
TEST(EncoderPropertyTest, TrainingDropoutDiversifiesViews) {
  const auto net = roadnet::BuildSyntheticCity(
      {.grid_width = 5, .grid_height = 5});
  traj::TrafficModel traffic(&net, {});
  traj::TripGenerator::Config gen_config;
  gen_config.num_drivers = 2;
  traj::TripGenerator gen(&traffic, gen_config);
  const auto trip = gen.GenerateTrip(0, 1, net.num_segments() - 2, 9 * 3600);
  ASSERT_GT(trip.size(), 3);
  core::StartConfig config;
  config.d = 16;
  config.gat_layers = 1;
  config.gat_heads = {2};
  config.encoder_layers = 1;
  config.encoder_heads = 2;
  config.max_len = 64;
  config.dropout = 0.2f;
  common::Rng rng(10);
  core::StartModel model(config, &net, nullptr, &rng);
  model.SetTraining(true);
  common::SeedGlobalRng(123);
  const auto batch = data::MakeBatch({data::MakeView(trip)});
  const auto a = model.Encode(batch);
  const auto b = model.Encode(batch);
  double diff = 0.0;
  for (int64_t j = 0; j < 16; ++j) {
    diff += std::fabs(a.cls.at({0, j}) - b.cls.at({0, j}));
  }
  EXPECT_GT(diff, 1e-6);
}

// ---------------------------------------------------------------------------
// Strided kernel engine: GemmNN/NT/TN and broadcast elementwise ops against
// naive scalar references, over randomized shapes / leading dimensions /
// transposes, under both OpenMP regimes (see ForEachOmpRegime). The GEMMs
// must also be bitwise-stable across thread counts: they parallelise over
// independent output rows while each dot product stays a fixed serial fold —
// the property the sharded trainer's determinism contract leans on.
// ---------------------------------------------------------------------------

class StridedGemmPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(StridedGemmPropertyTest, MatchesNaiveReferenceAllVariants) {
  common::Rng rng(testutil::TestSeed(GetParam()));
  const int64_t m = 1 + rng.UniformInt(17);
  const int64_t k = 1 + rng.UniformInt(23);
  const int64_t n = 1 + rng.UniformInt(19);
  // Random leading dimensions ≥ the row width simulate row-strided views
  // (slices of a wider base matrix), the whole point of the strided API.
  const int64_t lda_nn = k + rng.UniformInt(5);
  const int64_t ldb_nn = n + rng.UniformInt(5);
  const int64_t ldb_nt = k + rng.UniformInt(5);
  const int64_t lda_tn = m + rng.UniformInt(5);
  const int64_t ldc = n + rng.UniformInt(5);

  const auto fill = [&rng](std::vector<float>* v) {
    for (auto& x : *v) x = static_cast<float>(rng.Uniform(-1.0, 1.0));
  };
  // Buffers sized for the largest addressing each variant performs.
  std::vector<float> a_nn(static_cast<size_t>(m * lda_nn));
  std::vector<float> b_nn(static_cast<size_t>(k * ldb_nn));
  std::vector<float> b_nt(static_cast<size_t>(n * ldb_nt));
  std::vector<float> a_tn(static_cast<size_t>(k * lda_tn));
  std::vector<float> c_init(static_cast<size_t>(m * ldc));
  fill(&a_nn);
  fill(&b_nn);
  fill(&b_nt);
  fill(&a_tn);
  fill(&c_init);  // GEMMs accumulate: C += ..., start from random C

  struct Variant {
    const char* name;
    std::function<void(std::vector<float>*)> run;
    std::function<double(int64_t, int64_t)> reference;  // (i, j) -> sum
  };
  const std::vector<Variant> variants = {
      {"GemmNN",
       [&](std::vector<float>* c) {
         tensor::internal::GemmNN(a_nn.data(), lda_nn, b_nn.data(), ldb_nn,
                                  c->data(), ldc, m, k, n);
       },
       [&](int64_t i, int64_t j) {
         double acc = 0;
         for (int64_t p = 0; p < k; ++p) {
           acc += static_cast<double>(a_nn[static_cast<size_t>(i * lda_nn + p)]) *
                  b_nn[static_cast<size_t>(p * ldb_nn + j)];
         }
         return acc;
       }},
      {"GemmNT",
       [&](std::vector<float>* c) {
         tensor::internal::GemmNT(a_nn.data(), lda_nn, b_nt.data(), ldb_nt,
                                  c->data(), ldc, m, k, n);
       },
       [&](int64_t i, int64_t j) {
         double acc = 0;
         for (int64_t p = 0; p < k; ++p) {
           acc += static_cast<double>(a_nn[static_cast<size_t>(i * lda_nn + p)]) *
                  b_nt[static_cast<size_t>(j * ldb_nt + p)];
         }
         return acc;
       }},
      {"GemmTN",
       [&](std::vector<float>* c) {
         tensor::internal::GemmTN(a_tn.data(), lda_tn, b_nn.data(), ldb_nn,
                                  c->data(), ldc, m, k, n);
       },
       [&](int64_t i, int64_t j) {
         double acc = 0;
         for (int64_t p = 0; p < k; ++p) {
           acc += static_cast<double>(a_tn[static_cast<size_t>(p * lda_tn + i)]) *
                  b_nn[static_cast<size_t>(p * ldb_nn + j)];
         }
         return acc;
       }},
  };

  for (const auto& variant : variants) {
    SCOPED_TRACE(variant.name);
    std::vector<std::vector<float>> results;
    ForEachOmpRegime([&](const char* regime) {
      SCOPED_TRACE(regime);
      std::vector<float> c = c_init;
      variant.run(&c);
      // Numeric correctness vs the double-precision scalar reference.
      for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j) {
          const double expected =
              c_init[static_cast<size_t>(i * ldc + j)] +
              variant.reference(i, j);
          EXPECT_NEAR(c[static_cast<size_t>(i * ldc + j)], expected,
                      1e-4 * (1.0 + std::fabs(expected)))
              << "at (" << i << ", " << j << ")";
        }
      }
      // Padding tails (columns [n, ldc)) must be untouched.
      for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = n; j < ldc; ++j) {
          EXPECT_EQ(c[static_cast<size_t>(i * ldc + j)],
                    c_init[static_cast<size_t>(i * ldc + j)]);
        }
      }
      results.push_back(std::move(c));
    });
    // Bitwise identical across thread regimes.
    for (size_t r = 1; r < results.size(); ++r) {
      testutil::ExpectFloatsBitwiseEqual(results[0], results[r],
                                         "thread-count invariance");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StridedGemmPropertyTest,
                         ::testing::Range(0, 10));

class BroadcastElementwisePropertyTest : public ::testing::TestWithParam<int> {
};

TEST_P(BroadcastElementwisePropertyTest, MatchesNaiveReference) {
  common::Rng rng(testutil::TestSeed(GetParam()));
  // Random 2-D output shape; each operand independently broadcasts either
  // dim and may arrive as a genuinely non-contiguous transpose view (values
  // stored column-major, viewed row-major) — the strided iteration plan of
  // kernels.h, not the contiguous fast path.
  const int64_t d0 = 2 + rng.UniformInt(6);
  const int64_t d1 = 2 + rng.UniformInt(7);
  const auto make_operand = [&]() {
    const int64_t r = rng.Bernoulli(0.3) ? 1 : d0;
    const int64_t c = rng.Bernoulli(0.3) ? 1 : d1;
    std::vector<float> values(static_cast<size_t>(r * c));
    for (auto& v : values) {
      v = static_cast<float>(rng.Uniform(0.5, 2.0));  // Div-safe
    }
    if (r > 1 && c > 1 && rng.Bernoulli(0.5)) {
      // Store as [c, r] and transpose: logical [r, c] with swapped strides.
      tensor::Tensor stored = tensor::Tensor::FromVector(
          tensor::Shape({c, r}), std::move(values));
      tensor::Tensor t = tensor::Transpose(stored);
      EXPECT_FALSE(t.is_contiguous());
      return t;
    }
    return tensor::Tensor::FromVector(tensor::Shape({r, c}),
                                      std::move(values));
  };

  struct Op {
    const char* name;
    std::function<tensor::Tensor(const tensor::Tensor&,
                                 const tensor::Tensor&)> apply;
    std::function<double(double, double)> reference;
  };
  const std::vector<Op> ops = {
      {"Add", [](const auto& a, const auto& b) { return tensor::Add(a, b); },
       [](double x, double y) { return x + y; }},
      {"Sub", [](const auto& a, const auto& b) { return tensor::Sub(a, b); },
       [](double x, double y) { return x - y; }},
      {"Mul", [](const auto& a, const auto& b) { return tensor::Mul(a, b); },
       [](double x, double y) { return x * y; }},
      {"Div", [](const auto& a, const auto& b) { return tensor::Div(a, b); },
       [](double x, double y) { return x / y; }},
  };
  const tensor::Tensor a = make_operand();
  const tensor::Tensor b = make_operand();

  for (const auto& op : ops) {
    SCOPED_TRACE(op.name);
    std::vector<std::vector<float>> results;
    ForEachOmpRegime([&](const char* regime) {
      SCOPED_TRACE(regime);
      const tensor::Tensor out = op.apply(a, b);
      ASSERT_EQ(out.shape(), tensor::Shape({d0, d1}));
      std::vector<float> flat(static_cast<size_t>(out.numel()));
      for (int64_t i = 0; i < d0; ++i) {
        for (int64_t j = 0; j < d1; ++j) {
          const auto pick = [&](const tensor::Tensor& t) {
            return static_cast<double>(
                t.at({t.dim(0) == 1 ? 0 : i, t.dim(1) == 1 ? 0 : j}));
          };
          const float got = out.at({i, j});
          const double expected = op.reference(pick(a), pick(b));
          EXPECT_NEAR(got, expected, 1e-5 * (1.0 + std::fabs(expected)))
              << "at (" << i << ", " << j << ")";
          flat[static_cast<size_t>(i * d1 + j)] = got;
        }
      }
      results.push_back(std::move(flat));
    });
    for (size_t r = 1; r < results.size(); ++r) {
      testutil::ExpectFloatsBitwiseEqual(results[0], results[r],
                                         "thread-count invariance");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BroadcastElementwisePropertyTest,
                         ::testing::Range(0, 12));

// Broadcast *backward*: gradients of a broadcast Mul must accumulate into
// the reduced operand exactly like the naive dense computation — the
// stride-0 grad-slot accumulation path of kernels.h's general loop.
TEST(BroadcastElementwisePropertyTest, BroadcastBackwardMatchesDense) {
  common::Rng rng(testutil::TestSeed());
  const int64_t rows = 5, cols = 7;
  std::vector<float> wide(static_cast<size_t>(rows * cols));
  std::vector<float> narrow(static_cast<size_t>(cols));
  for (auto& v : wide) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  for (auto& v : narrow) v = static_cast<float>(rng.Uniform(-1.0, 1.0));

  tensor::Tensor a = tensor::Tensor::FromVector(
      tensor::Shape({rows, cols}), std::vector<float>(wide), true);
  tensor::Tensor b = tensor::Tensor::FromVector(
      tensor::Shape({1, cols}), std::vector<float>(narrow), true);
  const tensor::Tensor out = tensor::Mul(a, b);
  tensor::Tensor loss = tensor::Sum(out);
  loss.Backward();

  // d(sum)/d(b[j]) = sum_i a[i, j]; d(sum)/d(a[i, j]) = b[j].
  for (int64_t j = 0; j < cols; ++j) {
    double expected = 0;
    for (int64_t i = 0; i < rows; ++i) {
      expected += wide[static_cast<size_t>(i * cols + j)];
    }
    EXPECT_NEAR(b.grad()[j], expected, 1e-5);
  }
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) {
      EXPECT_NEAR(a.grad()[i * cols + j], narrow[static_cast<size_t>(j)],
                  1e-6);
    }
  }
}

// ---------------------------------------------------------------------------
// Int8 qgemm properties (tensor/qgemm.h): quantize→pack→gemm vs references.
// ---------------------------------------------------------------------------

namespace qg = tensor::qgemm;

/// Exercises one (m, k, n, lda, ldc) instance end to end:
///  - pack→unpack bitwise identity (and re-pack determinism);
///  - Gemm output bitwise equal to an exact integer reference that replays
///    the kernel's arithmetic (i64 dot checked against i32, then the same
///    float dequant ops in the same order);
///  - Gemm output within the analytic per-row-scale error bound of a
///    double-precision GEMM over the original floats;
///  - C padding tail (columns [n, ldc)) untouched;
///  - bitwise invariance across OpenMP regimes and across backends.
void CheckQGemmInstance(common::Rng* rng, int64_t m, int64_t k, int64_t n,
                        int64_t lda, int64_t ldc) {
  SCOPED_TRACE("m=" + std::to_string(m) + " k=" + std::to_string(k) +
               " n=" + std::to_string(n) + " lda=" + std::to_string(lda) +
               " ldc=" + std::to_string(ldc));
  // Weights come from a wider base matrix (ldw > k): the strided-read path
  // of QuantizeRows, i.e. quantizing a submatrix without materialising it.
  const int64_t ldw = k + rng->UniformInt(5);
  std::vector<float> w(static_cast<size_t>(n * ldw));
  std::vector<float> a(static_cast<size_t>(m * lda));
  std::vector<float> c_init(static_cast<size_t>(m * ldc));
  for (auto& x : w) x = static_cast<float>(rng->Uniform(-2.0, 2.0));
  for (auto& x : a) x = static_cast<float>(rng->Uniform(-2.0, 2.0));
  for (auto& x : c_init) x = static_cast<float>(rng->Uniform(-1.0, 1.0));
  // One all-zero weight row (when it fits) pins the scale-0 convention.
  if (n >= 2) {
    std::fill(w.begin() + static_cast<size_t>(ldw),
              w.begin() + static_cast<size_t>(ldw + k), 0.0f);
  }

  // Dense quantized codes + packing round trip.
  std::vector<int8_t> wq(static_cast<size_t>(n * k));
  std::vector<float> wscales(static_cast<size_t>(n));
  qg::QuantizeRows(w.data(), ldw, n, k, wq.data(), wscales.data());
  const qg::PackedMatrix packed = qg::Pack(wq.data(), wscales.data(), n, k);
  ASSERT_EQ(packed.rows, n);
  ASSERT_EQ(packed.cols, k);
  ASSERT_EQ(packed.rows_padded % qg::kRowsPerPanel, 0);
  ASSERT_EQ(packed.cols_padded % qg::kColBlock, 0);
  EXPECT_EQ(qg::Unpack(packed), wq) << "pack -> unpack must be the identity";
  // QuantizeAndPack == QuantizeRows + Pack, bitwise (determinism of the
  // whole quantization pipeline).
  const qg::PackedMatrix packed2 = qg::QuantizeAndPack(w.data(), ldw, n, k);
  EXPECT_EQ(packed2.data, packed.data);
  testutil::ExpectFloatsBitwiseEqual(packed2.scales, packed.scales,
                                     "quantization determinism");
  if (n >= 2) {
    EXPECT_EQ(wscales[1], 0.0f) << "all-zero row must quantize to scale 0";
  }

  // Quantized activations.
  std::vector<int8_t> aq(static_cast<size_t>(m * packed.cols_padded));
  std::vector<float> ascales(static_cast<size_t>(m));
  qg::QuantizeActivations(a.data(), lda, m, packed, aq.data(),
                          ascales.data());
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t p = k; p < packed.cols_padded; ++p) {
      ASSERT_EQ(aq[static_cast<size_t>(i * packed.cols_padded + p)], 0)
          << "k-tail must be zero-filled";
    }
  }

  // Exact expected output: integer dot in i64 (overflow-checked), then the
  // kernel's own float epilogue ops in the kernel's order.
  std::vector<float> expected = c_init;
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      int64_t acc = 0;
      for (int64_t p = 0; p < k; ++p) {
        acc += static_cast<int64_t>(
                   aq[static_cast<size_t>(i * packed.cols_padded + p)]) *
               wq[static_cast<size_t>(j * k + p)];
      }
      ASSERT_EQ(acc, static_cast<int32_t>(acc)) << "i32 accumulator overflow";
      expected[static_cast<size_t>(i * ldc + j)] +=
          static_cast<float>(static_cast<int32_t>(acc)) *
          (ascales[static_cast<size_t>(i)] * wscales[static_cast<size_t>(j)]);
    }
  }

  const std::vector<qg::Backend> backends =
      qg::ActiveBackend() == qg::Backend::kAvx2
          ? std::vector<qg::Backend>{qg::Backend::kScalar, qg::Backend::kAvx2}
          : std::vector<qg::Backend>{qg::Backend::kScalar};
  std::vector<std::vector<float>> results;
  for (const qg::Backend backend : backends) {
    SCOPED_TRACE(qg::BackendName(backend));
    ForEachOmpRegime([&](const char* regime) {
      SCOPED_TRACE(regime);
      std::vector<float> c = c_init;
      qg::Gemm(aq.data(), ascales.data(), m, packed, c.data(), ldc, backend);
      results.push_back(std::move(c));
    });
  }
  // Backend- and thread-count-invariance, bitwise, and exactness vs the
  // integer reference.
  for (size_t r = 0; r < results.size(); ++r) {
    testutil::ExpectFloatsBitwiseEqual(results[0], results[r],
                                       "backend/thread-count invariance");
  }
  testutil::ExpectFloatsBitwiseEqual(results[0], expected,
                                     "exact integer reference");

  // Padding tail untouched.
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = n; j < ldc; ++j) {
      ASSERT_EQ(results[0][static_cast<size_t>(i * ldc + j)],
                c_init[static_cast<size_t>(i * ldc + j)]);
    }
  }

  // Analytic quantization-error bound vs the f32 ground truth: with per-row
  // scales sa, sb and |quantization error| <= scale/2 per element,
  // |C - C_f32|(i,j) <= sum_p (|a_ip| sb_j / 2 + |w_jp| sa_i / 2
  //                            + sa_i sb_j / 4), plus float-rounding slack.
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double truth = 0;
      double bound = 0;
      const double sa = ascales[static_cast<size_t>(i)];
      const double sb = wscales[static_cast<size_t>(j)];
      for (int64_t p = 0; p < k; ++p) {
        const double av =
            a[static_cast<size_t>(i * lda + p)];
        const double wv = w[static_cast<size_t>(j * ldw + p)];
        truth += av * wv;
        bound += std::fabs(av) * sb / 2 + std::fabs(wv) * sa / 2 +
                 sa * sb / 4;
      }
      const double got = results[0][static_cast<size_t>(i * ldc + j)] -
                         c_init[static_cast<size_t>(i * ldc + j)];
      EXPECT_LE(std::fabs(got - truth),
                bound * 1.0001 + 1e-4 * (1.0 + std::fabs(truth)))
          << "analytic error bound violated at (" << i << ", " << j << ")";
    }
  }
}

class QGemmPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(QGemmPropertyTest, RandomShapesAgainstReferences) {
  common::Rng rng(testutil::TestSeed(GetParam()));
  const int64_t m = 1 + rng.UniformInt(16);
  const int64_t k = 1 + rng.UniformInt(70);  // crosses the 32/64 block edges
  const int64_t n = 1 + rng.UniformInt(20);
  const int64_t lda = k + rng.UniformInt(5);
  const int64_t ldc = n + rng.UniformInt(5);
  CheckQGemmInstance(&rng, m, k, n, lda, ldc);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QGemmPropertyTest, ::testing::Range(0, 10));

TEST(QGemmEdgeShapeTest, BlockBoundariesAndDegenerateShapes) {
  common::Rng rng(testutil::TestSeed());
  const int64_t shapes[][3] = {
      {1, 1, 1},  {1, 31, 1}, {2, 32, 4},
      {3, 33, 5}, {4, 64, 8}, {5, 7, 9},
  };
  for (const auto& s : shapes) {
    CheckQGemmInstance(&rng, s[0], s[1], s[2], /*lda=*/s[1], /*ldc=*/s[2]);
  }
}

TEST(QGemmQuantizeTest, RoundHalfEvenAndSaturation) {
  // absmax 127 -> scale exactly 1.0: codes are round-half-even of the input.
  const std::vector<float> row = {127.0f, 0.5f,   1.5f,  2.5f, -0.5f,
                                  -1.5f,  126.5f, -2.5f, 0.0f, -127.0f};
  std::vector<int8_t> q(row.size());
  float scale = 0;
  qg::QuantizeRows(row.data(), static_cast<int64_t>(row.size()), 1,
                   static_cast<int64_t>(row.size()), q.data(), &scale);
  EXPECT_EQ(scale, 1.0f);
  const std::vector<int8_t> want = {127, 0, 2, 2, 0, -2, 126, -2, 0, -127};
  EXPECT_EQ(q, want);
}

TEST(QGemmAffineForwardTest, MatchesGemmPlusBias) {
  common::Rng rng(testutil::TestSeed());
  const int64_t m = 5, k = 40, n = 7, ldy = n + 3;
  std::vector<float> w(static_cast<size_t>(n * k));
  std::vector<float> x(static_cast<size_t>(m * k));
  std::vector<float> bias(static_cast<size_t>(n));
  for (auto& v : w) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  for (auto& v : x) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  for (auto& v : bias) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  const qg::PackedMatrix packed = qg::QuantizeAndPack(w.data(), k, n, k);

  std::vector<float> y(static_cast<size_t>(m * ldy), -7.0f);
  qg::AffineForward(x.data(), k, m, packed, bias.data(), y.data(), ldy);

  // Reference: explicit quantize + bias-initialised C + Gemm.
  std::vector<int8_t> aq(static_cast<size_t>(m * packed.cols_padded));
  std::vector<float> ascales(static_cast<size_t>(m));
  qg::QuantizeActivations(x.data(), k, m, packed, aq.data(), ascales.data());
  std::vector<float> want(static_cast<size_t>(m * ldy), -7.0f);
  for (int64_t i = 0; i < m; ++i) {
    std::copy(bias.begin(), bias.end(),
              want.begin() + static_cast<size_t>(i * ldy));
  }
  qg::Gemm(aq.data(), ascales.data(), m, packed, want.data(), ldy);
  // Columns [n, ldy) keep their initial value in both paths.
  testutil::ExpectFloatsBitwiseEqual(y, want, "AffineForward == bias + Gemm");
}

}  // namespace
}  // namespace start
